//! Edge cases and failure injection across the full pipeline.

use marginal_ldp::core::{InpHt, InpPs, MargPs};
use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn single_attribute_domain() {
    // d = 1, k = 1 must work for every mechanism.
    let rows: Vec<u64> = (0..20_000).map(|i| u64::from(i % 4 == 0)).collect();
    let data = BinaryDataset::new(1, rows);
    for kind in MechanismKind::SIX {
        let est = kind.build(1, 1, 2.0).run(data.rows(), 1);
        let m = est.marginal(Mask::full(1));
        assert_eq!(m.len(), 2, "{}", kind.name());
        let truth = data.true_marginal(Mask::full(1));
        assert!(
            (m[1] - truth[1]).abs() < 0.1,
            "{}: {} vs {}",
            kind.name(),
            m[1],
            truth[1]
        );
    }
}

#[test]
fn k_equals_d() {
    // The (unique) d-way marginal is the full distribution.
    let rows: Vec<u64> = (0..30_000).map(|i| (i % 7) as u64 % 8).collect();
    let data = BinaryDataset::new(3, rows);
    for kind in [
        MechanismKind::InpHt,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
    ] {
        let est = kind.build(3, 3, 2.0).run(data.rows(), 2);
        let m = est.marginal(Mask::full(3));
        let truth = data.true_marginal(Mask::full(3));
        let tvd = total_variation_distance(&m, &truth);
        assert!(tvd < 0.1, "{}: tvd {tvd}", kind.name());
    }
}

#[test]
fn tiny_populations_do_not_panic() {
    for n in [1usize, 2, 3, 17] {
        let rows: Vec<u64> = (0..n as u64).map(|i| i % 4).collect();
        for kind in MechanismKind::SIX {
            let est = kind.build(2, 1, 1.0).run(&rows, 3);
            let m = est.marginal(Mask::single(0));
            assert!(m.iter().all(|v| v.is_finite()), "{} n={n}", kind.name());
        }
    }
}

#[test]
fn population_smaller_than_coefficient_set() {
    // InpHT with N < |T|: most coefficients unsampled, estimate to 0;
    // marginals remain finite and near-uniform.
    let mech = InpHt::new(16, 2, 1.0);
    assert!(mech.coefficient_count() > 100);
    let mut rng = StdRng::seed_from_u64(4);
    let mut agg = mech.aggregator();
    for row in 0..50u64 {
        agg.absorb(mech.encode(row, &mut rng));
    }
    let est = agg.finish();
    let m = est.marginal(Mask::from_attrs(&[3, 9]));
    assert!(m.iter().all(|v| v.is_finite()));
    let s: f64 = m.iter().sum();
    assert!((s - 1.0).abs() < 1e-9, "constant coefficient pins the mass");
}

#[test]
fn extreme_epsilons() {
    let rows: Vec<u64> = (0..40_000)
        .map(|i| u64::from(i % 3 == 0) | (u64::from(i % 5 == 0) << 1))
        .collect();
    let data = BinaryDataset::new(2, rows);
    // Very strict: estimates exist and are finite (accuracy is poor).
    let strict = MechanismKind::InpHt.build(2, 2, 0.01).run(data.rows(), 5);
    assert!(strict.marginal(Mask::full(2)).iter().all(|v| v.is_finite()));
    // Very loose: estimates are near-exact.
    let loose = MechanismKind::InpHt.build(2, 2, 10.0).run(data.rows(), 6);
    let tvd = total_variation_distance(
        &loose.marginal(Mask::full(2)),
        &data.true_marginal(Mask::full(2)),
    );
    assert!(tvd < 0.02, "loose eps tvd {tvd}");
}

#[test]
fn population_at_shard_boundaries() {
    // Exercise the parallel runner's chunking logic at awkward sizes.
    for n in [4095usize, 4096, 4097, 8191] {
        let rows: Vec<u64> = (0..n as u64).map(|i| i % 8).collect();
        let est = MechanismKind::MargPs.build(3, 2, 1.0).run(&rows, 7);
        let m = est.marginal(Mask::from_attrs(&[0, 2]));
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-6, "n={n}");
    }
}

#[test]
fn consistency_pipeline_on_fresh_population() {
    use marginal_ldp::core::consistency::{is_consistent, make_consistent};
    let mut rng = StdRng::seed_from_u64(8);
    let data = TaxiGenerator::default().generate(40_000, &mut rng);
    let mech = MargPs::new(8, 2, 1.1);
    let mut agg = mech.aggregator();
    for &row in data.rows() {
        agg.absorb(mech.encode(row, &mut rng));
    }
    let est = agg.finish();
    let fixed = make_consistent(&est);
    assert!(is_consistent(&fixed, 1e-9));
    // Consistency is idempotent.
    let twice = make_consistent(&fixed);
    for i in 0..fixed.marginals().len() {
        for (a, b) in fixed.table(i).iter().zip(twice.table(i)) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn duplicated_columns_are_perfectly_recovered_as_correlated() {
    // Figure 6's column duplication: a mechanism should see duplicated
    // attributes as perfectly correlated, and InpHT's estimate of the
    // (orig, copy) marginal should put ~all mass on the diagonal.
    let mut rng = StdRng::seed_from_u64(9);
    let data = TaxiGenerator::default()
        .generate(120_000, &mut rng)
        .duplicate_columns(16);
    let est = MechanismKind::InpHt.build(16, 2, 2.0).run(data.rows(), 10);
    // Attribute 8 duplicates attribute 0.
    let m = clamp_normalize(&est.marginal(Mask::from_attrs(&[0, 8])));
    let diag = m[0b00] + m[0b11];
    assert!(diag > 0.9, "diagonal mass {diag}");
}

#[test]
#[should_panic(expected = "no reports absorbed")]
fn finishing_empty_aggregator_panics() {
    let mech = InpPs::new(3, 1.0);
    let _ = mech.aggregator().finish();
}

#[test]
fn marginal_set_uniform_fallback_is_finite() {
    // MargPS with one user: 27 of 28 marginals unsampled → uniform.
    let mech = MargPs::new(8, 2, 1.0);
    let mut rng = StdRng::seed_from_u64(11);
    let mut agg = mech.aggregator();
    agg.absorb(mech.encode(0b1010_1010, &mut rng));
    let est = agg.finish();
    for i in 0..est.marginals().len() {
        assert!(est.table(i).iter().all(|v| v.is_finite()));
        assert!((est.table(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
