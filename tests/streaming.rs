//! The streaming-accumulator partition-invariance law, property-tested
//! at the workspace level: for **every** `MechanismKind`, any random
//! partition of the users into parts, any within-part interleaving the
//! partition induces, and any merge order of the parts produces an
//! accumulator whose state — and serialized `to_bytes` form — is
//! *identical* to serial ingest. This extends the seed-schedule
//! invariant behind `Mechanism::run_sharded` (shards = contiguous
//! chunks, merged in order) to arbitrary partitions and merge orders,
//! which is what lets independent collector processes aggregate a
//! population and combine their states in any topology.

use marginal_ldp::core::user_rng;
use marginal_ldp::prelude::*;
use proptest::prelude::*;

const ALL_KINDS: [MechanismKind; 7] = [
    MechanismKind::InpRr,
    MechanismKind::InpPs,
    MechanismKind::InpHt,
    MechanismKind::MargRr,
    MechanismKind::MargPs,
    MechanismKind::MargHt,
    MechanismKind::InpEm,
];

/// Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=(i as u64)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random partition + random merge order ≡ serial ingest, down to
    /// the serialized bytes, for every mechanism.
    #[test]
    fn any_partition_and_merge_order_matches_serial_ingest(
        assignment in proptest::collection::vec(0usize..5, 120..300),
        seed in 0u64..1_000,
        merge_seed in 0u64..1_000,
    ) {
        let parts = 5usize;
        let n = assignment.len();
        let rows: Vec<u64> = (0..n as u64).map(|u| (u * 37 + seed) % 16).collect();

        for kind in ALL_KINDS {
            let mechanism = kind.build(4, 2, 1.1);

            // The per-user seed schedule fixes each user's report no
            // matter which collector ingests it.
            let reports: Vec<MechanismReport> = rows
                .iter()
                .enumerate()
                .map(|(u, &row)| mechanism.encode(row, &mut user_rng(seed, u as u64)))
                .collect();

            // Reference: one accumulator, users in index order.
            let mut serial = mechanism.accumulator();
            for r in &reports {
                serial.absorb(r);
            }
            let serial_bytes = serial.to_bytes();

            // Partitioned: users scattered over `parts` collectors (the
            // partition induces arbitrary within-part interleavings of
            // user indices), parts merged in a random order.
            let mut collectors: Vec<MechanismAccumulator> =
                (0..parts).map(|_| mechanism.accumulator()).collect();
            for (user, &part) in assignment.iter().enumerate() {
                collectors[part].absorb(&reports[user]);
            }
            let order = permutation(parts, merge_seed);
            let mut collectors: Vec<Option<MechanismAccumulator>> =
                collectors.into_iter().map(Some).collect();
            let mut acc = collectors[order[0]].take().unwrap();
            for &i in &order[1..] {
                acc.merge(collectors[i].take().unwrap());
            }

            prop_assert_eq!(
                &acc.to_bytes(),
                &serial_bytes,
                "{} state diverged under partition + merge order",
                kind.name()
            );

            // The bytes also survive a process boundary: rehydrate and
            // compare both re-serialization and the final estimate.
            let rehydrated = MechanismAccumulator::from_bytes(&serial_bytes).unwrap();
            prop_assert_eq!(&rehydrated.to_bytes(), &serial_bytes, "{}", kind.name());
            prop_assert_eq!(
                acc.finalize(),
                rehydrated.finalize(),
                "{} estimates diverged after rehydration",
                kind.name()
            );
        }
    }
}
