//! The streaming-accumulator partition-invariance law, property-tested
//! at the workspace level: for **every** `MechanismKind`, any random
//! partition of the users into parts, any within-part interleaving the
//! partition induces, and any merge order of the parts produces an
//! accumulator whose state — and serialized `to_bytes` form — is
//! *identical* to serial ingest. This extends the seed-schedule
//! invariant behind `Mechanism::run_sharded` (shards = contiguous
//! chunks, merged in order) to arbitrary partitions and merge orders,
//! which is what lets independent collector processes aggregate a
//! population and combine their states in any topology.

use marginal_ldp::core::frame::StreamHeader;
use marginal_ldp::core::user_rng;
use marginal_ldp::oracles::pipeline::{
    decode_report_batch_into, encode_report_batch, Client, PipelineAccumulator, PipelineReport,
};
use marginal_ldp::oracles::{oracle_header, OracleAccumulator, OracleKind, OracleReport};
use marginal_ldp::prelude::*;
use proptest::prelude::*;

const ALL_KINDS: [MechanismKind; 7] = [
    MechanismKind::InpRr,
    MechanismKind::InpPs,
    MechanismKind::InpHt,
    MechanismKind::MargRr,
    MechanismKind::MargPs,
    MechanismKind::MargHt,
    MechanismKind::InpEm,
];

/// Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=(i as u64)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Serialized state after a serial `absorb` loop vs after
/// `absorb_batch` over the given chunk lengths (clamped to the buffer;
/// whatever the chunking leaves over lands in one final batch). Empty
/// chunks become empty batches on purpose.
fn serial_vs_batched<A: Accumulator>(
    mut serial: A,
    mut batched: A,
    reports: &[A::Report],
    chunks: &[usize],
) -> (Vec<u8>, Vec<u8>) {
    for r in reports {
        serial.absorb(r);
    }
    let mut start = 0usize;
    for &len in chunks {
        let end = (start + len).min(reports.len());
        batched.absorb_batch(&reports[start..end]);
        start = end;
    }
    batched.absorb_batch(&reports[start..]);
    (serial.to_bytes(), batched.to_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random partition + random merge order ≡ serial ingest, down to
    /// the serialized bytes, for every mechanism.
    #[test]
    fn any_partition_and_merge_order_matches_serial_ingest(
        assignment in proptest::collection::vec(0usize..5, 120..300),
        seed in 0u64..1_000,
        merge_seed in 0u64..1_000,
    ) {
        let parts = 5usize;
        let n = assignment.len();
        let rows: Vec<u64> = (0..n as u64).map(|u| (u * 37 + seed) % 16).collect();

        for kind in ALL_KINDS {
            let mechanism = kind.build(4, 2, 1.1);

            // The per-user seed schedule fixes each user's report no
            // matter which collector ingests it.
            let reports: Vec<MechanismReport> = rows
                .iter()
                .enumerate()
                .map(|(u, &row)| mechanism.encode(row, &mut user_rng(seed, u as u64)))
                .collect();

            // Reference: one accumulator, users in index order.
            let mut serial = mechanism.accumulator();
            for r in &reports {
                serial.absorb(r);
            }
            let serial_bytes = serial.to_bytes();

            // Partitioned: users scattered over `parts` collectors (the
            // partition induces arbitrary within-part interleavings of
            // user indices), parts merged in a random order.
            let mut collectors: Vec<MechanismAccumulator> =
                (0..parts).map(|_| mechanism.accumulator()).collect();
            for (user, &part) in assignment.iter().enumerate() {
                collectors[part].absorb(&reports[user]);
            }
            let order = permutation(parts, merge_seed);
            let mut collectors: Vec<Option<MechanismAccumulator>> =
                collectors.into_iter().map(Some).collect();
            let mut acc = collectors[order[0]].take().unwrap();
            for &i in &order[1..] {
                acc.merge(collectors[i].take().unwrap());
            }

            prop_assert_eq!(
                &acc.to_bytes(),
                &serial_bytes,
                "{} state diverged under partition + merge order",
                kind.name()
            );

            // The bytes also survive a process boundary: rehydrate and
            // compare both re-serialization and the final estimate.
            let rehydrated = MechanismAccumulator::from_bytes(&serial_bytes).unwrap();
            prop_assert_eq!(&rehydrated.to_bytes(), &serial_bytes, "{}", kind.name());
            prop_assert_eq!(
                acc.finalize(),
                rehydrated.finalize(),
                "{} estimates diverged after rehydration",
                kind.name()
            );
        }
    }

    /// `absorb_batch` over any chunking — empty chunks and singleton
    /// chunks included — is byte-identical to the serial `absorb` loop,
    /// for every mechanism and every frequency oracle (the type-erased
    /// batch kernels, including InpEM's group-by-value path).
    #[test]
    fn batched_ingest_matches_serial_for_every_protocol(
        n in 0usize..250,
        seed in 0u64..1_000,
        chunks in proptest::collection::vec(0usize..40, 0..12),
    ) {
        for kind in ALL_KINDS {
            let mechanism = kind.build(4, 2, 1.1);
            let reports: Vec<MechanismReport> = (0..n as u64)
                .map(|u| mechanism.encode((u * 37 + seed) % 16, &mut user_rng(seed, u)))
                .collect();
            let (serial, batched) = serial_vs_batched(
                mechanism.accumulator(),
                mechanism.accumulator(),
                &reports,
                &chunks,
            );
            prop_assert_eq!(&batched, &serial, "{} batched ingest diverged", kind.name());
        }
        for kind in OracleKind::ALL {
            let oracle = kind.build(6, 1.1, 3, 16, 9);
            let reports: Vec<OracleReport> = (0..n as u64)
                .map(|u| oracle.encode((u * 37 + seed) % 64, &mut user_rng(seed, u)))
                .collect();
            let (serial, batched) = serial_vs_batched(
                oracle.accumulator(),
                oracle.accumulator(),
                &reports,
                &chunks,
            );
            prop_assert_eq!(&batched, &serial, "{} batched ingest diverged", kind.name());
        }
        // The type-erased oracle accumulator's hoisted dispatch.
        for kind in OracleKind::ALL {
            let oracle = kind.build(6, 1.1, 3, 16, 9);
            let reports: Vec<OracleReport> = (0..n as u64)
                .map(|u| oracle.encode(u % 64, &mut user_rng(seed, u)))
                .collect();
            let mut serial: OracleAccumulator = oracle.accumulator();
            for r in &reports {
                serial.absorb(r);
            }
            let mut batched: OracleAccumulator = oracle.accumulator();
            batched.absorb_batch(&reports);
            prop_assert_eq!(
                &batched.to_bytes(),
                &serial.to_bytes(),
                "{} type-erased batched ingest diverged",
                kind.name()
            );
        }
    }

    /// `REPORT_BATCH` framing (wire v2) is a pure re-chunking of the
    /// report stream: for **every** protocol tag (the seven mechanisms
    /// and the three oracles) and any random batch-size sequence —
    /// empty and singleton batches included — decoding the batch
    /// frames yields reports byte-identical to the single-report
    /// framing of the same sequence, and absorbing them batch-by-batch
    /// produces accumulator state byte-identical to serial ingest.
    #[test]
    fn batch_frames_decode_identical_to_singles(
        n in 0usize..120,
        seed in 0u64..1_000,
        sizes in proptest::collection::vec(0usize..33, 1..8),
    ) {
        let mut headers: Vec<StreamHeader> = ALL_KINDS
            .iter()
            .map(|&kind| StreamHeader::mechanism(kind, 4, 2, 1.1))
            .collect();
        headers.extend(
            OracleKind::ALL
                .iter()
                .map(|&kind| oracle_header(kind, 6, 1.1, 3, 16, 9)),
        );
        for header in headers {
            let client = Client::from_header(&header).unwrap();
            let domain = 1u64 << header.d;
            let reports: Vec<PipelineReport> = (0..n as u64)
                .map(|u| client.encode((u * 37 + seed) % domain, &mut user_rng(seed, u)))
                .collect();
            let singles: Vec<Vec<u8>> = reports.iter().map(PipelineReport::to_bytes).collect();

            // Re-chunk the stream: each random size becomes one
            // REPORT_BATCH frame (size 0 → an empty batch frame), and
            // whatever is left over lands in one final batch.
            let mut frames: Vec<Vec<u8>> = Vec::new();
            let mut start = 0usize;
            for &size in &sizes {
                let take = size.min(singles.len() - start);
                frames.push(encode_report_batch(&singles[start..start + take]));
                start += take;
            }
            frames.push(encode_report_batch(&singles[start..]));

            let mut serial = PipelineAccumulator::empty(&header).unwrap();
            for report in &reports {
                serial.absorb(report).unwrap();
            }

            let mut batched = PipelineAccumulator::empty(&header).unwrap();
            let mut scratch: Vec<PipelineReport> = Vec::new();
            let mut decoded: Vec<PipelineReport> = Vec::new();
            for frame in &frames {
                let m = decode_report_batch_into(frame, &mut scratch).unwrap();
                batched.absorb_batch(&scratch[..m]).unwrap();
                decoded.extend_from_slice(&scratch[..m]);
            }

            prop_assert_eq!(&decoded, &reports, "protocol {:#04x}", header.protocol);
            let rebuilt: Vec<Vec<u8>> = decoded.iter().map(PipelineReport::to_bytes).collect();
            prop_assert_eq!(&rebuilt, &singles, "protocol {:#04x}", header.protocol);
            prop_assert_eq!(
                &batched.to_bytes(),
                &serial.to_bytes(),
                "protocol {:#04x}: batch-framed state diverged from serial ingest",
                header.protocol
            );
        }
    }
}

/// The typed per-aggregator batch kernels, driven directly (not through
/// the type-erased enums): the empty buffer, empty batches, singleton
/// batches, and the whole-buffer batch all match the serial loop for
/// each of the seven mechanisms and three oracles.
#[test]
fn typed_batch_kernels_match_serial_including_empty_and_singleton() {
    use marginal_ldp::core::{InpEm, InpHt, InpPs, InpRr, MargHt, MargPs, MargRr};
    use marginal_ldp::oracles::{Cms, HadamardCms, Olh};
    use rand::{rngs::StdRng, SeedableRng};

    macro_rules! check_typed {
        ($name:expr, $mech:expr) => {{
            let mech = $mech;
            let mut rng = StdRng::seed_from_u64(9);
            let reports: Vec<_> = (0..200u64).map(|u| mech.encode(u % 16, &mut rng)).collect();
            for chunks in [vec![], vec![0, 1, 0, 1], vec![7, 500]] {
                let (serial, batched) =
                    serial_vs_batched(mech.aggregator(), mech.aggregator(), &reports, &chunks);
                assert_eq!(serial, batched, "{} chunking {:?}", $name, chunks);
            }
            let (serial, batched) =
                serial_vs_batched(mech.aggregator(), mech.aggregator(), &reports[..0], &[]);
            assert_eq!(serial, batched, "{} empty buffer", $name);
        }};
    }

    check_typed!("InpRR", InpRr::new(4, 1.1));
    check_typed!("InpPS", InpPs::new(4, 1.1));
    check_typed!("InpHT", InpHt::new(4, 2, 1.1));
    check_typed!("InpEM", InpEm::new(4, 1.1));
    // d > 16: the InpEM kernel's serial-fallback path (no dense scratch).
    check_typed!("InpEM-wide", InpEm::new(20, 1.1));
    check_typed!("MargRR", MargRr::new(4, 2, 1.1));
    check_typed!("MargPS", MargPs::new(4, 2, 1.1));
    check_typed!("MargHT", MargHt::new(4, 2, 1.1));
    check_typed!("OLH", Olh::new(4, 1.1));
    check_typed!("CMS", Cms::new(4, 1.1, 3, 16, 9));
    check_typed!("HCMS", HadamardCms::new(4, 1.1, 3, 16, 9));
}
