//! The batched encode kernels are byte-identical to the serial
//! per-user `encode` loop, for every mechanism and every oracle, under
//! arbitrary batch chunkings (empty and single-report chunks included).
//!
//! This is the contract that makes `--batch` and the open-loop load
//! generator pure transport optimizations: a collector absorbing the
//! batched frames ends up with exactly the reports the serial path
//! would have sent.

use marginal_ldp::core::user_rng;
use marginal_ldp::core::wire::Writer;
use marginal_ldp::oracles::pipeline::{
    encode_report_batch, header_for, Client, Protocol, SketchShape,
};
use marginal_ldp::oracles::OracleKind;
use marginal_ldp::prelude::*;
use proptest::prelude::*;

const D: u32 = 6;
const K: u32 = 2;
const EPS: f64 = 1.1;
const SKETCH: SketchShape = SketchShape {
    hashes: 3,
    width: 16,
    family_seed: 9,
};

/// Every protocol the pipeline speaks: 7 mechanisms + 3 oracles.
fn protocols() -> impl Iterator<Item = Protocol> {
    MechanismKind::ALL
        .into_iter()
        .map(Protocol::Mechanism)
        .chain(OracleKind::ALL.into_iter().map(Protocol::Oracle))
}

fn client_for(protocol: Protocol) -> Client {
    let header = header_for(protocol, D, K, EPS, SKETCH);
    Client::from_header(&header).expect("test header is valid")
}

/// The serial reference: encode each row under its own
/// `user_rng(seed, first_user + i)` stream via the original per-report
/// path, then wrap the blobs with `encode_report_batch`.
fn serial_batch(client: &Client, rows: &[u64], seed: u64, first_user: u64) -> Vec<u8> {
    let reports: Vec<Vec<u8>> = rows
        .iter()
        .enumerate()
        .map(|(i, &row)| {
            let mut rng = user_rng(seed, first_user.wrapping_add(i as u64));
            client.encode_report(row, &mut rng)
        })
        .collect();
    encode_report_batch(&reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One `encode_batch` call produces exactly the serial loop's
    /// bytes, for every protocol, at any user offset.
    #[test]
    fn batch_matches_serial_loop(
        rows in proptest::collection::vec(0u64..(1u64 << D), 0..40),
        seed in 0u64..1000,
        first_user in 0u64..10_000,
    ) {
        let mut w = Writer::default();
        for protocol in protocols() {
            let client = client_for(protocol);
            client.encode_batch(&rows, seed, first_user, &mut w);
            let serial = serial_batch(&client, &rows, seed, first_user);
            prop_assert_eq!(w.as_bytes(), serial.as_slice(), "{}", protocol.name());
        }
    }

    /// Chunking is invisible: splitting a population at arbitrary cut
    /// points (empty chunks included) and calling `encode_batch` with
    /// the matching `first_user` offsets reproduces, chunk by chunk,
    /// the frames the serial loop would emit for those users.
    #[test]
    fn chunking_is_invisible(
        rows in proptest::collection::vec(0u64..(1u64 << D), 0..48),
        cuts in proptest::collection::vec(0usize..64, 0..6),
        seed in 0u64..1000,
    ) {
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (rows.len() + 1)).collect();
        bounds.push(0);
        bounds.push(rows.len());
        bounds.sort_unstable();
        let mut w = Writer::default();
        for protocol in protocols() {
            let client = client_for(protocol);
            for pair in bounds.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                let chunk = &rows[lo..hi];
                client.encode_batch(chunk, seed, lo as u64, &mut w);
                let serial = serial_batch(&client, chunk, seed, lo as u64);
                prop_assert_eq!(
                    w.as_bytes(), serial.as_slice(),
                    "{} chunk {}..{}", protocol.name(), lo, hi
                );
            }
        }
    }
}
