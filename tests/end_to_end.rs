//! Cross-crate integration: every mechanism end-to-end on realistic
//! populations, checking the accuracy relationships the paper's
//! evaluation establishes.

use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn taxi(n: usize, seed: u64) -> BinaryDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiGenerator::default().generate(n, &mut rng)
}

fn movielens(d: u32, n: usize, seed: u64) -> BinaryDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    MovieLensGenerator::new(d).generate(n, &mut rng)
}

#[test]
fn all_seven_mechanisms_reconstruct_2way_marginals() {
    let data = taxi(60_000, 1);
    for kind in [
        MechanismKind::InpRr,
        MechanismKind::InpPs,
        MechanismKind::InpHt,
        MechanismKind::MargRr,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
        MechanismKind::InpEm,
    ] {
        let est = kind.build(8, 2, 2.0).run(data.rows(), 3);
        let tvd = mean_kway_tvd(&est, &data, 2);
        assert!(tvd.is_finite() && tvd >= 0.0, "{}", kind.name());
        // Every method must be much better than a uniform guess on this
        // strongly-correlated data at a generous eps.
        let uniform_tvd: f64 = {
            let mut total = 0.0;
            let mut count = 0;
            for beta in ldp_bits::masks_of_weight(8, 2) {
                let truth = data.true_marginal(beta);
                let uni = vec![0.25; 4];
                total += total_variation_distance(&truth, &uni);
                count += 1;
            }
            total / f64::from(count)
        };
        assert!(
            tvd < uniform_tvd,
            "{} tvd {tvd} vs uniform {uniform_tvd}",
            kind.name()
        );
    }
}

#[test]
fn inpht_dominates_at_moderate_dimension() {
    // The paper's headline: InpHT achieves the lowest (or near-lowest)
    // error. Require it to beat InpPS, MargRR and InpEM outright and be
    // within 1.6x of everything else at d=8, k=2, eps=1.1.
    let data = taxi(100_000, 2);
    let tvd = |kind: MechanismKind, seed: u64| {
        let est = kind.build(8, 2, 1.1).run(data.rows(), seed);
        mean_kway_tvd(&est, &data, 2)
    };
    let ht = tvd(MechanismKind::InpHt, 10);
    for kind in [
        MechanismKind::InpPs,
        MechanismKind::MargRr,
        MechanismKind::InpEm,
    ] {
        assert!(ht < tvd(kind, 11), "InpHT {ht} should beat {}", kind.name());
    }
    for kind in [
        MechanismKind::InpRr,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
    ] {
        assert!(
            ht < tvd(kind, 12) * 1.6,
            "InpHT {ht} should be near-best vs {}",
            kind.name()
        );
    }
}

#[test]
fn error_decreases_with_population_for_scalable_methods() {
    let big = movielens(8, 131_072, 3);
    let small = BinaryDataset::new(8, big.rows()[..8_192].to_vec());
    for kind in [
        MechanismKind::InpHt,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
    ] {
        let mech = kind.build(8, 2, 1.1);
        let tvd_small = mean_kway_tvd(&mech.run(small.rows(), 4), &small, 2);
        let tvd_big = mean_kway_tvd(&mech.run(big.rows(), 4), &big, 2);
        // 16x the users: expect clearly better (≥2x, theory says 4x).
        assert!(
            tvd_big < tvd_small / 2.0,
            "{}: {tvd_small} -> {tvd_big}",
            kind.name()
        );
    }
}

#[test]
fn error_decreases_with_epsilon() {
    let data = movielens(8, 65_536, 5);
    for kind in [MechanismKind::InpHt, MechanismKind::MargPs] {
        let loose = mean_kway_tvd(&kind.build(8, 2, 0.4).run(data.rows(), 6), &data, 2);
        let tight = mean_kway_tvd(&kind.build(8, 2, 1.4).run(data.rows(), 6), &data, 2);
        assert!(tight < loose, "{}: {loose} -> {tight}", kind.name());
    }
}

#[test]
fn one_way_queries_are_consistent_across_estimate_types() {
    // Every estimate type must answer 1-way queries derived from its
    // 2-way collection, and they must agree with the truth.
    let data = taxi(100_000, 7);
    for kind in [
        MechanismKind::InpRr,
        MechanismKind::InpHt,
        MechanismKind::MargRr,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
    ] {
        let est = kind.build(8, 2, 2.0).run(data.rows(), 8);
        for a in 0..8u32 {
            let beta = Mask::single(a);
            let m = est.marginal(beta);
            let truth = data.true_marginal(beta);
            assert!(
                (m[1] - truth[1]).abs() < 0.1,
                "{} attr {a}: {} vs {}",
                kind.name(),
                m[1],
                truth[1]
            );
        }
    }
}

#[test]
fn estimates_are_reproducible_for_fixed_seed() {
    let data = taxi(20_000, 9);
    for kind in MechanismKind::SIX {
        let mech = kind.build(8, 2, 1.1);
        let a = mech.run(data.rows(), 77);
        let b = mech.run(data.rows(), 77);
        let beta = Mask::from_attrs(&[0, 7]);
        assert_eq!(a.marginal(beta), b.marginal(beta), "{}", kind.name());
    }
}

#[test]
fn communication_costs_match_table_2() {
    let (d, k) = (8u32, 2u32);
    let expected = [
        (MechanismKind::InpRr, 256u64),
        (MechanismKind::InpPs, 8),
        (MechanismKind::InpHt, 9),
        (MechanismKind::MargRr, 12),
        (MechanismKind::MargPs, 10),
        (MechanismKind::MargHt, 11),
    ];
    for (kind, bits) in expected {
        assert_eq!(
            kind.build(d, k, 1.0).communication_bits(),
            bits,
            "{}",
            kind.name()
        );
    }
}

#[test]
fn empirical_error_respects_master_theorem_shape() {
    // The measured InpHT error should be below the Theorem 4.2 bound
    // evaluated at its (ps, pr), scaled through Lemma 3.7 as in
    // Theorem 4.5 — a loose sanity check that theory and code agree.
    use marginal_ldp::mechanisms::theory::{coefficient_count, master_error_at_confidence};
    let (d, k, eps) = (8u32, 2u32, 1.1f64);
    let data = taxi(131_072, 10);
    let est = MechanismKind::InpHt.build(d, k, eps).run(data.rows(), 11);
    let measured = mean_kway_tvd(&est, &data, k);

    let t = coefficient_count(d, k) as f64;
    let pr = eps.exp() / (1.0 + eps.exp());
    let per_coeff = master_error_at_confidence(data.n(), 1.0 / t, pr, 0.05);
    // Theorem 4.5: TVD ≤ 2^{k/2} · per-coefficient error (after scaling).
    let bound = (1u64 << k) as f64 * per_coeff;
    assert!(
        measured < bound,
        "measured {measured} should be below theory bound {bound}"
    );
}
