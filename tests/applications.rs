//! Integration tests for the §6 applications: association testing and
//! Chow–Liu modeling over privately reconstructed marginals.

use marginal_ldp::analysis::chowliu::reweigh;
use marginal_ldp::data::taxi::attr;
use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn private_chi2_separates_dependent_from_independent_pairs() {
    // Footnote 3 of the paper: comparing a private χ² statistic against
    // the noise-unaware critical value is not calibrated — privacy noise
    // inflates the statistic on independent pairs by O(N·noise²). The
    // robust claim Figure 7 supports is *separation*: dependent pairs
    // score orders of magnitude above independent ones, and the dependent
    // statistics track the non-private values.
    let mut rng = StdRng::seed_from_u64(1);
    let data = TaxiGenerator::default().generate(262_144, &mut rng);
    let n = data.n() as f64;
    let est = MechanismKind::InpHt.build(8, 2, 1.1).run(data.rows(), 2);

    let dependent = [
        (attr::NIGHT_PICK, attr::NIGHT_DROP),
        (attr::TOLL, attr::FAR),
        (attr::CC, attr::TIP),
    ];
    let independent = [
        (attr::M_DROP, attr::CC),
        (attr::FAR, attr::NIGHT_PICK),
        (attr::TOLL, attr::NIGHT_PICK),
    ];
    let stat = |a: u32, b: u32| {
        chi2_independence_2x2(&est.marginal(Mask::from_attrs(&[a, b])), n).statistic
    };
    let min_dep = dependent
        .iter()
        .map(|&(a, b)| stat(a, b))
        .fold(f64::INFINITY, f64::min);
    let max_ind = independent
        .iter()
        .map(|&(a, b)| stat(a, b))
        .fold(0.0, f64::max);
    assert!(
        min_dep > 20.0 * max_ind,
        "dependent (min {min_dep}) vs independent (max {max_ind})"
    );
    // Dependent pairs must always reject.
    for (a, b) in dependent {
        let r = chi2_independence_2x2(&est.marginal(Mask::from_attrs(&[a, b])), n);
        assert!(
            r.rejects_independence(0.05),
            "({a},{b}) stat {}",
            r.statistic
        );
    }
}

#[test]
fn private_chowliu_tree_captures_most_mutual_information() {
    let d = 8u32;
    let mut rng = StdRng::seed_from_u64(3);
    let data = MovieLensGenerator::new(d).generate(150_000, &mut rng);
    let true_mi =
        |a: u32, b: u32| mutual_information_2x2(&data.true_marginal(Mask::from_attrs(&[a, b])));
    let best = total_weight(&maximum_spanning_tree(d, true_mi));

    let est = MechanismKind::InpHt.build(d, 2, 1.1).run(data.rows(), 4);
    let noisy_mi =
        |a: u32, b: u32| mutual_information_2x2(&est.marginal(Mask::from_attrs(&[a, b])));
    let tree = maximum_spanning_tree(d, noisy_mi);
    let achieved = total_weight(&reweigh(&tree, true_mi));

    assert!(best > 0.0);
    assert!(
        achieved > 0.85 * best,
        "private tree MI {achieved} vs optimum {best}"
    );
}

#[test]
fn taxi_chi2_statistics_track_nonprivate_on_strong_pairs() {
    // Figure 7's qualitative claim: on strongly-dependent pairs the
    // private statistic is the same order of magnitude as the exact one.
    let mut rng = StdRng::seed_from_u64(5);
    let data = TaxiGenerator::default().generate(262_144, &mut rng);
    let n = data.n() as f64;
    let est = MechanismKind::InpHt.build(8, 2, 1.1).run(data.rows(), 6);
    for (a, b) in [(attr::CC, attr::TIP), (attr::TOLL, attr::FAR)] {
        let beta = Mask::from_attrs(&[a, b]);
        let exact = chi2_independence_2x2(&data.true_marginal(beta), n).statistic;
        let noisy = chi2_independence_2x2(&est.marginal(beta), n).statistic;
        let log_gap = (noisy.ln() - exact.ln()).abs();
        assert!(log_gap < 1.0, "({a},{b}): {exact} vs {noisy}");
    }
}

#[test]
fn margps_is_weaker_on_borderline_pairs() {
    // The paper observes MargPS "often commits the type I error" on
    // weakly-dependent pairs where InpHT does not. We check the weaker,
    // stable form: MargPS's statistic on a truly-independent pair drifts
    // further from zero than InpHT's on average.
    let mut rng = StdRng::seed_from_u64(7);
    let data = TaxiGenerator::default().generate(131_072, &mut rng);
    let n = data.n() as f64;
    let beta = Mask::from_attrs(&[attr::FAR, attr::NIGHT_PICK]);
    let mut ht_stats = Vec::new();
    let mut ps_stats = Vec::new();
    for r in 0..5u64 {
        let ht = MechanismKind::InpHt
            .build(8, 2, 1.1)
            .run(data.rows(), 100 + r);
        ht_stats.push(chi2_independence_2x2(&ht.marginal(beta), n).statistic);
        let ps = MechanismKind::MargPs
            .build(8, 2, 1.1)
            .run(data.rows(), 200 + r);
        ps_stats.push(chi2_independence_2x2(&ps.marginal(beta), n).statistic);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&ps_stats) > mean(&ht_stats),
        "MargPS {ps_stats:?} vs InpHT {ht_stats:?}"
    );
}
