//! Privacy verification: each mechanism's client channel, evaluated as an
//! explicit conditional-probability matrix, must satisfy exactly the
//! claimed ε (Definition 3.1). This checks the *composition* arguments
//! (Facts 3.1/3.2, budget splitting), not just the primitives.

use marginal_ldp::mechanisms::{
    budget::split_epsilon, BinaryRandomizedResponse, Channel, GeneralizedRandomizedResponse,
    UnaryEncoding, UnaryFlavor,
};

const EPS_GRID: [f64; 4] = [0.2, 0.7, 1.1, 2.0];

#[test]
fn inp_ps_channel_is_eps_ldp() {
    // InpPS = GRR over 2^d values.
    for eps in EPS_GRID {
        let grr = GeneralizedRandomizedResponse::for_epsilon(eps, 1 << 4);
        assert!(
            (grr.channel().ldp_epsilon() - eps).abs() < 1e-9,
            "eps={eps}"
        );
    }
}

#[test]
fn inp_rr_adjacent_channel_is_eps_ldp() {
    // InpRR = PRR over the one-hot vector; only the two differing
    // positions matter (Fact 3.2), and both flavors hit ε exactly.
    for eps in EPS_GRID {
        for flavor in [UnaryFlavor::Symmetric, UnaryFlavor::Optimized] {
            let ue = UnaryEncoding::for_epsilon(eps, flavor);
            let got = ue.adjacent_pair_channel().ldp_epsilon();
            assert!((got - eps).abs() < 1e-9, "eps={eps} {flavor:?}");
        }
    }
}

#[test]
fn inp_ht_channel_is_at_most_eps_ldp() {
    // InpHT: the coefficient index is sampled independently of the data
    // (leaks nothing); conditioned on the index, the report is ε-RR on a
    // ±1 value. Model the full report (index, bit) for a small T and two
    // adjacent inputs with differing coefficient signs.
    for eps in EPS_GRID {
        let rr = BinaryRandomizedResponse::for_epsilon(eps);
        let p = rr.keep_probability();
        let t = 3usize; // three candidate coefficients

        // Input A: signs (+,+,−); input B: signs (−,+,−) — worst case is
        // any coefficient where they differ.
        let signs_a = [1.0, 1.0, -1.0];
        let signs_b = [-1.0, 1.0, -1.0];
        let row = |signs: [f64; 3]| {
            let mut out = Vec::with_capacity(2 * t);
            for &sign in signs.iter().take(t) {
                let p_plus = if sign > 0.0 { p } else { 1.0 - p };
                out.push((1.0 / t as f64) * p_plus);
                out.push((1.0 / t as f64) * (1.0 - p_plus));
            }
            out
        };
        let ch = Channel::new(vec![row(signs_a), row(signs_b)]);
        let got = ch.ldp_epsilon();
        assert!(got <= eps + 1e-9, "eps={eps}: got {got}");
        assert!((got - eps).abs() < 1e-9, "bound should be tight");
    }
}

#[test]
fn marg_ps_channel_is_eps_ldp() {
    // MargPS: marginal index is data-independent; conditioned on it, GRR
    // over 2^k cells at full ε.
    for eps in EPS_GRID {
        let grr = GeneralizedRandomizedResponse::for_epsilon(eps, 4);
        assert!((grr.channel().ldp_epsilon() - eps).abs() < 1e-9);
    }
}

#[test]
fn inp_em_budget_split_composes_to_eps() {
    // InpEM: d independent (ε/d)-RR channels tensor to exactly ε.
    for eps in [0.5, 1.0] {
        for d in [2u32, 4] {
            let rr = BinaryRandomizedResponse::for_epsilon(split_epsilon(eps, d));
            let mut ch = rr.channel();
            for _ in 1..d {
                ch = ch.tensor(&rr.channel());
            }
            assert!(
                (ch.ldp_epsilon() - eps).abs() < 1e-9,
                "eps={eps} d={d}: {}",
                ch.ldp_epsilon()
            );
        }
    }
}

#[test]
fn empirical_report_frequencies_respect_ldp_ratio() {
    // Black-box check on the actual implementation: run InpHT on two
    // adjacent inputs many times and verify the empirical report
    // distribution ratio never exceeds e^ε (within sampling noise).
    use marginal_ldp::core::InpHt;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashMap;

    let eps = 1.1;
    let mech = InpHt::new(4, 2, eps);
    let mut rng = StdRng::seed_from_u64(0);
    let trials = 400_000;
    let mut count = |row: u64| {
        let mut m: HashMap<(u32, bool), f64> = HashMap::new();
        for _ in 0..trials {
            let r = mech.encode(row, &mut rng);
            *m.entry((r.coefficient, r.sign_positive)).or_default() += 1.0;
        }
        m.values_mut().for_each(|v| *v /= f64::from(trials));
        m
    };
    let pa = count(0b0011);
    let pb = count(0b0111);
    for (outcome, &p) in &pa {
        let q = pb.get(outcome).copied().unwrap_or(0.0);
        assert!(q > 0.0, "outcome impossible under adjacent input");
        let ratio = (p / q).ln().abs();
        // Allow generous sampling slack over ε.
        assert!(ratio < eps + 0.15, "outcome {outcome:?}: ln-ratio {ratio}");
    }
}
