//! Workspace smoke test: every mechanism builds, runs, and produces the
//! same [`Estimate`] whether the population is processed serially or
//! sharded across cores — the contract the production aggregation path
//! relies on (per-user seed schedule + exact aggregator merges).

use marginal_ldp::core::MechanismKind;
use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const ALL_KINDS: [MechanismKind; 7] = [
    MechanismKind::InpRr,
    MechanismKind::InpPs,
    MechanismKind::InpHt,
    MechanismKind::MargRr,
    MechanismKind::MargPs,
    MechanismKind::MargHt,
    MechanismKind::InpEm,
];

#[test]
fn every_mechanism_sharded_run_is_bit_identical_to_serial() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = TaxiGenerator::default().generate(5_000, &mut rng);
    let (d, k, eps) = (data.d(), 2, 1.1);

    for kind in ALL_KINDS {
        let mechanism = kind.build(d, k, eps);
        let serial = mechanism.run_sharded(data.rows(), 42, 1);
        let auto = mechanism.run(data.rows(), 42);
        assert_eq!(
            serial,
            auto,
            "{} diverged between serial and auto-sharded runs",
            kind.name()
        );
        for shards in [2usize, 3, 8, 64] {
            let sharded = mechanism.run_sharded(data.rows(), 42, shards);
            assert_eq!(
                serial,
                sharded,
                "{} diverged between serial and {shards}-shard runs",
                kind.name()
            );
        }
        // And the estimates are usable: query one 2-way marginal.
        let table = serial.marginal(Mask::from_attrs(&[0, 1]));
        assert_eq!(table.len(), 4, "{}", kind.name());
        assert!(
            table.iter().all(|v| v.is_finite()),
            "{} produced non-finite marginal {table:?}",
            kind.name()
        );
    }
}

#[test]
fn sharded_estimates_are_accurate_end_to_end() {
    // A larger population through the sharded path only: accuracy holds
    // (this is the paper's InpHT on the taxi generator, tvd well under
    // the quickstart's 0.05 budget).
    let mut rng = StdRng::seed_from_u64(1);
    let data = TaxiGenerator::default().generate(100_000, &mut rng);
    let mechanism = MechanismKind::InpHt.build(data.d(), 2, 1.1);
    let estimate = mechanism.run_sharded(data.rows(), 42, 8);
    let beta = Mask::from_attrs(&[5, 6]);
    let tvd = total_variation_distance(&estimate.marginal(beta), &data.true_marginal(beta));
    assert!(tvd < 0.05, "tvd {tvd}");
}
