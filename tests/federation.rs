//! Fleet-level proof of the federated aggregation tree: real `ldp-cli
//! serve` processes wired into multi-level topologies must produce a
//! **root snapshot byte-identical to a serial single-process ingest**
//! of every report pushed anywhere in the tree — the `Accumulator`
//! partition-invariance law, now crossing process *and* machine-model
//! boundaries (every hop is a real TCP socket).
//!
//! The headline test builds the 4-edges → 2-mids → 1-root tree, drives
//! the edges with concurrent batched clients, then kills an edge in the
//! middle of a `REPORT_BATCH` frame, restarts it from its checkpoint,
//! and resends the unacknowledged tail: the root must still converge to
//! the exact serial bytes. Stale-epoch pushes after the restart are
//! exercised on the way (the restarted edge's recovered epoch counter
//! is behind its own pre-crash pushes, so its first re-push is refused
//! and fast-forwarded).
//!
//! A proptest sweeps random topologies (depth ≤ 3, fan-in ≤ 4) ×
//! report-to-node assignments × mixed single/batch framing for a
//! mechanism with a dense table (MargPS), a count-map mechanism
//! (InpEM), and a sketch oracle (HCMS), using in-process servers over
//! real sockets.

use ldp_core::frame::{read_snapshot, FrameReader, FrameWriter, StreamHeader};
use ldp_core::user_rng;
use ldp_server::{
    push_report_batches, Control, PushRequest, Request, Response, ServeConfig, Server,
};
use marginal_ldp::oracles::pipeline::{
    header_for, Client, PipelineAccumulator, PipelineReport, Protocol, SketchShape,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Build (once) and locate the release `ldp-cli` binary.
fn cli_bin() -> PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "--release", "-p", "ldp_cli"])
            .current_dir(&root)
            .status()
            .expect("failed to spawn cargo build");
        assert!(status.success(), "cargo build --release -p ldp_cli failed");
        let target = match std::env::var_os("CARGO_TARGET_DIR") {
            Some(dir) => {
                let dir = PathBuf::from(dir);
                if dir.is_absolute() {
                    dir
                } else {
                    root.join(dir)
                }
            }
            None => root.join("target"),
        };
        let bin = target.join("release").join("ldp-cli");
        assert!(bin.exists(), "missing {}", bin.display());
        bin
    })
    .clone()
}

/// Run the binary to completion, asserting success; returns stdout.
fn run_cli(args: &[&str], stdin: Option<&[u8]>) -> Vec<u8> {
    let mut cmd = Command::new(cli_bin());
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("failed to spawn ldp-cli");
    if let Some(bytes) = stdin {
        child
            .stdin
            .take()
            .unwrap()
            .write_all(bytes)
            .expect("failed to feed stdin");
    } else {
        drop(child.stdin.take());
    }
    let output = child.wait_with_output().expect("failed to wait on ldp-cli");
    assert!(
        output.status.success(),
        "ldp-cli {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

/// A running `ldp-cli serve` process on an OS-picked port.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawn `serve --listen 127.0.0.1:0 --shards 2 <extra_args>` and
    /// parse the bound address off the first stderr line.
    fn start(extra_args: &[&str]) -> ServerProc {
        let (proc_, _) = ServerProc::start_lines(extra_args, 1);
        proc_
    }

    /// [`ServerProc::start`], also capturing the recovery line (the
    /// second stderr line a checkpoint-recovering server prints).
    fn start_with_recovery(extra_args: &[&str]) -> (ServerProc, String) {
        let (proc_, mut lines) = ServerProc::start_lines(extra_args, 2);
        (proc_, lines.pop().expect("a recovery line"))
    }

    fn start_lines(extra_args: &[&str], take: usize) -> (ServerProc, Vec<String>) {
        let mut cmd = Command::new(cli_bin());
        cmd.args(["serve", "--listen", "127.0.0.1:0", "--shards", "2"])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("failed to spawn ldp-cli serve");
        let stderr = child.stderr.take().unwrap();
        let mut lines = BufReader::new(stderr);
        let mut captured = Vec::new();
        for _ in 0..take {
            let mut line = String::new();
            lines
                .read_line(&mut line)
                .expect("failed to read a server stderr line");
            captured.push(line.trim().to_string());
        }
        let addr = captured
            .first()
            .expect("a first stderr line")
            .strip_prefix("serving on ")
            .unwrap_or_else(|| panic!("unexpected first stderr line: {captured:?}"))
            .split_whitespace()
            .next()
            .expect("address on the first stderr line")
            .to_string();
        // Keep draining stderr so the server never blocks on the pipe.
        std::thread::spawn(move || for _ in lines.lines() {});
        (ServerProc { child, addr }, captured)
    }

    /// Ask for a graceful shutdown and wait for a clean exit.
    fn shutdown(mut self) {
        run_cli(&["shutdown", "--connect", &self.addr], None);
        let status = self.child.wait().expect("failed to wait on the server");
        assert!(status.success(), "server exited with {status}");
    }

    /// SIGKILL — the crash a checkpoint must survive (no final
    /// checkpoint, no final push, absorbed-but-unacknowledged reports
    /// gone).
    fn kill(mut self) {
        self.child.kill().expect("failed to kill the server");
        let _ = self.child.wait();
    }
}

/// Open a client socket with a read timeout (tests must not hang).
fn client_socket(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to the server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Read one response frame from a socket.
fn read_response(stream: &TcpStream) -> Response {
    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    let frame = reader
        .next_frame()
        .expect("read a response frame")
        .expect("server closed without responding");
    Response::from_bytes(&frame).expect("decode the response frame")
}

/// Write `frames` to a socket as one framed stream, half-close, and
/// return the server's acknowledgement.
fn push_stream(addr: &str, header: &[u8], frames: &[Vec<u8>]) -> Response {
    let stream = client_socket(addr);
    let mut writer = FrameWriter::new(stream.try_clone().unwrap());
    // A rejecting server replies and closes without consuming the rest
    // of the stream; the response frame, not the write, is the
    // assertion surface — on a write error, read what the server sent.
    let wrote = (|| {
        writer.write_frame(header)?;
        for frame in frames {
            writer.write_frame(frame)?;
        }
        writer.flush()
    })();
    if wrote.is_ok() {
        stream.shutdown(Shutdown::Write).unwrap();
    }
    read_response(&stream)
}

/// The deterministic test population: n records over d attributes.
fn population(d: u32, n: usize) -> Vec<u64> {
    let full = (1u64 << d) - 1;
    (0..n as u64)
        .map(|i| (i.wrapping_mul(7) + 3) & full)
        .collect()
}

/// Encode a framed report stream with the real binary and split it
/// into the header frame plus the individual report frames.
fn encoded_stream(protocol: &str, extra: &[&str], n: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let rows = population(4, n);
    let csv: String = rows.iter().map(|r| format!("{r}\n")).collect();
    let mut args = vec![
        "encode",
        "--protocol",
        protocol,
        "--d",
        "4",
        "--k",
        "2",
        "--eps",
        "1.1",
        "--seed",
        "42",
    ];
    args.extend(extra);
    let stream = run_cli(&args, Some(csv.as_bytes()));
    let mut reader = FrameReader::new(stream.as_slice());
    let header = reader.next_frame().unwrap().expect("header frame");
    StreamHeader::from_bytes(&header).expect("header frame must parse");
    let mut frames = Vec::new();
    while let Some(frame) = reader.next_frame().unwrap() {
        frames.push(frame);
    }
    (header, frames)
}

/// Write one framed stream file (header + frames) for serial `ingest`.
fn write_stream_file(path: &Path, header: &[u8], frame_sets: &[&[Vec<u8>]]) {
    let file = std::fs::File::create(path).unwrap();
    let mut writer = FrameWriter::new(file);
    writer.write_frame(header).unwrap();
    for frames in frame_sets {
        for frame in *frames {
            writer.write_frame(frame).unwrap();
        }
    }
    writer.flush().unwrap();
}

/// Poll a server's stats until the absorbed-report line matches.
fn wait_for_reports(addr: &str, needle: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = String::from_utf8(run_cli(&["stats", "--connect", addr], None)).unwrap();
        if stats.contains(needle) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server never reached {needle:?}:\n{stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Fetch a node's live snapshot to a file. For a federated node this
/// *also* pushes its merged view upstream first (the wire contract of
/// `REQ_SNAPSHOT` on a relay), so snapshotting a tree leaf-to-root
/// deterministically propagates every report to the root.
fn snapshot_to(addr: &str, path: &Path) {
    run_cli(
        &[
            "snapshot",
            "--connect",
            addr,
            "--output",
            path.to_str().unwrap(),
        ],
        None,
    );
}

/// A per-test scratch directory. Kept under a predictable
/// `ldp_fed_*`-prefixed path so CI can upload checkpoint files as
/// artifacts when a federation test fails.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp_fed_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tentpole proof. A 3-level tree of real processes —
///
/// ```text
/// edge0 edge1   edge2 edge3
///    \   /         \   /
///    mid0           mid1
///       \           /
///         \       /
///           root
/// ```
///
/// — absorbs a batched stream pushed by four concurrent clients (one
/// per edge), and after a leaf-to-root snapshot walk the root snapshot
/// is byte-identical to a serial single-process ingest. Then edge0 is
/// SIGKILLed in the middle of a `REPORT_BATCH` frame, restarted from
/// its `--checkpoint-every 1` checkpoint (losing exactly the reports
/// never acknowledged), and the client resends the unacknowledged
/// tail: the root converges to the serial bytes of *everything*, with
/// the restarted edge's stale-epoch re-push refused and fast-forwarded
/// along the way.
#[test]
fn three_level_tree_with_edge_crash_matches_serial_ingest() {
    let dir = scratch("tree");
    let ckpt = dir.join("edge0.ckpt");
    let root = ServerProc::start(&["--output", dir.join("root_final.bin").to_str().unwrap()]);
    let mids: Vec<ServerProc> = (0..2)
        .map(|_| ServerProc::start(&["--upstream", &root.addr, "--push-every", "60000"]))
        .collect();
    let edge0 = ServerProc::start(&[
        "--upstream",
        &mids[0].addr,
        "--push-every",
        "60000",
        "--id",
        "edge-0",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "1",
    ]);
    let other_edges: Vec<ServerProc> = (1..4)
        .map(|i| ServerProc::start(&["--upstream", &mids[i / 2].addr, "--push-every", "60000"]))
        .collect();

    // Phase 1: 800 reports as 160 batch frames, four concurrent
    // clients pushing disjoint quarters into the four edges.
    let (header, frames_a) = encoded_stream("MargPS", &["--batch", "5"], 800);
    assert_eq!(frames_a.len(), 160);
    let edge_addrs: Vec<&str> = std::iter::once(edge0.addr.as_str())
        .chain(other_edges.iter().map(|e| e.addr.as_str()))
        .collect();
    std::thread::scope(|scope| {
        for (i, slice) in frames_a.chunks(40).enumerate() {
            let (addr, header) = (edge_addrs[i], &header);
            scope.spawn(move || match push_stream(addr, header, slice) {
                Response::Ingested(200) => {}
                other => panic!("edge {i} ack: {other:?}"),
            });
        }
    });

    // Propagate leaf-to-root: each snapshot pushes that node's merged
    // view one hop up before answering.
    for addr in &edge_addrs {
        snapshot_to(addr, &dir.join("hop.bin"));
    }
    for mid in &mids {
        snapshot_to(&mid.addr, &dir.join("hop.bin"));
    }
    let root_live = dir.join("root_live.bin");
    snapshot_to(&root.addr, &root_live);

    let serial_a = dir.join("serial_a.bin");
    write_stream_file(&serial_a, &header, &[&frames_a]);
    let expected_a = run_cli(&["ingest"], Some(&std::fs::read(&serial_a).unwrap()));
    assert_eq!(
        std::fs::read(&root_live).unwrap(),
        expected_a,
        "root snapshot differs from serial ingest of the full stream"
    );

    // Phase 2: crash edge0 mid-batch-frame. A second stream (users
    // 800..900, 20 batch frames) goes to edge0: the first 10 frames
    // are pushed and acknowledged (checkpointed, epoch included); one
    // more snapshot bumps edge0's push epoch *past* what its
    // checkpoint recorded; then a client writes 2 complete frames and
    // half of a third and edge0 is SIGKILLed.
    let (_, frames_b) = encoded_stream("MargPS", &["--batch", "5", "--first-user", "800"], 100);
    assert_eq!(frames_b.len(), 20);
    match push_stream(&edge0.addr, &header, &frames_b[..10]) {
        Response::Ingested(50) => {}
        other => panic!("pre-crash ack: {other:?}"),
    }
    // Two more pushes AFTER the last checkpoint write: the recovered
    // epoch counter will trail the upstream's held epoch by 2, so the
    // first post-restart push is strictly stale (an equal epoch would
    // apply — re-pushes are idempotent).
    snapshot_to(&edge0.addr, &dir.join("hop.bin"));
    snapshot_to(&edge0.addr, &dir.join("hop.bin"));
    {
        let stream = client_socket(&edge0.addr);
        let mut writer = FrameWriter::new(stream.try_clone().unwrap());
        writer.write_frame(&header).unwrap();
        for frame in &frames_b[10..12] {
            writer.write_frame(frame).unwrap();
        }
        writer.flush().unwrap();
        let partial = &frames_b[12][..frames_b[12].len() / 2];
        let mut raw = writer.into_inner();
        raw.write_all(&(frames_b[12].len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(partial).unwrap();
        raw.flush().unwrap();
        // Both complete frames land in memory (absorbed, never
        // acknowledged, never checkpointed) before the kill.
        wait_for_reports(&edge0.addr, "reports: 260 absorbed");
    }
    edge0.kill();

    // Restart from the checkpoint: only acknowledged reports survive
    // (200 from phase 1 + 50 acknowledged pre-crash), proving the two
    // absorbed-but-unacknowledged frames died with the process.
    let (edge0, recovery) = ServerProc::start_with_recovery(&[
        "--upstream",
        &mids[0].addr,
        "--push-every",
        "60000",
        "--id",
        "edge-0",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "1",
    ]);
    assert!(
        recovery.starts_with("recovered checkpoint: 250 reports"),
        "unexpected recovery line: {recovery:?}"
    );
    wait_for_reports(&edge0.addr, "reports: 250 absorbed");

    // At-least-once resend of everything unacknowledged. Frames 10 and
    // 11 were absorbed before the crash but lost with it, so the
    // resend lands every report exactly once.
    match push_stream(&edge0.addr, &header, &frames_b[10..]) {
        Response::Ingested(50) => {}
        other => panic!("resend ack: {other:?}"),
    }

    // Propagate again. The restarted edge's epoch counter came from
    // the checkpoint, which predates the last pre-crash push — so its
    // first re-push is refused as stale (mid0 keeps serving) and
    // fast-forwards the counter; the second applies.
    snapshot_to(&edge0.addr, &dir.join("hop.bin"));
    snapshot_to(&edge0.addr, &dir.join("hop.bin"));
    snapshot_to(&mids[0].addr, &dir.join("hop.bin"));
    snapshot_to(&root.addr, &root_live);

    let serial_ab = dir.join("serial_ab.bin");
    write_stream_file(&serial_ab, &header, &[&frames_a, &frames_b]);
    let expected_ab = run_cli(&["ingest"], Some(&std::fs::read(&serial_ab).unwrap()));
    assert_eq!(
        std::fs::read(&root_live).unwrap(),
        expected_ab,
        "root snapshot differs from serial ingest after crash + recovery + resend"
    );

    // Graceful teardown leaf-to-root: every node's final push lands in
    // a still-serving parent, and the root's on-shutdown snapshot file
    // holds the same serial bytes.
    edge0.shutdown();
    for edge in other_edges {
        edge.shutdown();
    }
    for mid in mids {
        mid.shutdown();
    }
    root.shutdown();
    assert_eq!(
        std::fs::read(dir.join("root_final.bin")).unwrap(),
        expected_ab,
        "root's final on-shutdown snapshot differs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed and stale pushes are refused by name on the control
/// plane, and the upstream keeps serving — with its held state intact
/// — through all of them.
#[test]
fn corrupt_and_stale_pushes_are_named_and_survivable() {
    let dir = scratch("badpush");
    let (header_bytes, frames) = encoded_stream("MargPS", &["--batch", "4"], 200);
    let root = ServerProc::start(&[]);

    // A valid snapshot to push: serial ingest of the first half.
    let half = frames.len() / 2;
    let first_half = dir.join("first_half.bin");
    write_stream_file(&first_half, &header_bytes, &[&frames[..half]]);
    let snapshot = run_cli(&["ingest"], Some(&std::fs::read(&first_half).unwrap()));
    let (header, state) = read_snapshot(snapshot.as_slice()).unwrap();

    let mut control = Control::connect(&root.addr).unwrap();
    let push = |control: &mut Control, epoch: u64, state: Vec<u8>| {
        control.request(&Request::Push(PushRequest {
            collector: "child-a".to_string(),
            epoch,
            header,
            state,
        }))
    };

    // A fresh push applies; re-pushing the same epoch is idempotent.
    for _ in 0..2 {
        match push(&mut control, 5, state.clone()) {
            Ok(Response::Push {
                applied: true,
                latest_epoch: 5,
            }) => {}
            other => panic!("valid push got {other:?}"),
        }
    }
    // A stale epoch is refused by name — applied = false, carrying the
    // epoch the pusher must fast-forward past — and replaces nothing.
    match push(&mut control, 3, state.clone()) {
        Ok(Response::Push {
            applied: false,
            latest_epoch: 5,
        }) => {}
        other => panic!("stale push got {other:?}"),
    }
    // A push whose state does not decode is refused by name.
    match push(&mut control, 9, vec![0xFF; 7]) {
        Err(message) => assert!(message.contains("does not decode"), "{message}"),
        other => panic!("corrupt push got {other:?}"),
    }
    // A push for a different pipeline is refused by name.
    let (alien_header_bytes, _) = encoded_stream("MargHT", &[], 4);
    let alien_header = StreamHeader::from_bytes(&alien_header_bytes).unwrap();
    match control.request(&Request::Push(PushRequest {
        collector: "child-a".to_string(),
        epoch: 9,
        header: alien_header,
        state: state.clone(),
    })) {
        Err(message) => assert!(
            message.contains("does not match the established"),
            "{message}"
        ),
        other => panic!("cross-pipeline push got {other:?}"),
    }
    drop(control);

    // Through all of that the root kept serving: direct ingest of the
    // second half still lands, and the snapshot merges the held push
    // with the directly-absorbed reports into exactly the serial
    // bytes of the full stream.
    match push_stream(&root.addr, &header_bytes, &frames[half..]) {
        Response::Ingested(n) => assert_eq!(n as usize, (frames.len() - half) * 4),
        other => panic!("direct ingest got {other:?}"),
    }
    let live = dir.join("live.bin");
    snapshot_to(&root.addr, &live);
    let full = dir.join("full.bin");
    write_stream_file(&full, &header_bytes, &[&frames]);
    let expected = run_cli(&["ingest"], Some(&std::fs::read(&full).unwrap()));
    assert_eq!(
        std::fs::read(&live).unwrap(),
        expected,
        "root snapshot differs after the bad-push barrage"
    );
    root.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `merge --connect` pulls live snapshots over the control plane and
/// folds them with snapshot files: the offline half of federation.
#[test]
fn merge_connect_folds_live_collectors_with_snapshot_files() {
    let dir = scratch("merge");
    let (header, frames) = encoded_stream("InpEM", &[], 300);
    let third = frames.len() / 3;

    // Two live collectors hold a third each; the last third becomes a
    // snapshot file via serial ingest.
    let servers: Vec<ServerProc> = (0..2).map(|_| ServerProc::start(&[])).collect();
    for (server, slice) in servers.iter().zip(frames.chunks(third)) {
        match push_stream(&server.addr, &header, slice) {
            Response::Ingested(n) => assert_eq!(n as usize, third),
            other => panic!("seed ingest got {other:?}"),
        }
    }
    let tail_stream = dir.join("tail_stream.bin");
    write_stream_file(&tail_stream, &header, &[&frames[2 * third..]]);
    let tail_snapshot = dir.join("tail.bin");
    run_cli(
        &[
            "ingest",
            "--input",
            tail_stream.to_str().unwrap(),
            "--output",
            tail_snapshot.to_str().unwrap(),
        ],
        None,
    );

    let merged = dir.join("merged.bin");
    run_cli(
        &[
            "merge",
            tail_snapshot.to_str().unwrap(),
            "--connect",
            &format!("{},{}", servers[0].addr, servers[1].addr),
            "--output",
            merged.to_str().unwrap(),
        ],
        None,
    );
    for server in servers {
        server.shutdown();
    }

    let full = dir.join("full.bin");
    write_stream_file(&full, &header, &[&frames]);
    let serial = run_cli(&["ingest"], Some(&std::fs::read(&full).unwrap()));
    // merge folds the file first, then the remotes — a different
    // partition and order than serial ingest, which is exactly what
    // the partition-invariance law says must not matter.
    let reordered = std::fs::read(&merged).unwrap();
    assert_eq!(
        reordered, serial,
        "merge --connect differs from serial ingest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A graceful shutdown writes a final checkpoint, and a restart
/// resumes from it exactly: the recovered server reports the restored
/// count, and absorbing the remaining stream converges to the serial
/// bytes of the whole stream.
#[test]
fn graceful_shutdown_checkpoint_resumes_exactly() {
    let dir = scratch("resume");
    let ckpt = dir.join("collector.ckpt");
    let (header, frames) = encoded_stream("HCMS", &["--hashes", "3", "--width", "16"], 120);
    let half = frames.len() / 2;

    let server = ServerProc::start(&["--checkpoint", ckpt.to_str().unwrap()]);
    match push_stream(&server.addr, &header, &frames[..half]) {
        Response::Ingested(n) => assert_eq!(n as usize, half),
        other => panic!("first-half ingest got {other:?}"),
    }
    server.shutdown();
    assert!(ckpt.exists(), "graceful shutdown wrote no checkpoint");

    let (server, recovery) =
        ServerProc::start_with_recovery(&["--checkpoint", ckpt.to_str().unwrap()]);
    assert!(
        recovery.starts_with("recovered checkpoint: 60 reports"),
        "unexpected recovery line: {recovery:?}"
    );
    match push_stream(&server.addr, &header, &frames[half..]) {
        Response::Ingested(n) => assert_eq!(n as usize, frames.len() - half),
        other => panic!("second-half ingest got {other:?}"),
    }
    let live = dir.join("live.bin");
    snapshot_to(&server.addr, &live);
    server.shutdown();

    let full = dir.join("full.bin");
    write_stream_file(&full, &header, &[&frames]);
    let serial = run_cli(&["ingest"], Some(&std::fs::read(&full).unwrap()));
    assert_eq!(
        std::fs::read(&live).unwrap(),
        serial,
        "recovered + resumed snapshot differs from serial ingest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Random-topology property: in-process servers over real sockets.
// ---------------------------------------------------------------------

/// One node of an in-process federation tree.
struct Node {
    addr: String,
    depth: usize,
    handle: std::thread::JoinHandle<Result<ldp_server::ServerSummary, String>>,
}

/// Build a tree from raw parent seeds: node 0 is the root; node `i`'s
/// parent is drawn from the nodes at depth ≤ 1 that still have spare
/// fan-in (< 4 children), keeping every topology within depth ≤ 3 and
/// fan-in ≤ 4.
fn build_tree(parent_seeds: &[u8]) -> (Vec<usize>, Vec<usize>) {
    let n = parent_seeds.len() + 1;
    let mut parents = vec![0usize; n]; // parents[0] unused
    let mut depths = vec![0usize; n];
    let mut children = vec![0usize; n];
    for i in 1..n {
        let candidates: Vec<usize> = (0..i)
            .filter(|&j| depths[j] <= 1 && children[j] < 4)
            .collect();
        let parent = candidates[parent_seeds[i - 1] as usize % candidates.len()];
        parents[i] = parent;
        depths[i] = depths[parent] + 1;
        children[parent] += 1;
    }
    (parents, depths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every random topology (depth ≤ 3, fan-in ≤ 4), every
    /// assignment of reports to nodes (interior nodes ingest too),
    /// and every mix of single-report and batched framing, the root's
    /// snapshot after a leaf-to-root propagation walk is
    /// byte-identical to a serial single-process absorb of all
    /// reports — for a dense-table mechanism, a count-map mechanism,
    /// and a sketch oracle.
    #[test]
    fn random_topologies_converge_to_serial_bytes(
        proto_idx in 0usize..3,
        parent_seeds in proptest::collection::vec(any::<u8>(), 1..8),
        assignments in proptest::collection::vec(any::<u64>(), 20..60),
        batch_seeds in proptest::collection::vec(0usize..8, 8),
    ) {
        let protocol = Protocol::parse(["MargPS", "InpEM", "HCMS"][proto_idx]).unwrap();
        let sketch = SketchShape { hashes: 3, width: 16, family_seed: 9 };
        let header = header_for(protocol, 4, 2, 1.1, sketch);
        let client = Client::from_header(&header).unwrap();

        let (parents, depths) = build_tree(&parent_seeds);
        let n_nodes = parents.len();

        // Spawn the tree root-first so every upstream address exists
        // before its children need it.
        let mut nodes: Vec<Node> = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let mut config = ServeConfig::new("127.0.0.1:0", 2);
            if i > 0 {
                config.upstream = Some(nodes[parents[i]].addr.clone());
                config.push_every = Duration::from_secs(60);
                config.collector = Some(format!("node-{i}"));
            }
            let server = Server::bind_with(&config).unwrap();
            let addr = server.local_addr().unwrap().to_string();
            let handle = std::thread::spawn(move || server.run());
            nodes.push(Node { addr, depth: depths[i], handle });
        }

        // Encode every report with the global user schedule and
        // assign each to a node (low bits pick the row, a high byte
        // picks the node — interior nodes ingest too); the serial
        // reference absorbs them all in one accumulator.
        let mask = (1u64 << 4) - 1;
        let mut per_node: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n_nodes];
        let mut serial = PipelineAccumulator::empty(&header).unwrap();
        for (user, seed) in assignments.iter().enumerate() {
            let mut rng = user_rng(42, user as u64);
            let frame = client.encode_report(seed & mask, &mut rng);
            serial.absorb_batch(&[PipelineReport::from_bytes(&frame).unwrap()]).unwrap();
            per_node[(seed >> 32) as usize % n_nodes].push(frame);
        }
        let expected = serial.to_bytes();

        // Concurrent clients: one per non-empty node, each with its
        // own framing (batch 0 = wire-v1 single-report frames).
        std::thread::scope(|scope| {
            for (i, frames) in per_node.iter().enumerate() {
                if frames.is_empty() {
                    continue;
                }
                let addr = nodes[i].addr.clone();
                let batch = batch_seeds[i % batch_seeds.len()];
                let header = &header;
                scope.spawn(move || {
                    let acked = push_report_batches(&addr, header, frames, batch).unwrap();
                    assert_eq!(acked as usize, frames.len());
                });
            }
        });

        // Propagate deepest-first: every snapshot pushes one hop up.
        let mut order: Vec<usize> = (1..n_nodes).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(nodes[i].depth));
        for i in order {
            let mut control = Control::connect(&nodes[i].addr).unwrap();
            match control.request(&Request::Snapshot) {
                Ok(Response::Snapshot { .. }) => {}
                // A node whose whole subtree got no reports has no
                // pipeline (and nothing to propagate).
                Err(e) => prop_assert!(e.contains("no report stream"), "{e}"),
                other => panic!("snapshot got {other:?}"),
            }
        }
        let mut control = Control::connect(&nodes[0].addr).unwrap();
        let root_state = match control.request(&Request::Snapshot) {
            Ok(Response::Snapshot { state, .. }) => state,
            other => panic!("root snapshot got {other:?}"),
        };
        drop(control);
        prop_assert_eq!(
            &root_state,
            &expected,
            "root bytes differ from serial absorb (topology {:?})",
            parents
        );

        // Tear down leaf-to-root so every final push finds a live
        // parent.
        let mut order: Vec<usize> = (0..n_nodes).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(nodes[i].depth));
        for i in order {
            let mut control = Control::connect(&nodes[i].addr).unwrap();
            control.request(&Request::Shutdown).unwrap();
        }
        for node in nodes {
            node.handle.join().unwrap().unwrap();
        }
    }
}
