//! Property-based cross-crate invariants.

use marginal_ldp::core::exact_hadamard_estimate;
use marginal_ldp::prelude::*;
use marginal_ldp::transform::efron_stein::{
    marginalize_categorical, CategoricalDomain, EfronStein,
};
use proptest::prelude::*;

fn arb_dataset(d: u32, max_n: usize) -> impl Strategy<Value = BinaryDataset> {
    let mask = (1u64 << d) - 1;
    proptest::collection::vec(any::<u64>().prop_map(move |r| r & mask), 8..max_n)
        .prop_map(move |rows| BinaryDataset::new(d, rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 3.7 at the system level: exact Hadamard coefficients
    /// reconstruct every marginal of every random dataset exactly.
    #[test]
    fn hadamard_reconstruction_is_exact(data in arb_dataset(5, 64)) {
        let est = exact_hadamard_estimate(&data, 3);
        for beta_bits in 0u64..32 {
            let beta = Mask::new(beta_bits);
            if beta.weight() > 3 { continue; }
            let truth = data.true_marginal(beta);
            let got = est.marginal(beta);
            for (a, b) in truth.iter().zip(&got) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// Marginal consistency: aggregating a 2-way table to 1-way equals
    /// querying the 1-way marginal directly, for every estimate type.
    #[test]
    fn submarginal_consistency(seed in 0u64..1000) {
        let data = {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
            TaxiGenerator::default().generate(2_000, &mut rng).project(Mask::full(5))
        };
        for kind in [MechanismKind::InpHt, MechanismKind::InpRr] {
            let est = kind.build(5, 2, 1.5).run(data.rows(), seed);
            let two = est.marginal(Mask::from_attrs(&[1, 3]));
            let one = est.marginal(Mask::from_attrs(&[1]));
            // Sum out attribute 3 (local bit 1).
            let folded = [two[0b00] + two[0b10], two[0b01] + two[0b11]];
            prop_assert!((folded[0] - one[0]).abs() < 1e-9, "{}", kind.name());
            prop_assert!((folded[1] - one[1]).abs() < 1e-9, "{}", kind.name());
        }
    }

    /// clamp_normalize always yields a probability distribution that
    /// preserves the argmax of the raw table (when positive).
    #[test]
    fn clamp_normalize_is_sound(raw in proptest::collection::vec(-0.5f64..1.5, 2..32)) {
        let p = clamp_normalize(&raw);
        prop_assert_eq!(p.len(), raw.len());
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| (0.0..=1.0 + 1e-12).contains(v)));
        let max_raw = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if max_raw > 0.0 {
            let argmax_raw = raw.iter().position(|&v| v == max_raw).unwrap();
            let max_p = p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((p[argmax_raw] - max_p).abs() < 1e-12);
        }
    }

    /// Efron–Stein marginals agree with direct categorical marginals on
    /// random tables (the §6.3 extension's core guarantee).
    #[test]
    fn efron_stein_marginals_exact(raw in proptest::collection::vec(0.01f64..1.0, 24)) {
        let domain = CategoricalDomain::new(&[2, 3, 4]);
        let total: f64 = raw.iter().sum();
        let p: Vec<f64> = raw.iter().map(|v| v / total).collect();
        let es = EfronStein::decompose(&p, &domain);
        for beta_bits in 0u64..8 {
            let beta = Mask::new(beta_bits);
            let direct = marginalize_categorical(&p, &domain, beta);
            let via = es.marginal(beta);
            for (a, b) in direct.iter().zip(&via) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// The categorical binary encoding round-trips marginal mass: the
    /// categorical marginal recovered from an exact binary marginal sums
    /// to 1 and matches the dataset.
    #[test]
    fn categorical_encoding_roundtrip(seed in 0u64..500) {
        let schema = CategoricalSchema::new(&[3, 4]);
        let dists = vec![vec![0.5, 0.3, 0.2], vec![0.4, 0.3, 0.2, 0.1]];
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let data = schema.generate_independent(&dists, 4_000, &mut rng);
        let table = data.true_marginal(schema.binary_mask(&[0, 1]));
        let cat = schema.categorical_marginal(&[0, 1], &table);
        prop_assert_eq!(cat.len(), 12);
        prop_assert!((cat.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

/// Unbiasedness at the pipeline level: the mean over repeated runs of a
/// cell estimate converges to the truth for every mechanism (not a
/// proptest — a fixed statistical test with controlled tolerance).
#[test]
fn pipeline_estimates_are_unbiased() {
    let data = {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        TaxiGenerator::default()
            .generate(4_000, &mut rng)
            .project(Mask::full(4))
    };
    let beta = Mask::from_attrs(&[0, 2]);
    let truth = data.true_marginal(beta);
    let reps = 60;
    for kind in MechanismKind::SIX {
        let mech = kind.build(4, 2, 1.1);
        let mut mean = [0.0f64; 4];
        for r in 0..reps {
            let m = mech.run(data.rows(), 1000 + r).marginal(beta);
            for (acc, v) in mean.iter_mut().zip(&m) {
                *acc += v / reps as f64;
            }
        }
        for (cell, (m, t)) in mean.iter().zip(&truth).enumerate() {
            assert!(
                (m - t).abs() < 0.05,
                "{} cell {cell}: mean {m} vs truth {t}",
                kind.name()
            );
        }
    }
}
