//! End-to-end proof that the `ldp-cli` pipeline over the wire format is
//! byte-identical to a single-process run.
//!
//! Every test shells out to the real binary: `encode` writes a framed
//! report stream, the test *splits* that stream at frame boundaries
//! (acting as the `split` stage of `encode | split | ingest ×4 | merge |
//! query`), four separate `ingest` processes each fold one part into a
//! snapshot, `merge` combines them, and `query` finalizes. The merged
//! snapshot's accumulator state must equal — byte for byte — both a
//! single-process `ingest` of the unsplit stream and an in-process
//! reference built directly against `ldp_core`, and the finalized
//! estimate must equal `Mechanism::run`.

use ldp_core::frame::{read_snapshot, FrameReader, FrameWriter, StreamHeader};
use ldp_core::{user_rng, Accumulator, MarginalEstimator, MechanismAccumulator, MechanismKind};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;

/// Build (once) and locate the release `ldp-cli` binary.
fn cli_bin() -> PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "--release", "-p", "ldp_cli"])
            .current_dir(&root)
            .status()
            .expect("failed to spawn cargo build");
        assert!(status.success(), "cargo build --release -p ldp_cli failed");
        let target = match std::env::var_os("CARGO_TARGET_DIR") {
            Some(dir) => {
                let dir = PathBuf::from(dir);
                if dir.is_absolute() {
                    dir
                } else {
                    root.join(dir)
                }
            }
            None => root.join("target"),
        };
        let bin = target.join("release").join("ldp-cli");
        assert!(bin.exists(), "missing {}", bin.display());
        bin
    })
    .clone()
}

/// Run the binary, asserting success; returns stdout.
fn run_cli(args: &[&str], stdin: Option<&[u8]>) -> Vec<u8> {
    let (ok, out, err) = run_cli_raw(args, stdin);
    assert!(ok, "ldp-cli {args:?} failed:\n{err}");
    out
}

/// Run the binary without asserting; returns (success, stdout, stderr).
fn run_cli_raw(args: &[&str], stdin: Option<&[u8]>) -> (bool, Vec<u8>, String) {
    let mut cmd = Command::new(cli_bin());
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("failed to spawn ldp-cli");
    if let Some(bytes) = stdin {
        use std::io::Write;
        child
            .stdin
            .take()
            .unwrap()
            .write_all(bytes)
            .expect("failed to feed stdin");
    } else {
        drop(child.stdin.take());
    }
    let output = child.wait_with_output().expect("failed to wait on ldp-cli");
    (
        output.status.success(),
        output.stdout,
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// A per-test scratch directory.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp_cli_pipeline_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic test population: n records over d attributes.
fn population(d: u32, n: usize) -> Vec<u64> {
    let full = (1u64 << d) - 1;
    (0..n as u64)
        .map(|i| (i.wrapping_mul(7) + 3) & full)
        .collect()
}

fn write_rows_csv(path: &Path, rows: &[u64]) {
    let text: String = rows.iter().map(|r| format!("{r}\n")).collect();
    std::fs::write(path, text).unwrap();
}

/// Split a framed report stream into `parts` streams, each repeating
/// the header frame — the `split` stage of the pipeline, exercising the
/// frame format from an independent consumer.
fn split_stream(stream: &[u8], parts: usize, dir: &Path) -> Vec<PathBuf> {
    let mut reader = FrameReader::new(stream);
    let header = reader.next_frame().unwrap().expect("missing header frame");
    StreamHeader::from_bytes(&header).expect("header frame must parse");
    let mut frames = Vec::new();
    while let Some(frame) = reader.next_frame().unwrap() {
        frames.push(frame);
    }
    let chunk = frames.len().div_ceil(parts);
    frames
        .chunks(chunk)
        .enumerate()
        .map(|(i, slice)| {
            let path = dir.join(format!("part{i}.bin"));
            let mut buf = Vec::new();
            let mut w = FrameWriter::new(&mut buf);
            w.write_frame(&header).unwrap();
            for frame in slice {
                w.write_frame(frame).unwrap();
            }
            std::fs::write(&path, buf).unwrap();
            path
        })
        .collect()
}

const D: u32 = 4;
const K: u32 = 2;
const EPS: f64 = 1.1;
const SEED: u64 = 42;
const N: usize = 600;

/// The tentpole proof, for every mechanism: the multi-process
/// `encode | split | ingest ×4 | merge | query` pipeline is
/// byte-identical to a single-process ingest, to an in-process
/// reference accumulator, and (estimate-wise) to `Mechanism::run`.
#[test]
fn multiprocess_pipeline_matches_single_process_for_every_mechanism() {
    for kind in MechanismKind::ALL {
        let dir = scratch(&format!("mech_{}", kind.name()));
        let rows = population(D, N);
        let rows_csv = dir.join("rows.csv");
        write_rows_csv(&rows_csv, &rows);

        // encode
        let stream_path = dir.join("stream.bin");
        run_cli(
            &[
                "encode",
                "--protocol",
                kind.name(),
                "--d",
                &D.to_string(),
                "--k",
                &K.to_string(),
                "--eps",
                &EPS.to_string(),
                "--seed",
                &SEED.to_string(),
                "--input",
                rows_csv.to_str().unwrap(),
                "--output",
                stream_path.to_str().unwrap(),
            ],
            None,
        );
        let stream = std::fs::read(&stream_path).unwrap();

        // split | ingest ×4 (four separate processes)
        let parts = split_stream(&stream, 4, &dir);
        assert_eq!(parts.len(), 4, "{}", kind.name());
        let snapshots: Vec<PathBuf> = parts
            .iter()
            .enumerate()
            .map(|(i, part)| {
                let snap = dir.join(format!("snap{i}.bin"));
                run_cli(
                    &[
                        "ingest",
                        "--input",
                        part.to_str().unwrap(),
                        "--output",
                        snap.to_str().unwrap(),
                    ],
                    None,
                );
                snap
            })
            .collect();

        // merge
        let merged_path = dir.join("merged.bin");
        let mut merge_args = vec!["merge", "--output", merged_path.to_str().unwrap()];
        let snapshot_strs: Vec<&str> = snapshots.iter().map(|p| p.to_str().unwrap()).collect();
        merge_args.extend(&snapshot_strs);
        run_cli(&merge_args, None);

        // single-process reference ingest of the unsplit stream
        let single_path = dir.join("single.bin");
        run_cli(
            &[
                "ingest",
                "--input",
                stream_path.to_str().unwrap(),
                "--output",
                single_path.to_str().unwrap(),
            ],
            None,
        );

        let (merged_header, merged_state) =
            read_snapshot(std::fs::read(&merged_path).unwrap().as_slice()).unwrap();
        let (single_header, single_state) =
            read_snapshot(std::fs::read(&single_path).unwrap().as_slice()).unwrap();
        assert_eq!(merged_header, single_header, "{}", kind.name());
        assert_eq!(merged_header.mechanism_kind(), Some(kind));
        assert_eq!(
            merged_state,
            single_state,
            "{}: merged 4-process state differs from single-process state",
            kind.name()
        );

        // In-process reference: same mechanism, same user_rng schedule.
        let mech = kind.build(D, K, EPS);
        let mut reference = mech.accumulator();
        for (user, &row) in rows.iter().enumerate() {
            let mut rng = user_rng(SEED, user as u64);
            reference.absorb(&mech.encode(row, &mut rng));
        }
        assert_eq!(
            merged_state,
            reference.to_bytes(),
            "{}: pipeline state differs from the in-process reference",
            kind.name()
        );

        // Estimate equality against Mechanism::run (InpRr's `run`
        // substitutes the aggregate simulation, so its reference is the
        // streaming accumulator only).
        let rehydrated = MechanismAccumulator::from_bytes(&merged_state).unwrap();
        assert_eq!(rehydrated.kind(), kind, "snapshot rehydration kind");
        assert_eq!(rehydrated.report_count(), N as u64, "{}", kind.name());
        let estimate = rehydrated.finalize();
        if kind != MechanismKind::InpRr {
            assert_eq!(
                estimate,
                mech.run(&rows, SEED),
                "{}: pipeline estimate differs from Mechanism::run",
                kind.name()
            );
        }
        // The estimate must answer k-way marginals.
        let table = estimate.marginal(ldp_bits::Mask::from_attrs(&[0, D - 1]));
        assert_eq!(table.len(), 4, "{}", kind.name());

        // query: merged and single snapshots print identical bytes.
        let merged_csv = run_cli(&["query", "--input", merged_path.to_str().unwrap()], None);
        let single_csv = run_cli(&["query", "--input", single_path.to_str().unwrap()], None);
        assert_eq!(merged_csv, single_csv, "{}", kind.name());
        let text = String::from_utf8(merged_csv).unwrap();
        assert!(
            text.starts_with("marginal,cell,estimate"),
            "{}: unexpected query output:\n{text}",
            kind.name()
        );
        assert!(text.lines().count() > 1, "{}", kind.name());

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The same proof for frequency oracles (HCMS end to end, plus OLH —
/// whose serialized state is canonicalized by sorting, making merge
/// order invisible).
#[test]
fn multiprocess_pipeline_matches_reference_for_oracles() {
    use ldp_oracles::OracleKind;

    for (kind, name) in [(OracleKind::Hcms, "hcms"), (OracleKind::Olh, "olh")] {
        let dir = scratch(&format!("oracle_{name}"));
        let rows = population(D, N);
        let rows_csv = dir.join("rows.csv");
        write_rows_csv(&rows_csv, &rows);

        let stream_path = dir.join("stream.bin");
        run_cli(
            &[
                "encode",
                "--protocol",
                name,
                "--d",
                &D.to_string(),
                "--eps",
                &EPS.to_string(),
                "--seed",
                &SEED.to_string(),
                "--hashes",
                "3",
                "--width",
                "16",
                "--family-seed",
                "9",
                "--input",
                rows_csv.to_str().unwrap(),
                "--output",
                stream_path.to_str().unwrap(),
            ],
            None,
        );
        let stream = std::fs::read(&stream_path).unwrap();

        let parts = split_stream(&stream, 4, &dir);
        let snapshots: Vec<PathBuf> = parts
            .iter()
            .enumerate()
            .map(|(i, part)| {
                let snap = dir.join(format!("snap{i}.bin"));
                run_cli(
                    &[
                        "ingest",
                        "--input",
                        part.to_str().unwrap(),
                        "--output",
                        snap.to_str().unwrap(),
                    ],
                    None,
                );
                snap
            })
            .collect();

        let merged_path = dir.join("merged.bin");
        let mut merge_args = vec!["merge", "--output", merged_path.to_str().unwrap()];
        let snapshot_strs: Vec<&str> = snapshots.iter().map(|p| p.to_str().unwrap()).collect();
        merge_args.extend(&snapshot_strs);
        run_cli(&merge_args, None);

        let (header, merged_state) =
            read_snapshot(std::fs::read(&merged_path).unwrap().as_slice()).unwrap();
        assert_eq!(header.mechanism_kind(), None, "{name} is not a mechanism");

        // In-process reference through the type-erased oracle layer.
        let oracle = kind.build(D, EPS, 3, 16, 9);
        let mut reference = oracle.accumulator();
        for (user, &row) in rows.iter().enumerate() {
            let mut rng = user_rng(SEED, user as u64);
            reference.absorb(&oracle.encode(row, &mut rng));
        }
        assert_eq!(
            merged_state,
            reference.to_bytes(),
            "{name}: pipeline state differs from the in-process reference"
        );

        let csv = run_cli(&["query", "--input", merged_path.to_str().unwrap()], None);
        let text = String::from_utf8(csv).unwrap();
        assert!(text.starts_with("value,estimate"), "{name}:\n{text}");
        // Full domain: 2^d estimates after the header line.
        assert_eq!(text.lines().count(), 1 + (1 << D), "{name}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The pipeline also composes over real stdin/stdout pipes.
#[test]
fn pipeline_flows_through_stdin_and_stdout() {
    let rows = population(D, 300);
    let csv: String = rows.iter().map(|r| format!("{r}\n")).collect();
    let stream = run_cli(
        &[
            "encode",
            "--protocol",
            "MargPS",
            "--d",
            "4",
            "--k",
            "2",
            "--eps",
            "1.1",
        ],
        Some(csv.as_bytes()),
    );
    let snapshot = run_cli(&["ingest"], Some(&stream));
    let (header, state) = read_snapshot(snapshot.as_slice()).unwrap();
    assert_eq!(header.mechanism_kind(), Some(MechanismKind::MargPs));
    let acc = MechanismAccumulator::from_bytes(&state).unwrap();
    assert_eq!(acc.report_count(), 300);
    let out = run_cli(&["query", "--format", "json"], Some(&snapshot));
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"protocol\": \"MargPS\""), "{text}");
    assert!(text.contains("\"reports\": 300"), "{text}");
}

/// `merge` must refuse to combine snapshots of different pipelines.
#[test]
fn merge_refuses_mismatched_pipelines() {
    let dir = scratch("mismatch");
    let rows = population(D, 100);
    let rows_csv = dir.join("rows.csv");
    write_rows_csv(&rows_csv, &rows);

    for (protocol, out) in [("MargPS", "a.bin"), ("MargHT", "b.bin")] {
        let stream = dir.join(format!("{protocol}.stream"));
        run_cli(
            &[
                "encode",
                "--protocol",
                protocol,
                "--d",
                &D.to_string(),
                "--input",
                rows_csv.to_str().unwrap(),
                "--output",
                stream.to_str().unwrap(),
            ],
            None,
        );
        run_cli(
            &[
                "ingest",
                "--input",
                stream.to_str().unwrap(),
                "--output",
                dir.join(out).to_str().unwrap(),
            ],
            None,
        );
    }
    let (ok, _, err) = run_cli_raw(
        &[
            "merge",
            "--output",
            dir.join("bad.bin").to_str().unwrap(),
            dir.join("a.bin").to_str().unwrap(),
            dir.join("b.bin").to_str().unwrap(),
        ],
        None,
    );
    assert!(!ok, "merging mismatched pipelines must fail");
    assert!(
        err.contains("refusing to merge"),
        "unexpected error:\n{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parameter combinations the protocol constructors would panic on are
/// rejected with a named error before construction — for flags and for
/// headers arriving over the wire alike.
#[test]
fn invalid_parameters_fail_gracefully() {
    let cases: [(&[&str], &str); 4] = [
        (&["encode", "--protocol", "OLH", "--d", "50"], "d ≤ 40"),
        (&["encode", "--protocol", "OLH", "--eps", "6"], "ln(255)"),
        (&["encode", "--protocol", "CMS", "--width", "0"], "width"),
        (
            &["encode", "--protocol", "HCMS", "--width", "100"],
            "power of two",
        ),
    ];
    for (args, needle) in cases {
        let (ok, _, err) = run_cli_raw(args, Some(b"1\n"));
        assert!(!ok, "{args:?} must fail");
        assert!(
            err.contains(needle) && !err.contains("panicked"),
            "{args:?}: expected a graceful {needle:?} error, got:\n{err}"
        );
    }
}

/// A truncated report stream is rejected with a frame error, not
/// silently folded into a short snapshot.
#[test]
fn ingest_rejects_truncated_streams() {
    let rows = population(D, 50);
    let csv: String = rows.iter().map(|r| format!("{r}\n")).collect();
    let stream = run_cli(
        &["encode", "--protocol", "InpHT", "--d", "4"],
        Some(csv.as_bytes()),
    );
    let cut = &stream[..stream.len() - 3];
    let (ok, _, err) = run_cli_raw(&["ingest"], Some(cut));
    assert!(!ok, "truncated stream must fail");
    assert!(err.contains("truncated"), "unexpected error:\n{err}");
}
