//! End-to-end proof that the live aggregation server is byte-identical
//! to the batch pipeline: the snapshot of a real `ldp-cli serve`
//! process after **concurrent** multi-client ingest must equal — byte
//! for byte — a serial single-process `ldp-cli ingest` of the same
//! reports, for mechanisms and oracles alike. Also covers the failure
//! paths an internet-facing collector must survive: mid-stream
//! disconnects, malformed headers, and cross-pipeline streams.
//!
//! Every test shells out to the real binary for the server and the
//! reference pipeline; the concurrent clients are raw `TcpStream`
//! writers speaking the framed wire format directly, so the protocol is
//! exercised by an implementation independent of `ldp_server::client`.
//!
//! The `REPORT_BATCH` (wire v2) path gets its own fault-injection
//! layer: batched streams written to the socket in adversarial chunk
//! sizes (down to one byte, splitting length prefixes), clients killed
//! mid-batch-frame, and corrupt batch envelopes — in every case the
//! server must keep exactly the complete frames it saw and end up
//! byte-identical to serial ingest once the tail is resent.

use ldp_core::frame::{FrameReader, FrameWriter, StreamHeader};
use ldp_server::Response;
use marginal_ldp::oracles::pipeline::encode_report_batch;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Build (once) and locate the release `ldp-cli` binary.
fn cli_bin() -> PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "--release", "-p", "ldp_cli"])
            .current_dir(&root)
            .status()
            .expect("failed to spawn cargo build");
        assert!(status.success(), "cargo build --release -p ldp_cli failed");
        let target = match std::env::var_os("CARGO_TARGET_DIR") {
            Some(dir) => {
                let dir = PathBuf::from(dir);
                if dir.is_absolute() {
                    dir
                } else {
                    root.join(dir)
                }
            }
            None => root.join("target"),
        };
        let bin = target.join("release").join("ldp-cli");
        assert!(bin.exists(), "missing {}", bin.display());
        bin
    })
    .clone()
}

/// Run the binary to completion, asserting success; returns stdout.
fn run_cli(args: &[&str], stdin: Option<&[u8]>) -> Vec<u8> {
    let mut cmd = Command::new(cli_bin());
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("failed to spawn ldp-cli");
    if let Some(bytes) = stdin {
        child
            .stdin
            .take()
            .unwrap()
            .write_all(bytes)
            .expect("failed to feed stdin");
    } else {
        drop(child.stdin.take());
    }
    let output = child.wait_with_output().expect("failed to wait on ldp-cli");
    assert!(
        output.status.success(),
        "ldp-cli {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

/// A running `ldp-cli serve` process on an OS-picked port.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawn the server and parse the bound address off its first
    /// stderr line (`serving on 127.0.0.1:PORT (W shards)`).
    fn start(extra_args: &[&str]) -> ServerProc {
        let mut cmd = Command::new(cli_bin());
        cmd.args(["serve", "--listen", "127.0.0.1:0", "--shards", "4"])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("failed to spawn ldp-cli serve");
        let stderr = child.stderr.take().unwrap();
        let mut lines = BufReader::new(stderr);
        let mut first = String::new();
        lines
            .read_line(&mut first)
            .expect("failed to read the server's first stderr line");
        let addr = first
            .trim()
            .strip_prefix("serving on ")
            .unwrap_or_else(|| panic!("unexpected first stderr line: {first:?}"))
            .split_whitespace()
            .next()
            .expect("address on the first stderr line")
            .to_string();
        // Keep draining stderr so the server never blocks on the pipe.
        std::thread::spawn(move || for _ in lines.lines() {});
        ServerProc { child, addr }
    }

    /// Ask for a graceful shutdown and wait for a clean exit.
    fn shutdown(mut self) {
        run_cli(&["shutdown", "--connect", &self.addr], None);
        let status = self.child.wait().expect("failed to wait on the server");
        assert!(status.success(), "server exited with {status}");
    }
}

/// Open a client socket with a read timeout (tests must not hang).
fn client_socket(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to the server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Read one response frame from a socket.
fn read_response(stream: &TcpStream) -> Response {
    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    let frame = reader
        .next_frame()
        .expect("read a response frame")
        .expect("server closed without responding");
    Response::from_bytes(&frame).expect("decode the response frame")
}

/// The deterministic test population: n records over d attributes.
fn population(d: u32, n: usize) -> Vec<u64> {
    let full = (1u64 << d) - 1;
    (0..n as u64)
        .map(|i| (i.wrapping_mul(7) + 3) & full)
        .collect()
}

/// Encode a framed report stream with the real binary and split it into
/// the header frame plus the individual report frames.
fn encoded_stream(dir: &Path, protocol: &str, extra: &[&str], n: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let rows = population(4, n);
    let csv: String = rows.iter().map(|r| format!("{r}\n")).collect();
    let mut args = vec![
        "encode",
        "--protocol",
        protocol,
        "--d",
        "4",
        "--k",
        "2",
        "--eps",
        "1.1",
        "--seed",
        "42",
    ];
    args.extend(extra);
    let stream = run_cli(&args, Some(csv.as_bytes()));
    std::fs::write(dir.join("stream.bin"), &stream).unwrap();
    let mut reader = FrameReader::new(stream.as_slice());
    let header = reader.next_frame().unwrap().expect("header frame");
    StreamHeader::from_bytes(&header).expect("header frame must parse");
    let mut frames = Vec::new();
    while let Some(frame) = reader.next_frame().unwrap() {
        frames.push(frame);
    }
    (header, frames)
}

/// Write `frames` to a socket as one framed stream, half-close, and
/// return the server's acknowledgement.
///
/// A server that rejects the stream replies — and closes — without
/// consuming the remaining frames, so a write can race the rejection
/// and fail with a broken pipe. The response frame, not the write, is
/// what the tests assert on: on a write error, stop writing and read
/// whatever the server sent.
fn push_stream(addr: &str, header: &[u8], frames: &[Vec<u8>]) -> Response {
    let stream = client_socket(addr);
    let mut writer = FrameWriter::new(stream.try_clone().unwrap());
    let wrote = (|| {
        writer.write_frame(header)?;
        for frame in frames {
            writer.write_frame(frame)?;
        }
        writer.flush()
    })();
    if wrote.is_ok() {
        stream.shutdown(Shutdown::Write).unwrap();
    }
    read_response(&stream)
}

/// Write raw stream bytes to a socket in adversarial chunk sizes
/// (cycling `sizes`), flushing after every chunk, so the server's
/// buffered `FrameReader` sees frame boundaries split at arbitrary
/// byte offsets — inside length prefixes, mid-payload, everywhere.
fn write_chunked(stream: &mut TcpStream, bytes: &[u8], sizes: &[usize]) {
    let mut start = 0usize;
    let mut i = 0usize;
    while start < bytes.len() {
        let take = sizes[i % sizes.len()].max(1).min(bytes.len() - start);
        stream.write_all(&bytes[start..start + take]).unwrap();
        stream.flush().unwrap();
        start += take;
        i += 1;
    }
}

/// A per-test scratch directory.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp_serve_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tentpole proof: four *simultaneous* client connections stream
/// disjoint quarters of a report stream into the live server, and the
/// live snapshot — and the final on-shutdown snapshot — are
/// byte-identical to a serial single-process `ingest` of the unsplit
/// stream. Covered for a mechanism whose accumulator is a count map
/// (InpEM), a dense-table mechanism (MargPS), and an oracle (HCMS).
#[test]
fn concurrent_ingest_is_byte_identical_to_serial_ingest() {
    for (protocol, extra) in [
        ("MargPS", &[][..]),
        ("InpEM", &[][..]),
        (
            "HCMS",
            &["--hashes", "3", "--width", "16", "--family-seed", "9"][..],
        ),
    ] {
        let dir = scratch(&format!("determinism_{protocol}"));
        let (header, frames) = encoded_stream(&dir, protocol, extra, 2_000);
        let final_path = dir.join("final.bin");
        let server = ServerProc::start(&["--output", final_path.to_str().unwrap()]);

        // Four clients push disjoint quarters concurrently; each waits
        // for the server's "absorbed" acknowledgement.
        let quarter = frames.len().div_ceil(4);
        std::thread::scope(|scope| {
            for slice in frames.chunks(quarter) {
                let (addr, header) = (&server.addr, &header);
                scope.spawn(move || {
                    match push_stream(addr, header, slice) {
                        Response::Ingested(n) => assert_eq!(n as usize, slice.len()),
                        other => panic!("{protocol}: unexpected ack {other:?}"),
                    };
                });
            }
        });

        // Live snapshot from the serving process…
        let live_path = dir.join("live.bin");
        run_cli(
            &[
                "snapshot",
                "--connect",
                &server.addr,
                "--output",
                live_path.to_str().unwrap(),
            ],
            None,
        );
        // …vs a serial single-process ingest of the unsplit stream.
        let serial_path = dir.join("serial.bin");
        run_cli(
            &[
                "ingest",
                "--input",
                dir.join("stream.bin").to_str().unwrap(),
                "--output",
                serial_path.to_str().unwrap(),
            ],
            None,
        );
        let live = std::fs::read(&live_path).unwrap();
        let serial = std::fs::read(&serial_path).unwrap();
        assert_eq!(
            live, serial,
            "{protocol}: live snapshot differs from serial ingest"
        );

        // Remote queries print exactly what a local query prints —
        // both the full enumeration (served via one snapshot fetch)…
        let remote = run_cli(&["query", "--connect", &server.addr], None);
        let local = run_cli(&["query", "--input", serial_path.to_str().unwrap()], None);
        assert_eq!(
            remote, local,
            "{protocol}: query --connect differs from local query"
        );
        // …and a single named target (served via the server-side query
        // endpoint, REQ_QUERY).
        let serial_str = serial_path.to_str().unwrap();
        let target: &[&str] = if protocol == "HCMS" {
            &["--value", "3"]
        } else {
            &["--marginal", "0,3", "--normalize"]
        };
        let mut remote_args = vec!["query", "--connect", &server.addr];
        remote_args.extend(target);
        let mut local_args = vec!["query", "--input", serial_str];
        local_args.extend(target);
        assert_eq!(
            run_cli(&remote_args, None),
            run_cli(&local_args, None),
            "{protocol}: single-target remote query differs from local"
        );

        // Stats reflect the absorbed stream.
        let stats =
            String::from_utf8(run_cli(&["stats", "--connect", &server.addr], None)).unwrap();
        assert!(
            stats.contains("reports: 2000 absorbed"),
            "{protocol}: unexpected stats:\n{stats}"
        );
        assert!(
            stats.contains(protocol),
            "{protocol}: stats name the pipeline:\n{stats}"
        );

        // Graceful shutdown writes the same snapshot once more.
        server.shutdown();
        let final_snapshot = std::fs::read(&final_path).unwrap();
        assert_eq!(
            final_snapshot, serial,
            "{protocol}: final on-shutdown snapshot differs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `load`'s user numbering is contiguous across its client threads, so
/// a loaded server's snapshot equals a serial `encode --generate |
/// ingest` of the same population and seed.
#[test]
fn load_traffic_matches_serial_encode_ingest() {
    let dir = scratch("load");
    let server = ServerProc::start(&[]);
    run_cli(
        &[
            "load",
            "--connect",
            &server.addr,
            "--protocol",
            "MargPS",
            "--d",
            "8",
            "--k",
            "2",
            "--eps",
            "1.1",
            "--seed",
            "7",
            "--clients",
            "4",
            "--reports",
            "400",
        ],
        None,
    );
    let live_path = dir.join("live.bin");
    run_cli(
        &[
            "snapshot",
            "--connect",
            &server.addr,
            "--output",
            live_path.to_str().unwrap(),
        ],
        None,
    );
    server.shutdown();

    let stream = run_cli(
        &[
            "encode",
            "--protocol",
            "MargPS",
            "--d",
            "8",
            "--k",
            "2",
            "--eps",
            "1.1",
            "--seed",
            "7",
            "--generate",
            "taxi",
            "--n",
            "1600",
        ],
        None,
    );
    let serial = run_cli(&["ingest"], Some(&stream));
    assert_eq!(
        std::fs::read(&live_path).unwrap(),
        serial,
        "loaded snapshot differs from serial encode | ingest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed and mismatched first frames are rejected with a named
/// error on the wire — and the server keeps serving afterwards.
#[test]
fn malformed_and_mismatched_headers_are_rejected() {
    let dir = scratch("malformed");
    let (header, frames) = encoded_stream(&dir, "MargPS", &[], 40);
    let server = ServerProc::start(&[]);

    // Garbage first frame: neither a header nor a request.
    let stream = client_socket(&server.addr);
    let mut writer = FrameWriter::new(stream.try_clone().unwrap());
    writer.write_frame(&[0x99, 0x01, 0x02]).unwrap();
    writer.flush().unwrap();
    match read_response(&stream) {
        Response::Error(message) => assert!(
            message.contains("expected a stream header or request frame"),
            "unexpected error: {message}"
        ),
        other => panic!("garbage frame got {other:?}"),
    }

    // A frame that claims to be a header but does not parse.
    let stream = client_socket(&server.addr);
    let mut writer = FrameWriter::new(stream.try_clone().unwrap());
    writer.write_frame(&[0x40, 0x01, 0xFF]).unwrap();
    writer.flush().unwrap();
    match read_response(&stream) {
        Response::Error(message) => {
            assert!(message.contains("bad header frame"), "{message}");
        }
        other => panic!("truncated header got {other:?}"),
    }

    // Establish MargPS, then offer a MargHT stream: refused.
    match push_stream(&server.addr, &header, &frames) {
        Response::Ingested(40) => {}
        other => panic!("establishing stream got {other:?}"),
    }
    let (other_header, other_frames) = encoded_stream(&dir, "MargHT", &[], 4);
    match push_stream(&server.addr, &other_header, &other_frames) {
        Response::Error(message) => assert!(
            message.contains("does not match the established"),
            "{message}"
        ),
        other => panic!("mismatched header got {other:?}"),
    }

    // Through all of that, the server kept serving.
    let stats = String::from_utf8(run_cli(&["stats", "--connect", &server.addr], None)).unwrap();
    assert!(stats.contains("reports: 40 absorbed"), "{stats}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that dies mid-frame loses only its partial frame: every
/// complete report stays absorbed, the server stays up, and resending
/// the unacknowledged tail converges to the exact serial-ingest bytes.
#[test]
fn mid_stream_disconnect_keeps_complete_reports_only() {
    let dir = scratch("disconnect");
    let (header, frames) = encoded_stream(&dir, "MargPS", &[], 200);
    let server = ServerProc::start(&[]);

    // Send the header, 3 complete reports, and half of a fourth frame —
    // then vanish without the clean half-close.
    {
        let stream = client_socket(&server.addr);
        let mut writer = FrameWriter::new(stream.try_clone().unwrap());
        writer.write_frame(&header).unwrap();
        for frame in &frames[..3] {
            writer.write_frame(frame).unwrap();
        }
        writer.flush().unwrap();
        let partial = &frames[3][..frames[3].len() / 2];
        let mut raw = writer.into_inner();
        raw.write_all(&(frames[3].len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(partial).unwrap();
        raw.flush().unwrap();
        // Dropping both handles closes the socket mid-frame.
    }

    // The 3 complete reports land; the partial frame is dropped.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats =
            String::from_utf8(run_cli(&["stats", "--connect", &server.addr], None)).unwrap();
        if stats.contains("reports: 3 absorbed") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never settled at 3 reports:\n{stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // A well-behaved client resends everything the server never
    // acknowledged (reports 3..): the union is each report exactly
    // once, so the snapshot equals a serial ingest of the full stream.
    match push_stream(&server.addr, &header, &frames[3..]) {
        Response::Ingested(n) => assert_eq!(n as usize, frames.len() - 3),
        other => panic!("resend got {other:?}"),
    }
    let live_path = dir.join("live.bin");
    run_cli(
        &[
            "snapshot",
            "--connect",
            &server.addr,
            "--output",
            live_path.to_str().unwrap(),
        ],
        None,
    );
    let serial = run_cli(
        &["ingest"],
        Some(&std::fs::read(dir.join("stream.bin")).unwrap()),
    );
    assert_eq!(
        std::fs::read(&live_path).unwrap(),
        serial,
        "post-disconnect snapshot differs from serial ingest"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A batched (wire v2) stream pushed through adversarially chunked
/// socket writes — one-byte writes, chunk splits inside length
/// prefixes and mid-payload — is reassembled without tearing a single
/// frame: the ack covers every report, and both the live snapshot and
/// a serial `ingest` of the batched stream file are byte-identical to
/// ingesting the equivalent unbatched stream.
#[test]
fn batched_stream_survives_adversarial_chunked_writes() {
    let batched_dir = scratch("chunked_batched");
    let single_dir = scratch("chunked_single");
    let (_, _) = encoded_stream(&batched_dir, "MargPS", &["--batch", "7"], 200);
    let (_, _) = encoded_stream(&single_dir, "MargPS", &[], 200);
    let batched_bytes = std::fs::read(batched_dir.join("stream.bin")).unwrap();
    let server = ServerProc::start(&[]);

    // The whole framed stream, dribbled onto the socket in chunks that
    // ignore every frame boundary (the leading 1s split the very first
    // length prefix).
    let mut stream = client_socket(&server.addr);
    write_chunked(
        &mut stream,
        &batched_bytes,
        &[1, 1, 2, 3, 5, 7, 11, 1, 64, 1024],
    );
    stream.shutdown(Shutdown::Write).unwrap();
    match read_response(&stream) {
        Response::Ingested(200) => {}
        other => panic!("chunked batched stream got {other:?}"),
    }

    let live_path = batched_dir.join("live.bin");
    run_cli(
        &[
            "snapshot",
            "--connect",
            &server.addr,
            "--output",
            live_path.to_str().unwrap(),
        ],
        None,
    );
    server.shutdown();

    // Serial ingest of the batched file and of the unbatched stream of
    // the same population agree with the served state: batch framing is
    // a pure re-chunking.
    let serial_batched = run_cli(&["ingest"], Some(&batched_bytes));
    let serial_single = run_cli(
        &["ingest"],
        Some(&std::fs::read(single_dir.join("stream.bin")).unwrap()),
    );
    let live = std::fs::read(&live_path).unwrap();
    assert_eq!(
        live, serial_batched,
        "served batched snapshot differs from serial ingest of the batched stream"
    );
    assert_eq!(
        serial_batched, serial_single,
        "batched stream ingests differently from the unbatched stream"
    );
    let _ = std::fs::remove_dir_all(&batched_dir);
    let _ = std::fs::remove_dir_all(&single_dir);
}

/// A client killed in the middle of a `REPORT_BATCH` frame loses only
/// that torn frame: every complete batch stays absorbed, and resending
/// the unacknowledged batches converges to the serial-ingest bytes.
#[test]
fn mid_batch_disconnect_keeps_complete_batches_only() {
    let dir = scratch("batch_disconnect");
    let (header, frames) = encoded_stream(&dir, "MargPS", &["--batch", "5"], 100);
    assert_eq!(frames.len(), 20, "expected 20 batch frames of 5 reports");
    let server = ServerProc::start(&[]);

    // Header, two complete batch frames (10 reports), then a torn
    // third: full length prefix, half the envelope payload, gone.
    {
        let stream = client_socket(&server.addr);
        let mut writer = FrameWriter::new(stream.try_clone().unwrap());
        writer.write_frame(&header).unwrap();
        for frame in &frames[..2] {
            writer.write_frame(frame).unwrap();
        }
        writer.flush().unwrap();
        let partial = &frames[2][..frames[2].len() / 2];
        let mut raw = writer.into_inner();
        raw.write_all(&(frames[2].len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(partial).unwrap();
        raw.flush().unwrap();
    }

    // Exactly the two complete batches land.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats =
            String::from_utf8(run_cli(&["stats", "--connect", &server.addr], None)).unwrap();
        if stats.contains("reports: 10 absorbed") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never settled at 10 reports:\n{stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Resend everything unacknowledged (batches 2..) and compare with
    // serial ingest of the full batched stream.
    match push_stream(&server.addr, &header, &frames[2..]) {
        Response::Ingested(n) => assert_eq!(n, 90),
        other => panic!("batch resend got {other:?}"),
    }
    let live_path = dir.join("live.bin");
    run_cli(
        &[
            "snapshot",
            "--connect",
            &server.addr,
            "--output",
            live_path.to_str().unwrap(),
        ],
        None,
    );
    let serial = run_cli(
        &["ingest"],
        Some(&std::fs::read(dir.join("stream.bin")).unwrap()),
    );
    assert_eq!(
        std::fs::read(&live_path).unwrap(),
        serial,
        "post-mid-batch-disconnect snapshot differs from serial ingest"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The batch decode-error matrix over the wire: a count prefix that
/// cannot fit the payload, a future envelope version, and a batch of
/// reports from the wrong protocol are each rejected with a named
/// error on the ack — and the server keeps serving, with every
/// complete good batch it saw still absorbed.
#[test]
fn corrupt_batch_frames_are_rejected_on_the_ack() {
    let dir = scratch("batch_corrupt");
    let (header, frames) = encoded_stream(&dir, "MargPS", &["--batch", "4"], 40);
    let server = ServerProc::start(&[]);

    // Count overshoot: claims 1000 reports, payload holds 4.
    let mut forged = frames[0].clone();
    forged[2..6].copy_from_slice(&1000u32.to_le_bytes());
    match push_stream(&server.addr, &header, std::slice::from_ref(&forged)) {
        Response::Error(message) => {
            assert!(message.contains("bad report batch frame"), "{message}");
        }
        other => panic!("count-overshoot batch got {other:?}"),
    }

    // Future envelope version: rejected cleanly, not mis-decoded.
    let mut forged = frames[0].clone();
    forged[1] = 0x7F;
    match push_stream(&server.addr, &header, std::slice::from_ref(&forged)) {
        Response::Error(message) => {
            assert!(message.contains("unsupported wire version"), "{message}");
        }
        other => panic!("future-version batch got {other:?}"),
    }

    // A batch whose reports belong to another protocol.
    let (_, alien) = encoded_stream(&dir, "MargHT", &["--batch", "4"], 4);
    match push_stream(&server.addr, &header, &alien) {
        Response::Error(message) => assert!(message.contains("mixes protocols"), "{message}"),
        other => panic!("cross-protocol batch got {other:?}"),
    }

    // An empty batch frame is legal and absorbs nothing.
    let empty: [&[u8]; 0] = [];
    match push_stream(&server.addr, &header, &[encode_report_batch(&empty)]) {
        Response::Ingested(0) => {}
        other => panic!("empty batch got {other:?}"),
    }

    // Through all of that the server kept serving; the good stream
    // still lands in full.
    match push_stream(&server.addr, &header, &frames) {
        Response::Ingested(40) => {}
        other => panic!("good batched stream got {other:?}"),
    }
    let stats = String::from_utf8(run_cli(&["stats", "--connect", &server.addr], None)).unwrap();
    assert!(stats.contains("reports: 40 absorbed"), "{stats}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pull an integer field out of a flat JSON object without a JSON
/// dependency: finds `"key":` and parses the digits that follow.
fn json_u64(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("missing {key:?} in:\n{text}"));
    text[at + needle.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("bad {key:?} value ({e}) in:\n{text}"))
}

/// The open-loop load generator against a real server: the run exits
/// cleanly, the latency histogram's total count equals the number of
/// batches sent, and the server acknowledges every report.
#[test]
fn open_loop_load_reports_a_complete_latency_histogram() {
    let dir = scratch("open_loop");
    let hist_path = dir.join("hist.json");
    let server = ServerProc::start(&[]);
    run_cli(
        &[
            "load",
            "--connect",
            &server.addr,
            "--protocol",
            "MargPS",
            "--d",
            "8",
            "--k",
            "2",
            "--eps",
            "1.1",
            "--seed",
            "7",
            "--clients",
            "2",
            "--rate",
            "20000",
            "--duration",
            "1.0",
            "--batch",
            "128",
            "--hist-output",
            hist_path.to_str().unwrap(),
        ],
        None,
    );
    let json = std::fs::read_to_string(&hist_path).expect("histogram JSON written");
    let sent_batches = json_u64(&json, "sent_batches");
    let sent_reports = json_u64(&json, "sent_reports");
    let acked = json_u64(&json, "acked");
    // rate/batch = 156.25 events/s over 1 s: the schedule admits
    // ⌈156.25⌉ = 157 events regardless of machine speed.
    assert!(sent_batches > 0, "open-loop run sent nothing:\n{json}");
    assert_eq!(
        sent_reports,
        sent_batches * 128,
        "batch accounting:\n{json}"
    );
    assert_eq!(acked, sent_reports, "server missed reports:\n{json}");
    // The acceptance criterion: every sent batch has exactly one
    // latency sample (the histogram count inside "ack_latency").
    let ack_latency = json
        .split("\"ack_latency\":")
        .nth(1)
        .expect("ack_latency object");
    assert_eq!(
        json_u64(ack_latency, "count"),
        sent_batches,
        "histogram count != sent batches:\n{json}"
    );

    // The server really absorbed the open-loop traffic.
    let stats = String::from_utf8(run_cli(&["stats", "--connect", &server.addr], None)).unwrap();
    assert!(
        stats.contains(&format!("reports: {sent_reports} absorbed")),
        "stats disagree with the load run:\n{stats}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One connection may mix wire-v1 single-report frames and wire-v2
/// batch frames freely: the ack counts every report once and the
/// result is byte-identical to serial ingest.
#[test]
fn mixed_single_and_batch_frames_coexist_on_one_stream() {
    let batched_dir = scratch("mixed_batched");
    let single_dir = scratch("mixed_single");
    let (header, batch_frames) = encoded_stream(&batched_dir, "MargPS", &["--batch", "6"], 60);
    let (_, single_frames) = encoded_stream(&single_dir, "MargPS", &[], 60);
    assert_eq!(batch_frames.len(), 10);
    let server = ServerProc::start(&[]);

    // First half as batch frames (reports 0..30), second half as
    // single-report frames (reports 30..60).
    let mut mixed: Vec<Vec<u8>> = batch_frames[..5].to_vec();
    mixed.extend_from_slice(&single_frames[30..]);
    match push_stream(&server.addr, &header, &mixed) {
        Response::Ingested(60) => {}
        other => panic!("mixed stream got {other:?}"),
    }

    let live_path = batched_dir.join("live.bin");
    run_cli(
        &[
            "snapshot",
            "--connect",
            &server.addr,
            "--output",
            live_path.to_str().unwrap(),
        ],
        None,
    );
    server.shutdown();
    let serial = run_cli(
        &["ingest"],
        Some(&std::fs::read(single_dir.join("stream.bin")).unwrap()),
    );
    assert_eq!(
        std::fs::read(&live_path).unwrap(),
        serial,
        "mixed-frame snapshot differs from serial ingest"
    );
    let _ = std::fs::remove_dir_all(&batched_dir);
    let _ = std::fs::remove_dir_all(&single_dir);
}
