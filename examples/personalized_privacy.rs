//! Extension: per-user privacy budgets (§3.1's "each user may operate
//! with a different privacy parameter"). A population where most users
//! demand strict privacy but a minority opts into a looser budget; the
//! inverse-variance-weighted aggregator exploits the loose reports
//! instead of throttling everyone to the strictest ε.
//!
//! Run with `cargo run --release --example personalized_privacy`.

use marginal_ldp::core::{InpHt, PersonalizedInpHt};
use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let data = TaxiGenerator::default().generate(200_000, &mut rng);
    let (strict_eps, loose_eps, loose_frac) = (0.3, 2.0, 0.25);
    println!(
        "population: N = {}, {}% at eps = {loose_eps}, rest at eps = {strict_eps}",
        data.n(),
        (loose_frac * 100.0) as u32
    );

    // Personalized collection: each user reports at their own budget.
    let pers = PersonalizedInpHt::new(data.d(), 2);
    let mut agg = pers.aggregator();
    for &row in data.rows() {
        let eps = if rng.gen_bool(loose_frac) {
            loose_eps
        } else {
            strict_eps
        };
        agg.absorb(pers.encode(row, eps, &mut rng));
    }
    let personalized = agg.finish();

    // Baseline: everyone throttled to the strictest budget.
    let baseline_mech = InpHt::new(data.d(), 2, strict_eps);
    let mut agg = baseline_mech.aggregator();
    for &row in data.rows() {
        agg.absorb(baseline_mech.encode(row, &mut rng));
    }
    let baseline = agg.finish();

    let tvd_pers = mean_kway_tvd(&personalized, &data, 2);
    let tvd_base = mean_kway_tvd(&baseline, &data, 2);
    println!("\nmean 2-way TVD:");
    println!("  everyone at eps = {strict_eps}:     {tvd_base:.4}");
    println!("  personalized budgets:    {tvd_pers:.4}");
    println!(
        "\nweighted aggregation improves accuracy by {:.1}x without changing any\n\
         individual user's privacy guarantee",
        tvd_base / tvd_pers
    );
}
