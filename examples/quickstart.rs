//! Quickstart: privately reconstruct a 2-way marginal with the paper's
//! headline mechanism (`InpHT`), and compare all six mechanisms on the
//! same population.
//!
//! Run with `cargo run --release --example quickstart`.

use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. A population: 200k taxi trips with 8 private binary attributes.
    let mut rng = StdRng::seed_from_u64(2018);
    let data = TaxiGenerator::default().generate(200_000, &mut rng);
    println!("population: N = {}, d = {}", data.n(), data.d());

    // 2. Collection under ε = 1.1 LDP. Each user sends ONE tiny report
    //    (d + 1 = 9 bits for InpHT); the aggregator can then answer any
    //    marginal of order ≤ k = 2.
    let (k, eps) = (2, 1.1);
    let mech = MechanismKind::InpHt.build(data.d(), k, eps);
    println!(
        "mechanism: {} ({} bits/user, eps = {eps})",
        mech.kind().name(),
        mech.communication_bits()
    );
    let estimate = mech.run(data.rows(), 42);

    // 3. Query: the (M_pick, M_drop) marginal of Figure 2.
    let beta = Mask::from_attrs(&[5, 6]);
    let private = clamp_normalize(&estimate.marginal(beta));
    let exact = data.true_marginal(beta);
    println!("\n(M_pick, M_drop) marginal   exact    private");
    for (cell, label) in ["NN", "YN", "NY", "YY"].iter().enumerate() {
        println!(
            "  {label}                      {:.4}   {:.4}",
            exact[cell], private[cell]
        );
    }
    println!(
        "total variation distance: {:.4}",
        total_variation_distance(&exact, &estimate.marginal(beta))
    );

    // 4. All six mechanisms on the same data, mean TVD over all 2-way
    //    marginals (one row of Figure 4).
    println!("\nmean 2-way TVD by mechanism:");
    for kind in MechanismKind::SIX {
        let est = kind.build(data.d(), k, eps).run(data.rows(), 43);
        println!("  {:7} {:.4}", kind.name(), mean_kway_tvd(&est, &data, k));
    }
    println!("\n(expect InpHT lowest or near-lowest — the paper's headline result)");
}
