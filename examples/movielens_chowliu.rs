//! Bayesian modeling from private marginals (§6.2 / Figure 8): fit a
//! Chow–Liu dependency tree over movie-genre preferences using only
//! LDP-collected 2-way marginals, and compare its quality against the
//! non-private tree.
//!
//! Run with `cargo run --release --example movielens_chowliu`.

use marginal_ldp::analysis::chowliu::reweigh;
use marginal_ldp::analysis::treemodel::TreeModel;
use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let d = 10u32;
    let mut rng = StdRng::seed_from_u64(99);
    let data = MovieLensGenerator::new(d).generate(200_000, &mut rng);

    // Exact pairwise mutual information.
    let true_mi =
        |a: u32, b: u32| mutual_information_2x2(&data.true_marginal(Mask::from_attrs(&[a, b])));

    // Non-private optimum.
    let best = maximum_spanning_tree(d, true_mi);
    println!(
        "non-private Chow-Liu tree (total MI {:.4} nats):",
        total_weight(&best)
    );
    for e in &best {
        println!("  genre{} -- genre{}  (MI {:.4})", e.a, e.b, e.weight);
    }

    // Private tree per ε: learn the topology from LDP marginals, score
    // the chosen edges by TRUE mutual information (Figure 8's metric).
    println!(
        "\n{:>5} {:>18} {:>18}",
        "eps", "InpHT total MI", "MargPS total MI"
    );
    for eps in [0.4, 0.8, 1.2] {
        let mut scores = Vec::new();
        for kind in [MechanismKind::InpHt, MechanismKind::MargPs] {
            let est = kind.build(d, 2, eps).run(data.rows(), 5);
            let private_mi =
                |a: u32, b: u32| mutual_information_2x2(&est.marginal(Mask::from_attrs(&[a, b])));
            let tree = maximum_spanning_tree(d, private_mi);
            scores.push(total_weight(&reweigh(&tree, true_mi)));
        }
        println!("{eps:>5.1} {:>18.4} {:>18.4}", scores[0], scores[1]);
    }
    println!(
        "\nInpHT trees should capture nearly all of the non-private total MI even at \
         small eps; MargPS catches up as eps grows (paper Figure 8)."
    );

    // Final §6.2 step: turn the private tree into a generative model by
    // extracting CPTs from the private 2-way marginals, and compare
    // average log-likelihood against the non-private tree model.
    let est = MechanismKind::InpHt.build(d, 2, 1.1).run(data.rows(), 6);
    let private_mi =
        |a: u32, b: u32| mutual_information_2x2(&est.marginal(Mask::from_attrs(&[a, b])));
    let private_tree = maximum_spanning_tree(d, private_mi);
    let private_model = TreeModel::fit(d, &private_tree, |a, b| {
        est.marginal(Mask::from_attrs(&[a, b]))
    });
    let exact_model = TreeModel::fit(d, &best, |a, b| {
        data.true_marginal(Mask::from_attrs(&[a, b]))
    });
    println!(
        "\ngenerative tree model, mean log-likelihood (nats/record):\n  \
         non-private CPTs: {:.4}\n  private CPTs:     {:.4}",
        exact_model.mean_log_likelihood(data.rows()),
        private_model.mean_log_likelihood(data.rows()),
    );
}
