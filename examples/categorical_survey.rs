//! Categorical attributes via binary encoding (§6.3 / Corollary 6.1): a
//! survey with non-binary questions, collected with the binary `InpHT`
//! mechanism over the encoded domain, then decoded back to categorical
//! marginal tables.
//!
//! Run with `cargo run --release --example categorical_survey`.

use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // A survey: age-band (4 values), region (5 values), device (3 values).
    let schema = CategoricalSchema::new(&[4, 5, 3]);
    println!(
        "schema: arities [4, 5, 3] -> d2 = {} encoding bits (Corollary 6.1)",
        schema.d2()
    );

    // Ground-truth per-attribute distributions (independent for clarity).
    let dists = vec![
        vec![0.30, 0.35, 0.25, 0.10],       // age bands
        vec![0.40, 0.25, 0.15, 0.15, 0.05], // regions
        vec![0.55, 0.35, 0.10],             // devices
    ];
    let mut rng = StdRng::seed_from_u64(64);
    let data = schema.generate_independent(&dists, 400_000, &mut rng);

    // Collect with binary InpHT over the encoded domain. A 2-way
    // categorical marginal over (age, device) covers
    // k2 = 2 + 2 = 4 encoding bits.
    let attrs = [0u32, 2u32];
    let k2 = schema.k2(&attrs);
    println!("target: (age, device) marginal -> k2 = {k2} binary attributes");
    let est = MechanismKind::InpHt
        .build(schema.d2(), k2, 1.4)
        .run(data.rows(), 11);

    // Reconstruct the binary marginal, then fold it back to categories.
    let beta = schema.binary_mask(&attrs);
    let private_cat = schema.categorical_marginal(&attrs, &est.marginal(beta));
    let exact_cat = schema.categorical_marginal(&attrs, &data.true_marginal(beta));

    println!("\n(age, device) joint           exact    private");
    for dev in 0..3 {
        for age in 0..4 {
            let i = age + 4 * dev;
            println!(
                "  age={age} device={dev}            {:.4}   {:.4}",
                exact_cat[i], private_cat[i]
            );
        }
    }
    let tvd: f64 = exact_cat
        .iter()
        .zip(&private_cat)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    println!("\ntotal variation distance: {tvd:.4}");
    assert!(tvd < 0.1, "categorical reconstruction should be accurate");
}
