//! Association testing over privately collected marginals (§6.1 /
//! Figure 7): a taxi service provider checks which attribute pairs are
//! statistically dependent — without ever seeing a single raw trip.
//!
//! Run with `cargo run --release --example taxi_correlations`.

use marginal_ldp::analysis::chi2::chi2_noise_aware_2x2;
use marginal_ldp::analysis::special::chi2_critical;
use marginal_ldp::data::taxi::{attr, ATTRIBUTE_NAMES};
use marginal_ldp::mechanisms::theory::inpht_cell_variance;
use marginal_ldp::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = TaxiGenerator::default().generate(262_144, &mut rng);
    let n = data.n() as f64;

    // One LDP collection answers every pair.
    let estimate = MechanismKind::InpHt
        .build(data.d(), 2, 1.1)
        .run(data.rows(), 9);

    let critical = chi2_critical(0.05, 1);
    // Privacy noise inflates the statistic (paper footnote 3); the
    // noise-aware test adds the expected inflation to the critical value.
    let cell_var = inpht_cell_variance(8, 2, 1.1, data.n());
    println!("chi-square critical value (95% confidence, df = 1): {critical:.3}");
    println!("InpHT per-cell noise variance at this (d,k,eps,N): {cell_var:.2e}\n");
    println!(
        "{:28} {:>12} {:>13}  verdict (noise-aware)",
        "pair", "chi2(exact)", "chi2(private)"
    );

    let pairs = [
        (attr::NIGHT_PICK, attr::NIGHT_DROP),
        (attr::TOLL, attr::FAR),
        (attr::CC, attr::TIP),
        (attr::M_PICK, attr::M_DROP),
        (attr::M_DROP, attr::CC),
        (attr::FAR, attr::NIGHT_PICK),
        (attr::TOLL, attr::NIGHT_PICK),
    ];
    for (a, b) in pairs {
        let beta = Mask::from_attrs(&[a, b]);
        let exact = chi2_independence_2x2(&data.true_marginal(beta), n);
        let private = chi2_noise_aware_2x2(&estimate.marginal(beta), n, cell_var);
        let verdict = if private.rejects_independence(0.05) {
            "dependent"
        } else {
            "independent"
        };
        println!(
            "({:>10}, {:<10})  {:>12.1} {:>13.1}  {verdict}",
            ATTRIBUTE_NAMES[a as usize],
            ATTRIBUTE_NAMES[b as usize],
            exact.statistic,
            private.statistic
        );
    }
    println!(
        "\nWith the noise-aware correction the private verdicts match the ground truth: \
         the first four pairs are dependent by construction, the last three independent."
    );
}
