//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the slice of rayon it uses as a path dependency:
//! [`join`], [`current_num_threads`], and an order-preserving
//! `into_par_iter().map(..).collect::<Vec<_>>()` over vectors and
//! `usize` ranges. Everything is real OS-thread parallelism via
//! `std::thread::scope`; there is no work-stealing pool, so per-call
//! spawn overhead is higher than upstream rayon but throughput for the
//! coarse-grained sharding this workspace does is equivalent.

#![warn(missing_docs)]

pub mod iter;

/// The common traits, like `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads a parallel call will use (the machine's
/// available parallelism).
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_par_iter() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
