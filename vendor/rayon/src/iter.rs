//! Order-preserving parallel map/collect over owned items.
//!
//! Supports exactly the shape the workspace uses:
//!
//! ```
//! use rayon::prelude::*;
//! let doubled: Vec<u64> = vec![1u64, 2, 3].into_par_iter().map(|x| x * 2).collect();
//! assert_eq!(doubled, [2, 4, 6]);
//! ```
//!
//! Items are split into one contiguous chunk per worker thread and the
//! output is reassembled in input order, so results are deterministic
//! regardless of scheduling.

use std::ops::Range;

/// Conversion into a parallel iterator, like `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator over owned items.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Consume the iterator into the vector of its items, in order.
    fn into_items(self) -> Vec<Self::Item>;

    /// Map every item through `f` in parallel (lazily; runs at `collect`).
    fn map<F, U>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync + Send,
        U: Send,
    {
        Map { base: self, f }
    }

    /// Execute and collect the results in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection from a parallel iterator (implemented for `Vec`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection by consuming `iter`.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.into_items()
    }
}

/// Parallel iterator over a `Vec`'s items.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn into_items(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// Lazy parallel map; the threads run when it is collected.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, U> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> U + Sync + Send,
    U: Send,
{
    type Item = U;

    fn into_items(self) -> Vec<U> {
        let items = self.base.into_items();
        let f = &self.f;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = crate::current_num_threads().min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }

        let chunk = n.div_ceil(workers);
        // Move each chunk of owned items into its worker; chunks come
        // back indexed so the output is reassembled in input order.
        let mut chunks: Vec<(usize, Vec<I::Item>)> = Vec::with_capacity(workers);
        let mut items = items;
        let mut index = 0usize;
        while !items.is_empty() {
            let rest = items.split_off(chunk.min(items.len()));
            chunks.push((index, items));
            items = rest;
            index += 1;
        }

        let mut parts: Vec<(usize, Vec<U>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|(i, chunk_items)| {
                    scope.spawn(move || (i, chunk_items.into_iter().map(f).collect::<Vec<U>>()))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon parallel map worker panicked"))
                .collect()
        });
        parts.sort_by_key(|(i, _)| *i);
        let mut out = Vec::with_capacity(n);
        for (_, mut part) in parts.drain(..) {
            out.append(&mut part);
        }
        out
    }
}
