//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the slice of `rand` it actually uses as a path
//! dependency: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, the
//! [`rngs::StdRng`] and [`rngs::SmallRng`] generators (both
//! xoshiro256++ here), the [`distributions::Standard`] distribution for
//! `u64`/`u32`/`f64`/`f32`/`bool`/`usize`, and bias-free
//! `gen_range` over integer and float ranges.
//!
//! Everything is deterministic given a seed; nothing reads OS entropy.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::Distribution;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`](distributions::Standard)
    /// distribution (`u64` full range, `f64` uniform in `[0, 1)`, …).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// `true` with probability `p`. Panics unless `p ∈ [0, 1]`, like
    /// upstream `rand` — a NaN or out-of-range probability here would
    /// silently break a mechanism's randomization otherwise.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Sample uniformly from `range` without modulo bias.
    #[inline]
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value from an explicit distribution.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full-entropy byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 exactly like
    /// `rand_core::SeedableRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(0..7u64);
            assert!(x < 7);
            let y = r.gen_range(3..=5usize);
            assert!((3..=5).contains(&y));
            let z = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn unsized_rng_bound_works() {
        fn sample<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = SmallRng::seed_from_u64(2);
        let _ = sample(&mut r);
    }
}
