//! The two generators the workspace uses: [`StdRng`] and [`SmallRng`].
//!
//! Both are xoshiro256++ (Blackman & Vigna 2019) here — small, fast, and
//! statistically solid for simulation. They are distinct types so code
//! keeps the upstream `rand` distinction between the "cryptographic
//! default" and the "small fast" generator, but this offline shim makes
//! no cryptographic claim for either.

use crate::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // The all-zero state is the one invalid xoshiro state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Xoshiro256 { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! generator {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                $name(Xoshiro256::from_bytes(seed))
            }
        }
    };
}

generator! {
    /// The default generator (xoshiro256++ in this offline shim).
    StdRng
}
generator! {
    /// The small/fast generator (also xoshiro256++ here).
    SmallRng
}
