//! The [`Standard`] distribution and bias-free uniform ranges.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: full range for integers,
/// uniform `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution<u8> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with the standard 53-bit construction.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with the standard 24-bit construction.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling from `Range` / `RangeInclusive`, rejection-based
    //! for integers so there is no modulo bias.

    use super::*;
    use core::ops::{Range, RangeInclusive};

    /// A range that can be sampled directly by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one value uniformly from the range. Panics if empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, span)` by rejection: accept the top
    /// `2^64 - (2^64 mod span)` values, under which `x % span` is exact.
    #[inline]
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        // (2^64) mod span, computed without 128-bit arithmetic.
        let reject_below = span.wrapping_neg() % span;
        loop {
            let x = rng.next_u64();
            if x >= reject_below {
                return x % span;
            }
        }
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_below(rng, span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range of a 64-bit type.
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // Rounding in `start + unit * span` can land exactly on
                    // `end`; reject those draws to keep the range half-open
                    // (`unit = 0` always succeeds, so this terminates).
                    loop {
                        let unit: $t = Standard.sample(rng);
                        let v = self.start + unit * (self.end - self.start);
                        if v < self.end {
                            return v;
                        }
                    }
                }
            }
        )*};
    }

    float_range!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn rejection_handles_tiny_and_large_spans() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!((0u64..1).sample_single(&mut rng), 0);
            let x = (u64::MAX - 2..u64::MAX).sample_single(&mut rng);
            assert!(x >= u64::MAX - 2 && x < u64::MAX);
            let y = (0u64..=u64::MAX).sample_single(&mut rng);
            let _ = y; // full width: any value is valid
        }
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..1000 {
            let x = (-5i64..5).sample_single(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }
}
