//! Strategies: composable recipes for generating random test inputs.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// `any::<T>()`: the full "natural" distribution of `T`.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

macro_rules! any_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

any_via_standard!(u8, u16, u32, u64, usize, i64, bool, f64, f32);

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(
    /// The value to yield.
    pub T,
);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}
