//! Deterministic case generation and failure plumbing.

pub use rand::rngs::StdRng as TestRngInner;
use rand::SeedableRng;

/// Per-test configuration (only the `cases` knob is supported).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 because this shim does not
    /// shrink, so each suite run should stay fast enough to re-run under
    /// different seeds instead.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed: the whole test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: the case is discarded.
    Reject(&'static str),
}

/// The RNG handed to strategies: one independent stream per case.
pub struct TestRng(TestRngInner);

impl TestRng {
    /// Build the deterministic RNG for `case` of the test whose
    /// module-path hash is `seed_base`.
    #[must_use]
    pub fn for_case(seed_base: u64, case: u32) -> Self {
        TestRng(TestRngInner::seed_from_u64(
            seed_base ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl rand::RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a hash of a test path, the per-test seed base.
#[must_use]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}
