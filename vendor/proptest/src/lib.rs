//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the slice of proptest it uses as a path dependency:
//! the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], [`strategy::Strategy`] with `prop_map`, `any::<T>()`,
//! numeric-range strategies, and [`collection::vec`].
//!
//! Differences from upstream: cases are generated from a fixed seed
//! derived from the test's module path (fully deterministic, no
//! `PROPTEST_CASES` env handling), and failing cases are **not shrunk**
//! — the failure report contains the case index and seed instead.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, like `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over many sampled cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed_base = $crate::test_runner::fnv1a(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut ran = 0u32;
                let mut attempts = 0u32;
                while ran < config.cases && attempts < config.cases * 16 {
                    let case = attempts;
                    attempts += 1;
                    let mut rng = $crate::test_runner::TestRng::for_case(seed_base, case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => ran += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n(test {}, case {} of {}, seed {:#x})",
                                msg,
                                stringify!($name),
                                case,
                                config.cases,
                                seed_base,
                            );
                        }
                    }
                }
                assert!(
                    ran >= config.cases,
                    "proptest: too many rejected cases in {} ({} accepted of {} attempts)",
                    stringify!($name),
                    ran,
                    attempts,
                );
            }
        )*
    };
}

/// Fail the current case (with an optional formatted message) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?})",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fail the current case unless the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} != {} (both: {:?})",
                    stringify!($left),
                    stringify!($right),
                    l,
                ),
            ));
        }
    }};
}

/// Discard the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in any::<u64>(), small in 1u32..10, f in 0.25f64..0.75) {
            let _ = x;
            prop_assert!((1..10).contains(&small));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0u64..100, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_discards(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments and configs both parse.
        #[test]
        fn configured(x in any::<u64>().prop_map(|v| v & 0xFF)) {
            prop_assert!(x <= 0xFF);
        }
    }

    #[test]
    fn fixed_len_vec() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_case(1, 0);
        let v = crate::collection::vec(0.0f64..1.0, 16).sample(&mut rng);
        assert_eq!(v.len(), 16);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
