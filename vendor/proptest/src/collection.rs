//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;

/// Anything usable as the size argument of [`vec()`]: a fixed length or a
/// half-open range of lengths.
pub trait SizeRange {
    /// Draw a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// A strategy producing `Vec`s of values from `element`, with length
/// drawn from `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
