//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the slice of criterion its three bench harnesses use
//! as a path dependency: [`Criterion`], [`BenchmarkGroup`] (with
//! `throughput` / `sample_size` / `bench_function` / `bench_with_input`),
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up
//! briefly, then timed over batches and reported as mean / best
//! per-iteration wall time (plus throughput when configured) on stdout.
//! There are no statistical comparisons, plots, or baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures; handed to benchmark functions.
pub struct Bencher {
    samples: u64,
    /// (total elapsed, iterations) per sample batch.
    results: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, called in batches, keeping its return value alive
    /// through [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size targeting ~1ms per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.results.push((start.elapsed(), per_batch));
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.results.is_empty() {
            println!("{label:40} (no samples)");
            return;
        }
        let per_iter = |(d, n): &(Duration, u64)| d.as_secs_f64() / *n as f64;
        let best = self
            .results
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let mean = self.results.iter().map(per_iter).sum::<f64>() / self.results.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(e)) => format!("  {:>12.0} elem/s", e as f64 / mean),
            Some(Throughput::Bytes(b)) => format!("  {:>12.0} B/s", b as f64 / mean),
            None => String::new(),
        };
        println!(
            "{label:40} mean {:>12}  best {:>12}{rate}",
            format_time(mean),
            format_time(best),
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed sample batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Annotate per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 20,
            results: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("── {name} ──");
        BenchmarkGroup {
            name,
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
