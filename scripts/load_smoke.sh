#!/usr/bin/env bash
# Open-loop load-generator smoke: start a real `ldp-cli serve`, drive it
# for ~2 seconds with `load --rate`, and fail unless the run exits
# cleanly AND the latency histogram is non-empty with one sample per
# sent batch (the histogram JSON is left at $2 for CI to upload).
#
# Usage: scripts/load_smoke.sh <path-to-ldp-cli> <hist-output.json>
set -euo pipefail

BIN=$1
HIST=$2

LOG=$(mktemp)
"$BIN" serve --listen 127.0.0.1:0 --shards 4 2>"$LOG" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# The bound address is the first stderr line: "serving on HOST:PORT (...)".
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^serving on \([^ ]*\).*/\1/p' "$LOG" | head -n 1)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never reported its address"; cat "$LOG"; exit 1; }

"$BIN" load \
  --connect "$ADDR" \
  --protocol MargPS --d 8 --k 2 --eps 1.1 --seed 7 \
  --clients 2 --rate 20000 --duration 2.0 --batch 128 \
  --hist-output "$HIST"

"$BIN" shutdown --connect "$ADDR"
wait "$SERVER_PID"
trap - EXIT

# The histogram must be non-empty and internally consistent: count
# inside "ack_latency" equals sent_batches, and at least one batch flew.
python3 - "$HIST" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
sent = doc["sent_batches"]
count = doc["ack_latency"]["count"]
assert sent > 0, f"open-loop smoke sent nothing: {doc}"
assert count == sent, f"histogram count {count} != sent batches {sent}"
assert doc["acked"] == doc["sent_reports"], f"server missed reports: {doc}"
print(f"load smoke ok: {sent} batches, p99 ack {doc['ack_latency']['p99_ns']} ns")
EOF
