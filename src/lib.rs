#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # marginal-ldp
//!
//! A full Rust reproduction of **"Marginal Release Under Local
//! Differential Privacy"** (Graham Cormode, Tejas Kulkarni, Divesh
//! Srivastava; SIGMOD 2018) — six mechanisms for reconstructing k-way
//! marginal tables from locally-privatized user reports, plus the
//! baselines, datasets, statistics and experiment harness of the paper's
//! evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use marginal_ldp::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A population of 100k users with 8 private binary attributes.
//! let mut rng = StdRng::seed_from_u64(1);
//! let data = TaxiGenerator::default().generate(100_000, &mut rng);
//!
//! // Collect under 1.1-LDP, supporting all marginals of order ≤ 2,
//! // with the paper's best mechanism (InpHT).
//! let mechanism = MechanismKind::InpHt.build(data.d(), 2, 1.1);
//! let estimate = mechanism.run(data.rows(), 42);
//!
//! // Reconstruct any 2-way marginal on demand.
//! let beta = Mask::from_attrs(&[5, 6]); // (M_pick, M_drop)
//! let private = estimate.marginal(beta);
//! let exact = data.true_marginal(beta);
//! let tvd = total_variation_distance(&private, &exact);
//! assert!(tvd < 0.05);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`ldp_core`] | the six mechanisms (`InpRR/InpPS/InpHT/MargRR/MargPS/MargHT`) + `InpEM`, the `Accumulator` streaming layer |
//! | [`ldp_mechanisms`] | RR / preferential-sampling / unary-encoding primitives, LDP verification, Table 2 bounds |
//! | [`ldp_transform`] | FWHT, marginal operator, Lemma 3.7 reconstruction, Efron–Stein |
//! | [`ldp_bits`] | mask algebra, subset enumeration, combinatorial ranking |
//! | [`ldp_sampling`] | binomial sampler, alias tables, hash families |
//! | [`ldp_data`] | datasets + taxi/movielens/skewed generators, categorical encoding |
//! | [`ldp_oracles`] | OLH and count-mean-sketch frequency-oracle baselines |
//! | [`ldp_analysis`] | χ² testing, mutual information, Chow–Liu trees |
//!
//! The experiment harness regenerating every table and figure lives in
//! the (unexported) `ldp_bench` crate — see the top-level `README.md`
//! for the experiment index and how to run each binary.

pub use ldp_analysis as analysis;
pub use ldp_bits as bits;
pub use ldp_core as core;
pub use ldp_data as data;
pub use ldp_mechanisms as mechanisms;
pub use ldp_oracles as oracles;
pub use ldp_sampling as sampling;
pub use ldp_transform as transform;

/// The most common imports in one place.
pub mod prelude {
    pub use ldp_analysis::chi2::chi2_independence_2x2;
    pub use ldp_analysis::chowliu::{maximum_spanning_tree, total_weight};
    pub use ldp_analysis::mi::mutual_information_2x2;
    pub use ldp_bits::Mask;
    pub use ldp_core::{
        clamp_normalize, mean_kway_tvd, Accumulator, Estimate, MarginalEstimator, Mechanism,
        MechanismAccumulator, MechanismKind, MechanismReport,
    };
    pub use ldp_data::categorical::CategoricalSchema;
    pub use ldp_data::movielens::MovieLensGenerator;
    pub use ldp_data::taxi::TaxiGenerator;
    pub use ldp_data::BinaryDataset;
    pub use ldp_transform::total_variation_distance;
}
