//! Lane-oriented Bernoulli sampling: draw up to 64 i.i.d. biased coins
//! per random word instead of one coin per word.
//!
//! The serial mechanisms spend most of their encode time in
//! `rng.gen_bool(p)` loops — one fresh 64-bit draw *per cell* for the
//! `2^d`-cell unary reports of `InpRR` (and the `2^k` / `w`-cell
//! reports of `MargRR` and `CMS`). This module replaces that with the
//! classic bit-sliced construction: compare each lane's infinite random
//! bit stream against the binary expansion of `p`, digit by digit,
//! using one random word per digit *for all 64 lanes at once*. A lane
//! is decided at the first digit where its stream differs from `p`, so
//! the expected number of words consumed for a full 64-lane word is
//! `E[max of 64 Geometric(1/2)] ≈ 7` — about 9× fewer RNG draws than
//! 64 `gen_bool` calls, and the output is a ready-made bitmask.
//!
//! `p` is quantized to a 64-bit fixed-point fraction (`P(bit = 1) =
//! fixed / 2^64` exactly), finer than the 53-bit resolution of the
//! `gen::<f64>() < p` comparison behind `gen_bool`, so the perturbation
//! distributions are statistically indistinguishable from the serial
//! loops they replace.

use rand::Rng;

/// Quantize a probability to the 64-bit fixed-point threshold used by
/// [`bernoulli_word`]: the returned `t` satisfies `P(lane = 1) = t /
/// 2^64`, within half an ulp of `p`.
///
/// Panics if `p` is not a probability (matching `Rng::gen_bool`).
#[must_use]
pub fn bernoulli_fixed(p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let scaled = p * (u64::MAX as f64);
    if scaled >= u64::MAX as f64 {
        // p = 1 (or within an ulp of it): saturate. The resulting lanes
        // are 1 with probability 1 − 2^−64.
        u64::MAX
    } else {
        scaled as u64
    }
}

/// Draw `lanes ≤ 64` i.i.d. `Bernoulli(fixed / 2^64)` bits into the low
/// `lanes` bits of the returned word (high bits are zero).
///
/// Each lane compares its own random bit stream against the binary
/// expansion of the threshold, most-significant digit first; one
/// `rng.gen::<u64>()` word serves one digit of every lane. The number
/// of words consumed is data-dependent (it stops as soon as every lane
/// is decided and no further 1-digits of the threshold remain), but
/// deterministic given the RNG state — the per-user `user_rng(seed, i)`
/// schedule stays reproducible.
#[inline]
pub fn bernoulli_word<R: Rng + ?Sized>(rng: &mut R, fixed: u64, lanes: u32) -> u64 {
    debug_assert!((1..=64).contains(&lanes));
    let full = if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    };
    let mut undecided = full;
    let mut ones = 0u64;
    let mut threshold = fixed;
    // Walk the threshold's digits MSB-first. Once the remaining suffix
    // of the threshold is zero, every still-undecided lane's stream is
    // ≥ the threshold, so it resolves to 0 with no more draws.
    while undecided != 0 && threshold != 0 {
        let digit_one = threshold >> 63 != 0;
        threshold <<= 1;
        let w = rng.gen::<u64>();
        if digit_one {
            // Lanes whose random digit is 0 fall below the threshold.
            ones |= undecided & !w;
            undecided &= w;
        } else {
            // Lanes whose random digit is 1 rise above it.
            undecided &= !w;
        }
    }
    ones
}

/// Fill a caller-provided buffer with `lanes` i.i.d. Bernoulli bits
/// (low-to-high within each word, words in order), from as few RNG
/// words as the lane count allows. `out` must hold `lanes.div_ceil(64)`
/// words; any tail words beyond the lane count are zeroed.
pub fn bernoulli_fill<R: Rng + ?Sized>(rng: &mut R, fixed: u64, lanes: usize, out: &mut [u64]) {
    assert!(
        out.len() == lanes.div_ceil(64),
        "need {} words for {lanes} lanes, got {}",
        lanes.div_ceil(64),
        out.len()
    );
    let mut remaining = lanes;
    for word in out.iter_mut() {
        let here = remaining.min(64) as u32;
        *word = if here == 0 {
            0
        } else {
            bernoulli_word(rng, fixed, here)
        };
        remaining -= here as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn fixed_point_edges() {
        assert_eq!(bernoulli_fixed(0.0), 0);
        assert_eq!(bernoulli_fixed(1.0), u64::MAX);
        let half = bernoulli_fixed(0.5);
        assert_eq!(half, 1u64 << 63);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_non_probability() {
        let _ = bernoulli_fixed(1.5);
    }

    #[test]
    fn zero_and_near_one_thresholds() {
        let mut rng = StdRng::seed_from_u64(0);
        // p = 0: no draws consumed, all lanes 0.
        let before: u64 = {
            let mut probe = StdRng::seed_from_u64(0);
            probe.gen()
        };
        assert_eq!(bernoulli_word(&mut rng, 0, 64), 0);
        assert_eq!(rng.gen::<u64>(), before, "p = 0 must consume no words");
        // p ≈ 1: overwhelmingly ones.
        let mut rng = StdRng::seed_from_u64(1);
        let w = bernoulli_word(&mut rng, u64::MAX, 64);
        assert!(w.count_ones() >= 60, "{w:b}");
    }

    #[test]
    fn half_probability_consumes_exactly_one_word() {
        // p = 0.5 has the single binary digit 1: lane i is 1 iff its
        // first random digit is 0, i.e. the result is !w of one word.
        let mut probe = StdRng::seed_from_u64(9);
        let w: u64 = probe.gen();
        let after: u64 = probe.gen();
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(bernoulli_word(&mut rng, 1u64 << 63, 64), !w);
        assert_eq!(rng.gen::<u64>(), after);
    }

    #[test]
    fn lane_count_masks_high_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        for lanes in [1u32, 7, 31, 63] {
            let w = bernoulli_word(&mut rng, u64::MAX, lanes);
            assert_eq!(w >> lanes, 0, "lanes {lanes}");
        }
    }

    #[test]
    fn frequencies_match_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        for p in [0.05f64, 0.2497, 0.5, 0.731, 0.95] {
            let fixed = bernoulli_fixed(p);
            let trials = 4_000usize;
            let mut ones = 0u64;
            for _ in 0..trials {
                ones += u64::from(bernoulli_word(&mut rng, fixed, 64).count_ones());
            }
            let f = ones as f64 / (trials * 64) as f64;
            assert!((f - p).abs() < 0.01, "p {p}: observed {f}");
        }
    }

    /// Per-lane independence proxy: adjacent lanes are uncorrelated.
    #[test]
    fn adjacent_lanes_are_uncorrelated() {
        let mut rng = StdRng::seed_from_u64(5);
        let fixed = bernoulli_fixed(0.3);
        let trials = 20_000usize;
        let (mut a, mut b, mut ab) = (0u64, 0u64, 0u64);
        for _ in 0..trials {
            let w = bernoulli_word(&mut rng, fixed, 64);
            a += w & 1;
            b += (w >> 1) & 1;
            ab += (w & (w >> 1)) & 1;
        }
        let (fa, fb, fab) = (
            a as f64 / trials as f64,
            b as f64 / trials as f64,
            ab as f64 / trials as f64,
        );
        assert!((fa - 0.3).abs() < 0.02 && (fb - 0.3).abs() < 0.02);
        assert!((fab - fa * fb).abs() < 0.02, "joint {fab} vs {}", fa * fb);
    }

    #[test]
    fn fill_covers_partial_tail_words() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut out = vec![u64::MAX; 3];
        bernoulli_fill(&mut rng, bernoulli_fixed(0.99), 130, &mut out);
        assert_eq!(out[2] >> 2, 0, "tail word must mask lanes past 130");
        assert!(out[0].count_ones() > 48);
    }

    #[test]
    fn fill_is_deterministic_for_a_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut out = vec![0u64; 4];
            bernoulli_fill(&mut rng, bernoulli_fixed(0.4), 256, &mut out);
            out
        };
        assert_eq!(run(), run());
    }
}
