#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Sampling substrate for the LDP simulation.
//!
//! The experiment harness simulates populations of up to 2^19 users; some
//! mechanisms (notably `InpRR`, which perturbs all `2^d` cells per user)
//! are simulated *exactly in distribution* at the aggregate level, which
//! requires drawing per-cell report counts from a Binomial — so this crate
//! provides an exact [`binomial`] sampler (inversion for small means, a
//! BTPE-style four-region rejection sampler for large means). It also
//! provides the [`AliasTable`] used to draw users from synthetic
//! distributions in `O(1)`, and the pairwise/k-wise independent
//! [`hash`] families required by the OLH and sketch-based frequency
//! oracles of Appendix B.2.

mod alias;
mod binomial;
pub mod hash;

pub use alias::AliasTable;
pub use binomial::binomial;
