#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Sampling substrate for the LDP simulation.
//!
//! The experiment harness simulates populations of up to 2^19 users; some
//! mechanisms (notably `InpRR`, which perturbs all `2^d` cells per user)
//! are simulated *exactly in distribution* at the aggregate level, which
//! requires drawing per-cell report counts from a Binomial — so this crate
//! provides an exact [`binomial`] sampler (inversion for small means, a
//! BTPE-style four-region rejection sampler for large means). It also
//! provides the [`AliasTable`] used to draw users from synthetic
//! distributions in `O(1)`, and the pairwise/k-wise independent
//! [`hash`] families required by the OLH and sketch-based frequency
//! oracles of Appendix B.2.
//!
//! For the batched encode kernels, the crate adds *lane-oriented*
//! primitives that amortize RNG draws across many outcomes per call:
//! [`bernoulli_word`]/[`bernoulli_fill`] draw up to 64 biased coins per
//! random word (the workhorse behind the vectorized unary perturbation),
//! [`binomial_fill`]/[`BinomialSampler`] hoist the binomial regime
//! selection out of the per-draw loop, and [`AliasTable::sample_fill`]
//! batches alias draws into a caller-provided buffer. All of them
//! preserve deterministic RNG schedules: given the same starting RNG
//! state, the batched form consumes exactly the same words as its serial
//! counterpart (except `bernoulli_word`, which is a deliberately
//! different — but still deterministic — schedule from `gen_bool` loops).

mod alias;
mod bernoulli;
mod binomial;
pub mod hash;

pub use alias::AliasTable;
pub use bernoulli::{bernoulli_fill, bernoulli_fixed, bernoulli_word};
pub use binomial::{binomial, binomial_fill, BinomialSampler};
