//! Exact binomial sampling.
//!
//! Two regimes:
//! * `n·min(p,1−p) < 10` — BINV inversion (walk the CDF using the pmf
//!   recurrence), expected `O(np)` time;
//! * otherwise — a rejection sampler from the BTPE four-region envelope
//!   (triangle, parallelogram, two exponential tails) of
//!   Kachitvichyanukul & Schmeiser (1988), with the acceptance test done
//!   by the *exact* pmf ratio `f(y)/f(m)` (an `O(|y−m|)` product; `|y−m|`
//!   is `O(√(npq))` with high probability, which is plenty fast for the
//!   simulation workloads here and avoids the delicate Stirling squeeze).
//!
//! Both regimes share a deterministic setup (regime choice, envelope
//! constants) that [`BinomialSampler`] computes once, so batched draws
//! from a fixed `(n, p)` — [`binomial_fill`], or a sampler held across
//! reports — skip the per-draw setup without changing the RNG schedule:
//! `binomial_fill` consumes exactly the words that the same number of
//! [`binomial`] calls would.

use rand::Rng;

/// Draw from `Binomial(n, p)`.
///
/// Panics if `p` is not a probability.
#[must_use]
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    BinomialSampler::new(n, p).sample(rng)
}

/// Fill a caller-provided buffer with i.i.d. `Binomial(n, p)` draws,
/// hoisting the regime selection and envelope constants out of the
/// per-draw loop. The RNG schedule is identical to `out.len()` serial
/// [`binomial`] calls.
///
/// Panics if `p` is not a probability.
pub fn binomial_fill<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64, out: &mut [u64]) {
    BinomialSampler::new(n, p).fill(rng, out);
}

/// A `Binomial(n, p)` distribution with its sampling plan (regime
/// choice and all deterministic constants) precomputed.
#[derive(Clone, Debug)]
pub struct BinomialSampler {
    n: u64,
    /// Draws are taken with `q = min(p, 1−p)` and mirrored at the end.
    flipped: bool,
    plan: Plan,
}

#[derive(Clone, Debug)]
enum Plan {
    /// `p ∈ {0, 1}` or `n = 0`: a constant, no RNG consumed.
    Constant(u64),
    /// BINV inversion; requires small mean `n·p`.
    Binv { s: f64, log_f0: f64 },
    /// Normal approximation clamped to the support — only reachable in
    /// the theoretical huge-`n`/tiny-`p` underflow corner of BINV.
    Normal { mean: f64, sd: f64 },
    /// BTPE-style envelope rejection; requires `p ≤ 0.5`, `n·p ≥ 10`.
    Btpe(BtpeConstants),
}

#[derive(Clone, Debug)]
struct BtpeConstants {
    p: f64,
    m: f64,
    p1: f64,
    xm: f64,
    xl: f64,
    xr: f64,
    c: f64,
    lambda_l: f64,
    lambda_r: f64,
    p2: f64,
    p3: f64,
    p4: f64,
}

impl BinomialSampler {
    /// Precompute the sampling plan for `Binomial(n, p)`.
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        if n == 0 || p == 0.0 {
            return BinomialSampler {
                n,
                flipped: false,
                plan: Plan::Constant(0),
            };
        }
        if p == 1.0 {
            return BinomialSampler {
                n,
                flipped: false,
                plan: Plan::Constant(n),
            };
        }
        // Work with q = min(p, 1−p) and flip at the end.
        let flipped = p > 0.5;
        let pp = if flipped { 1.0 - p } else { p };
        let plan = if (n as f64) * pp < 10.0 {
            let q = 1.0 - pp;
            let log_f0 = (n as f64) * q.ln();
            if log_f0 < -700.0 {
                // f(0) = q^n underflows; mean ≥ ~10 only reaches the
                // BTPE branch, so this occurs for extreme n with small
                // np only in theory (documented inexactness in an
                // unreachable-by-construction regime).
                let mean = n as f64 * pp;
                Plan::Normal {
                    mean,
                    sd: (mean * q).sqrt(),
                }
            } else {
                Plan::Binv { s: pp / q, log_f0 }
            }
        } else {
            Plan::Btpe(BtpeConstants::new(n, pp))
        };
        BinomialSampler { n, flipped, plan }
    }

    /// Draw one value.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let raw = match &self.plan {
            Plan::Constant(v) => return *v,
            Plan::Binv { s, log_f0 } => binv(rng, self.n, *s, *log_f0),
            Plan::Normal { mean, sd } => {
                let z = normal_sample(rng);
                (mean + sd * z).round().clamp(0.0, self.n as f64) as u64
            }
            Plan::Btpe(k) => btpe(rng, self.n, k),
        };
        if self.flipped {
            self.n - raw
        } else {
            raw
        }
    }

    /// Fill `out` with i.i.d. draws (the batched hot path).
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

impl BtpeConstants {
    fn new(n: u64, p: f64) -> Self {
        let nf = n as f64;
        let q = 1.0 - p;
        let npq = nf * p * q;
        let f_m = nf * p + p; // (n+1)p
        let m = f_m.floor(); // mode
        let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
        let xm = m + 0.5;
        let xl = xm - p1;
        let xr = xm + p1;
        let c = 0.134 + 20.5 / (15.3 + m);
        let a_l = (f_m - xl) / (f_m - xl * p);
        let lambda_l = a_l * (1.0 + 0.5 * a_l);
        let a_r = (xr - f_m) / (xr * q);
        let lambda_r = a_r * (1.0 + 0.5 * a_r);
        let p2 = p1 * (1.0 + 2.0 * c);
        let p3 = p2 + c / lambda_l;
        let p4 = p3 + c / lambda_r;
        BtpeConstants {
            p,
            m,
            p1,
            xm,
            xl,
            xr,
            c,
            lambda_l,
            lambda_r,
            p2,
            p3,
            p4,
        }
    }
}

/// Inversion by CDF walk with the pmf recurrence constants hoisted.
fn binv<R: Rng + ?Sized>(rng: &mut R, n: u64, s: f64, log_f0: f64) -> u64 {
    loop {
        let mut f = log_f0.exp();
        let mut u: f64 = rng.gen();
        // Walk k upward; restart in the (astronomically rare) event of
        // accumulated rounding leaving residual mass.
        for k in 0..=n {
            if u <= f {
                return k;
            }
            u -= f;
            f *= s * ((n - k) as f64) / ((k + 1) as f64);
        }
    }
}

/// One standard normal via Box–Muller (used only in the theoretical
/// fallback branch of [`Plan::Normal`]).
fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// BTPE-style envelope rejection over precomputed constants.
fn btpe<R: Rng + ?Sized>(rng: &mut R, n: u64, k: &BtpeConstants) -> u64 {
    let nf = n as f64;
    loop {
        let u: f64 = rng.gen::<f64>() * k.p4;
        let v: f64 = rng.gen();
        let y: f64;
        if u <= k.p1 {
            // Triangular central region: accept immediately.
            y = (k.xm - k.p1 * v + u).floor();
            return y as u64;
        } else if u <= k.p2 {
            // Parallelogram.
            let x = k.xl + (u - k.p1) / k.c;
            let v2 = v * k.c + 1.0 - (x - k.xm).abs() / k.p1;
            if v2 > 1.0 {
                continue;
            }
            y = x.floor();
            if accept(n, k.p, k.m, y, v2) {
                return y as u64;
            }
        } else if u <= k.p3 {
            // Left exponential tail.
            y = (k.xl + v.ln() / k.lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            let v2 = v * (u - k.p2) * k.lambda_l;
            if accept(n, k.p, k.m, y, v2) {
                return y as u64;
            }
        } else {
            // Right exponential tail.
            y = (k.xr - v.ln() / k.lambda_r).floor();
            if y > nf {
                continue;
            }
            let v2 = v * (u - k.p3) * k.lambda_r;
            if accept(n, k.p, k.m, y, v2) {
                return y as u64;
            }
        }
    }
}

/// Exact acceptance test: `v ≤ f(y)/f(m)` with the pmf ratio computed by
/// the recurrence `f(k+1)/f(k) = (a/(k+1) − s)` where `s = p/q`,
/// `a = (n+1)s`.
fn accept(n: u64, p: f64, m: f64, y: f64, v: f64) -> bool {
    let q = 1.0 - p;
    let s = p / q;
    let a = ((n + 1) as f64) * s;
    let mut f = 1.0f64;
    let (mi, yi) = (m as i64, y as i64);
    if mi < yi {
        for i in (mi + 1)..=yi {
            f *= a / (i as f64) - s;
        }
    } else if mi > yi {
        for i in (yi + 1)..=mi {
            f /= a / (i as f64) - s;
        }
    }
    v <= f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn moments(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        (mean, var)
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(binomial(&mut rng, 0, 0.3), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn support_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let x = binomial(&mut rng, 20, 0.37);
            assert!(x <= 20);
        }
    }

    /// The batched fill consumes the RNG exactly like serial calls, in
    /// both regimes and in the mirrored-p case.
    #[test]
    fn fill_matches_serial_schedule_exactly() {
        for (n, p) in [(50u64, 0.05), (10_000, 0.3), (5_000, 0.85), (0, 0.4)] {
            let serial: Vec<u64> = {
                let mut rng = StdRng::seed_from_u64(99);
                (0..64).map(|_| binomial(&mut rng, n, p)).collect()
            };
            let mut rng = StdRng::seed_from_u64(99);
            let mut out = vec![0u64; 64];
            binomial_fill(&mut rng, n, p, &mut out);
            assert_eq!(out, serial, "n={n} p={p}");
            // And the RNG ends in the same state.
            let mut serial_rng = StdRng::seed_from_u64(99);
            for _ in 0..64 {
                let _ = binomial(&mut serial_rng, n, p);
            }
            assert_eq!(rng.gen::<u64>(), serial_rng.gen::<u64>(), "n={n} p={p}");
        }
    }

    #[test]
    fn binv_moments() {
        // Small-mean regime exercises inversion.
        let mut rng = StdRng::seed_from_u64(2);
        let (n, p) = (50u64, 0.05);
        let samples: Vec<u64> = (0..200_000).map(|_| binomial(&mut rng, n, p)).collect();
        let (mean, var) = moments(&samples);
        let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean - em).abs() < 0.05, "mean {mean} vs {em}");
        assert!((var - ev).abs() < 0.15, "var {var} vs {ev}");
    }

    #[test]
    fn btpe_moments() {
        // Large-mean regime exercises the rejection sampler.
        let mut rng = StdRng::seed_from_u64(3);
        let (n, p) = (10_000u64, 0.3);
        let samples: Vec<u64> = (0..100_000).map(|_| binomial(&mut rng, n, p)).collect();
        let (mean, var) = moments(&samples);
        let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean - em).abs() / em < 2e-3, "mean {mean} vs {em}");
        assert!((var - ev).abs() / ev < 3e-2, "var {var} vs {ev}");
    }

    #[test]
    fn flipped_p_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let (n, p) = (5_000u64, 0.85);
        let samples: Vec<u64> = (0..100_000).map(|_| binomial(&mut rng, n, p)).collect();
        let (mean, var) = moments(&samples);
        let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean - em).abs() / em < 2e-3);
        assert!((var - ev).abs() / ev < 3e-2);
    }

    /// Chi-square goodness of fit against the exact pmf, small n.
    #[test]
    fn chi_square_gof_small() {
        let mut rng = StdRng::seed_from_u64(5);
        let (n, p) = (8u64, 0.4);
        let trials = 200_000usize;
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..trials {
            counts[binomial(&mut rng, n, p) as usize] += 1;
        }
        // Exact pmf.
        let mut pmf = vec![0.0f64; (n + 1) as usize];
        for k in 0..=n {
            let mut logp = 0.0;
            for i in 0..k {
                logp += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
            }
            logp += k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
            pmf[k as usize] = logp.exp();
        }
        let chi2: f64 = (0..=n as usize)
            .map(|k| {
                let e = pmf[k] * trials as f64;
                let o = counts[k] as f64;
                (o - e) * (o - e) / e
            })
            .sum();
        // df = 8; P(chi2 > 26.12) ≈ 0.001.
        assert!(chi2 < 26.12, "chi2 = {chi2}");
    }

    /// Chi-square GOF over a coarse binning for the BTPE regime.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn chi_square_gof_btpe_binned() {
        let mut rng = StdRng::seed_from_u64(6);
        let (n, p) = (400u64, 0.25);
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Bin edges at mean + {-inf, -1.5sd, -0.5sd, 0.5sd, 1.5sd, inf}.
        let edges = [
            f64::NEG_INFINITY,
            mean - 1.5 * sd,
            mean - 0.5 * sd,
            mean + 0.5 * sd,
            mean + 1.5 * sd,
            f64::INFINITY,
        ];
        let trials = 200_000usize;
        let mut obs = [0u64; 5];
        for _ in 0..trials {
            let x = binomial(&mut rng, n, p) as f64;
            let bin = edges
                .windows(2)
                .position(|w| x >= w[0] && x < w[1])
                .unwrap();
            obs[bin] += 1;
        }
        // Expected from exact pmf.
        let mut logpmf = vec![0.0f64; (n + 1) as usize];
        let mut lognum = 0.0;
        for k in 0..=n {
            if k > 0 {
                lognum += ((n - k + 1) as f64).ln() - (k as f64).ln();
            }
            logpmf[k as usize] = lognum + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
        }
        let mut expect = [0.0f64; 5];
        for k in 0..=n as usize {
            let x = k as f64;
            let bin = edges
                .windows(2)
                .position(|w| x >= w[0] && x < w[1])
                .unwrap();
            expect[bin] += logpmf[k].exp();
        }
        let chi2: f64 = (0..5)
            .map(|b| {
                let e = expect[b] * trials as f64;
                let o = obs[b] as f64;
                (o - e) * (o - e) / e
            })
            .sum();
        // df = 4; P(chi2 > 18.47) ≈ 0.001.
        assert!(chi2 < 18.47, "chi2 = {chi2}");
    }
}
