//! Universal (pairwise) and k-wise independent hash families over the
//! prime field `p = 2^61 − 1`, as required by the frequency-oracle
//! baselines of Appendix B.2:
//!
//! * OLH (Wang et al.) draws a fresh *universal* hash per user mapping the
//!   input domain onto `g = ⌈e^ε⌉ + 1` buckets;
//! * the Apple count-mean sketch uses a small family of *3-wise
//!   independent* hashes mapping onto `w` buckets.

use rand::Rng;

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// `(a * b) mod (2^61 − 1)` without overflow.
#[inline]
#[must_use]
pub fn mulmod(a: u64, b: u64) -> u64 {
    let prod = u128::from(a) * u128::from(b);
    // Fold the high bits: x mod (2^61−1) via x = hi*2^61 + lo ≡ hi + lo.
    let lo = (prod & u128::from(MERSENNE_P)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// SplitMix64 — a fast, well-distributed integer mixer used for cheap
/// deterministic seeding.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A degree-(t−1) polynomial hash over `GF(2^61 − 1)`, giving a t-wise
/// independent family when the coefficients are drawn uniformly (leading
/// coefficient nonzero).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolyHash {
    /// Coefficients low-to-high degree; `coeffs.len() = t`.
    coeffs: Vec<u64>,
    /// Output range.
    m: u64,
}

impl PolyHash {
    /// Draw a fresh t-wise independent hash onto `[0, m)`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, t: usize, m: u64) -> Self {
        assert!(t >= 1 && m >= 1);
        let mut coeffs: Vec<u64> = (0..t).map(|_| rng.gen_range(0..MERSENNE_P)).collect();
        // Nonzero leading coefficient for full degree (not required for
        // independence but avoids degenerate constant hashes).
        if t > 1 && coeffs[t - 1] == 0 {
            coeffs[t - 1] = 1;
        }
        PolyHash { coeffs, m }
    }

    /// Deterministically derive a hash from a seed (for reproducible
    /// protocols where the user transmits only the seed).
    #[must_use]
    pub fn from_seed(seed: u64, t: usize, m: u64) -> Self {
        assert!(t >= 1 && m >= 1);
        let mut coeffs = Vec::with_capacity(t);
        let mut s = seed;
        for _ in 0..t {
            s = splitmix64(s);
            coeffs.push(s % MERSENNE_P);
        }
        if t > 1 && coeffs[t - 1] == 0 {
            coeffs[t - 1] = 1;
        }
        PolyHash { coeffs, m }
    }

    /// Evaluate the hash at `x`.
    #[inline]
    #[must_use]
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % MERSENNE_P;
        // Horner's rule.
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = mulmod(acc, x);
            acc += c;
            if acc >= MERSENNE_P {
                acc -= MERSENNE_P;
            }
        }
        acc % self.m
    }

    /// Output range.
    #[must_use]
    pub fn range(&self) -> u64 {
        self.m
    }

    /// The polynomial coefficients, low-to-high degree (for serializing a
    /// protocol configuration that embeds concrete hash functions).
    #[must_use]
    pub fn coefficients(&self) -> &[u64] {
        &self.coeffs
    }

    /// Rebuild a hash from its coefficients (the inverse of
    /// [`PolyHash::coefficients`] + [`PolyHash::range`]).
    #[must_use]
    pub fn from_coefficients(coeffs: Vec<u64>, m: u64) -> Self {
        assert!(!coeffs.is_empty() && m >= 1);
        assert!(coeffs.iter().all(|&c| c < MERSENNE_P));
        PolyHash { coeffs, m }
    }
}

/// A pairwise-independent (universal) hash: degree-1 [`PolyHash`].
#[must_use]
pub fn universal_hash_from_seed(seed: u64, m: u64) -> PolyHash {
    PolyHash::from_seed(seed, 2, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn mulmod_matches_u128() {
        let cases = [
            (0u64, 0u64),
            (1, MERSENNE_P - 1),
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (123_456_789, 987_654_321),
            (1 << 60, 3),
        ];
        for (a, b) in cases {
            let expect = ((u128::from(a) * u128::from(b)) % u128::from(MERSENNE_P)) as u64;
            assert_eq!(mulmod(a, b), expect, "{a} * {b}");
        }
    }

    #[test]
    fn hash_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for t in 1..=4 {
            for m in [1u64, 2, 4, 17, 256] {
                let h = PolyHash::random(&mut rng, t, m);
                for x in 0..1000u64 {
                    assert!(h.hash(x) < m);
                }
            }
        }
    }

    #[test]
    fn from_seed_is_deterministic() {
        let h1 = PolyHash::from_seed(42, 3, 256);
        let h2 = PolyHash::from_seed(42, 3, 256);
        let h3 = PolyHash::from_seed(43, 3, 256);
        for x in 0..100u64 {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
        assert!((0..100u64).any(|x| h1.hash(x) != h3.hash(x)));
    }

    #[test]
    fn buckets_roughly_uniform() {
        // Average over hashes: each bucket should receive ≈ n/m items.
        let m = 8u64;
        let n_inputs = 64u64;
        let n_hashes = 2_000u64;
        let mut counts = vec![0u64; m as usize];
        for seed in 0..n_hashes {
            let h = universal_hash_from_seed(seed, m);
            for x in 0..n_inputs {
                counts[h.hash(x) as usize] += 1;
            }
        }
        let expect = (n_inputs * n_hashes) as f64 / m as f64;
        for (b, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.05, "bucket {b}: {c} vs {expect}");
        }
    }

    #[test]
    fn pairwise_collision_rate() {
        // For a universal family, Pr[h(x) = h(y)] ≈ 1/m for x ≠ y.
        let m = 16u64;
        let trials = 20_000u64;
        let mut collisions = 0u64;
        for seed in 0..trials {
            let h = universal_hash_from_seed(splitmix64(seed), m);
            if h.hash(3) == h.hash(77) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - 1.0 / m as f64).abs() < 0.01,
            "collision rate {rate}"
        );
    }
}
