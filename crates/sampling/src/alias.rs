//! Vose's alias method for `O(1)` sampling from a fixed discrete
//! distribution — used by the synthetic data generators to draw millions
//! of user records from a full-domain distribution.

use rand::Rng;

/// A preprocessed discrete distribution supporting `O(1)` sampling.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability for the "home" column.
    prob: Vec<f64>,
    /// Alternative outcome when the home column is rejected.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty distribution");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table supports up to 2^32 outcomes"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
            "weights must be non-negative, finite, and not all zero"
        );
        let n = weights.len();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled weights: mean 1.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains (numerically ≈ 1) accepts its own column.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` iff the table has no outcomes (cannot occur post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Fill a caller-provided buffer with i.i.d. draws. Consumes the RNG
    /// exactly like `out.len()` serial [`sample`](Self::sample) calls, so
    /// batched and serial encoders stay schedule-identical.
    pub fn sample_fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [usize]) {
        let n = self.prob.len();
        for slot in out.iter_mut() {
            let i = rng.gen_range(0..n);
            *slot = if rng.gen::<f64>() < self.prob[i] {
                i
            } else {
                self.alias[i] as usize
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match() {
        let weights = [0.1, 0.4, 0.2, 0.05, 0.25];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 500_000usize;
        let mut counts = [0u64; 5];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - w).abs() < 0.005, "outcome {i}: {f} vs {w}");
        }
    }

    #[test]
    fn sample_fill_matches_serial_schedule_exactly() {
        let t = AliasTable::new(&[0.1, 0.4, 0.2, 0.05, 0.25]);
        let serial: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..257).map(|_| t.sample(&mut rng)).collect()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = vec![0usize; 257];
        t.sample_fill(&mut rng, &mut out);
        assert_eq!(out, serial);
        let mut serial_rng = StdRng::seed_from_u64(7);
        for _ in 0..257 {
            let _ = t.sample(&mut serial_rng);
        }
        assert_eq!(rng.gen::<u64>(), serial_rng.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn samples_in_range(ws in proptest::collection::vec(0.0f64..10.0, 1..50), seed in any::<u64>()) {
            prop_assume!(ws.iter().sum::<f64>() > 0.0);
            let t = AliasTable::new(&ws);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                let s = t.sample(&mut rng);
                prop_assert!(s < ws.len());
                prop_assert!(ws[s] > 0.0, "sampled a zero-weight outcome");
            }
        }
    }
}
