#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment harness: shared machinery for the per-figure binaries that
//! regenerate every table and figure of the paper (see the top-level
//! `README.md` for the experiment index and how to run each binary).
//!
//! Each binary prints the same rows/series the paper reports; pass
//! `--reps R` to change the repetition count (the paper uses 10; the
//! binaries default lower to keep a full reproduction run fast) or
//! `--quick` for a reduced smoke-test grid.

pub mod histogram;
pub mod scenario;

use ldp_bits::{masks_of_weight, Mask};
use ldp_core::{Estimate, MarginalEstimator, MechanismKind};
use ldp_data::{movielens::MovieLensGenerator, taxi::TaxiGenerator, BinaryDataset};
use ldp_transform::{marginalize, total_variation_distance};
use rand::{rngs::StdRng, SeedableRng};

/// Simple mean/std aggregate of repeated measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form, as the paper's error
    /// bars show spread over repetitions).
    pub std: f64,
}

/// Summarize a slice of measurements.
#[must_use]
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty());
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Summary {
        mean,
        std: var.sqrt(),
    }
}

/// The two dataset substitutes plus the Figure 10 synthetic source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataSource {
    /// MovieLens-like positively-correlated preferences.
    MovieLens,
    /// NYC-taxi-like 8-attribute trips (column-duplicated above d = 8).
    Taxi,
    /// Lightly-skewed full-domain synthetic (Figure 10).
    Skewed,
}

impl DataSource {
    /// Generate a dataset of `n` records over `d` attributes.
    #[must_use]
    pub fn generate(self, d: u32, n: usize, seed: u64) -> BinaryDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            DataSource::MovieLens => MovieLensGenerator::new(d.min(30)).generate(n, &mut rng),
            DataSource::Taxi => {
                let base = TaxiGenerator::default().generate(n, &mut rng);
                if d > 8 {
                    base.duplicate_columns(d)
                } else if d < 8 {
                    base.project(Mask::full(d))
                } else {
                    base
                }
            }
            DataSource::Skewed => ldp_data::synthetic::zipf_skewed(d, 0.8, n, &mut rng),
        }
    }

    /// A lazy row stream over the same population [`Self::generate`]
    /// would materialize: `stream(d, seed)` followed by `n` calls to
    /// [`RowStream::next_row`] yields exactly `generate(d, n, seed)`'s
    /// rows, without ever holding more than one row (plus the fixed-size
    /// sampler state) in memory. This is what lets `ldp-cli load` drive
    /// populations of tens of millions of users.
    #[must_use]
    pub fn stream(self, d: u32, seed: u64) -> RowStream {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = match self {
            DataSource::MovieLens => StreamKind::MovieLens(MovieLensGenerator::new(d.min(30))),
            DataSource::Taxi => StreamKind::Taxi {
                generator: TaxiGenerator::default(),
                d,
            },
            DataSource::Skewed => {
                StreamKind::Skewed(ldp_data::synthetic::ZipfSkewed::new(d, 0.8, &mut rng))
            }
        };
        RowStream { rng, kind }
    }
}

/// A lazily-sampled row source (see [`DataSource::stream`]). Holds the
/// generator's fixed-size state and the RNG — never the population.
#[derive(Clone, Debug)]
pub struct RowStream {
    rng: StdRng,
    kind: StreamKind,
}

#[derive(Clone, Debug)]
enum StreamKind {
    MovieLens(MovieLensGenerator),
    Taxi { generator: TaxiGenerator, d: u32 },
    Skewed(ldp_data::synthetic::ZipfSkewed),
}

impl RowStream {
    /// Draw the next row, identical to the corresponding entry of
    /// [`DataSource::generate`]'s row vector.
    pub fn next_row(&mut self) -> u64 {
        match &self.kind {
            StreamKind::MovieLens(generator) => generator.sample_row(&mut self.rng),
            StreamKind::Taxi { generator, d } => {
                // Replicates `generate`'s whole-dataset `duplicate_columns`
                // / `project(Mask::full(d))` transforms one row at a time.
                let row = generator.sample_row(&mut self.rng);
                if *d > 8 {
                    let mut out = row;
                    for b in 8..*d {
                        out |= ((row >> (b % 8)) & 1) << b;
                    }
                    out
                } else if *d < 8 {
                    row & ((1u64 << *d) - 1)
                } else {
                    row
                }
            }
            StreamKind::Skewed(sampler) => sampler.sample_row(&mut self.rng),
        }
    }

    /// Fill `out` with the next `out.len()` rows.
    pub fn fill(&mut self, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = self.next_row();
        }
    }

    /// Advance past `n` rows without keeping them — how a load client
    /// positions itself at its contiguous slice of the population
    /// (O(n) time, O(1) memory; the sampler state is small, so this
    /// beats materializing the skipped prefix).
    pub fn skip(&mut self, n: usize) {
        for _ in 0..n {
            let _ = self.next_row();
        }
    }
}

/// Exact marginals of a dataset, answered from a cached full distribution
/// (`O(2^d)` per marginal instead of `O(N)`).
#[derive(Clone, Debug)]
pub struct Truth {
    d: u32,
    full: Vec<f64>,
}

impl Truth {
    /// Cache the full distribution of a dataset (`d ≤ 26`).
    #[must_use]
    pub fn new(data: &BinaryDataset) -> Self {
        Truth {
            d: data.d(),
            full: data.full_distribution(),
        }
    }

    /// Exact marginal table for `beta`.
    #[must_use]
    pub fn marginal(&self, beta: Mask) -> Vec<f64> {
        marginalize(&self.full, self.d, beta)
    }

    /// Mean TVD of an estimate over all k-way marginals — the quantity on
    /// the y-axis of Figures 4, 5, 6, 9 and 10.
    #[must_use]
    pub fn mean_kway_tvd<E: MarginalEstimator + ?Sized>(&self, est: &E, k: u32) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for beta in masks_of_weight(self.d, k) {
            total += total_variation_distance(&self.marginal(beta), &est.marginal(beta));
            count += 1;
        }
        total / count as f64
    }
}

/// One measured grid point.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Mechanism display name.
    pub mechanism: &'static str,
    /// Free-form parameter description (e.g. `"d=8 k=2 N=2^18"`).
    pub params: String,
    /// Mean/std TVD over repetitions.
    pub tvd: Summary,
}

/// Run one (mechanism, dataset-config) grid point: `reps` repetitions,
/// each with a freshly generated population, returning the TVD summary.
#[must_use]
#[allow(clippy::too_many_arguments)] // flat experiment-grid coordinates
pub fn measure_tvd(
    kind: MechanismKind,
    source: DataSource,
    d: u32,
    k: u32,
    n: usize,
    eps: f64,
    reps: usize,
    base_seed: u64,
) -> Summary {
    let mech = kind.build(d, k, eps);
    let tvds: Vec<f64> = (0..reps)
        .map(|r| {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(r as u64);
            let data = source.generate(d, n, seed);
            let truth = Truth::new(&data);
            let est: Estimate = mech.run(data.rows(), seed ^ 0xABCD_EF01);
            truth.mean_kway_tvd(&est, k)
        })
        .collect();
    summarize(&tvds)
}

/// Parse `--reps R` and `--quick` style arguments shared by the figure
/// binaries. Returns (reps, quick).
#[must_use]
pub fn parse_common_args(default_reps: usize) -> (usize, bool) {
    let args: Vec<String> = std::env::args().collect();
    let mut reps = default_reps;
    let mut quick = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                reps = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            other => panic!("unknown argument {other}; supported: --reps R, --quick"),
        }
    }
    (reps, quick)
}

/// Print a header + aligned rows (3-significant-digit numbers).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format `mean ± std` compactly.
#[must_use]
pub fn fmt_summary(s: Summary) -> String {
    format!("{:.4}±{:.4}", s.mean, s.std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn truth_matches_dataset_marginals() {
        let data = DataSource::Taxi.generate(8, 20_000, 1);
        let truth = Truth::new(&data);
        for beta in masks_of_weight(8, 2).take(5) {
            let a = truth.marginal(beta);
            let b = data.true_marginal(beta);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn measure_tvd_runs_every_mechanism() {
        for kind in MechanismKind::SIX {
            let s = measure_tvd(kind, DataSource::MovieLens, 4, 2, 4_000, 1.1, 2, 7);
            assert!(s.mean.is_finite() && s.mean >= 0.0, "{kind:?}");
        }
    }

    #[test]
    fn taxi_source_respects_dimension() {
        assert_eq!(DataSource::Taxi.generate(4, 100, 0).d(), 4);
        assert_eq!(DataSource::Taxi.generate(16, 100, 0).d(), 16);
    }

    #[test]
    fn stream_matches_generate_exactly() {
        // Every source, below/at/above the taxi pivot d = 8, both the
        // per-row and the fill path: the lazy stream must reproduce the
        // materialized population bit for bit.
        for source in [DataSource::Taxi, DataSource::MovieLens, DataSource::Skewed] {
            for d in [5u32, 8, 13] {
                let n = 1_000;
                let seed = 0xC0DE ^ u64::from(d);
                let eager = source.generate(d, n, seed);
                let mut stream = source.stream(d, seed);
                let serial: Vec<u64> = (0..n).map(|_| stream.next_row()).collect();
                assert_eq!(serial, eager.rows(), "{source:?} d={d} (next_row)");
                let mut filled = vec![0u64; n];
                source.stream(d, seed).fill(&mut filled);
                assert_eq!(filled, eager.rows(), "{source:?} d={d} (fill)");
            }
        }
    }

    #[test]
    fn stream_chunking_is_invisible() {
        // Refilling a small buffer must walk the same sequence as one
        // big fill — the load generator draws per-batch slices this way.
        let mut chunked = Vec::new();
        let mut stream = DataSource::Skewed.stream(10, 7);
        let mut buf = [0u64; 17];
        while chunked.len() < 500 {
            stream.fill(&mut buf);
            chunked.extend_from_slice(&buf);
        }
        chunked.truncate(500);
        let eager = DataSource::Skewed.generate(10, 500, 7);
        assert_eq!(chunked, eager.rows());
    }
}
