//! The named benchmark scenario matrix (mechanism × k × n) shared by
//! `ldp-cli bench` and the figure binaries, plus the machine-readable
//! `BENCH.json` format the CI regression gate consumes.
//!
//! A scenario names a grid of [`ScenarioPoint`]s; [`run_point`] measures
//! each one with the serving-side metrics the related sketch-serving
//! systems treat as first-class: ingest throughput (reports/sec into the
//! accumulator), merge throughput (partial-aggregate merges/sec),
//! serialized snapshot size, and wire bytes per report. `to_json` /
//! `parse_bench_json` round-trip the results through the `BENCH.json`
//! schema documented in `docs/BENCHMARKS.md`, and [`regressions`]
//! implements the CI gate: flag any point whose ingest throughput drops
//! more than `max_drop` below a committed baseline.

use crate::DataSource;
use ldp_core::frame::StreamHeader;
use ldp_core::wire::Writer;
use ldp_core::{user_rng, Accumulator, MechanismKind, MechanismReport};
use std::time::Instant;

/// How a grid point is measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointMode {
    /// In-process: `absorb_batch` over a buffered report vector.
    Batch,
    /// End-to-end serving: concurrent TCP clients pushing framed report
    /// streams into a live `ldp_server::Server` over loopback.
    Serve,
}

impl PointMode {
    /// The `BENCH.json` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PointMode::Batch => "batch",
            PointMode::Serve => "serve",
        }
    }
}

/// One measured grid point: a mechanism at a concrete (d, k, n, ε).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioPoint {
    /// Mechanism under test.
    pub mechanism: MechanismKind,
    /// Domain dimensionality.
    pub d: u32,
    /// Target marginal order.
    pub k: u32,
    /// Population size.
    pub n: usize,
    /// Privacy budget ε.
    pub eps: f64,
    /// Measurement mode (in-process batch vs live TCP serving).
    pub mode: PointMode,
    /// Batch size. For [`PointMode::Batch`] points: `0` absorbs the
    /// whole report buffer in one `absorb_batch` call; a positive
    /// value absorbs it in chunks of this many reports — the batch-size
    /// sweep that shows where the kernels' per-batch setup amortizes.
    /// For [`PointMode::Serve`] points: reports per `REPORT_BATCH`
    /// frame the clients push (wire v2); `0` pushes one frame per
    /// report (the wire-v1 shape).
    pub batch: usize,
}

/// A named benchmark scenario: the grid plus its execution parameters.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (`smoke`, `full`).
    pub name: &'static str,
    /// The measurement grid.
    pub points: Vec<ScenarioPoint>,
    /// Number of partial aggregates the merge measurement folds.
    pub merge_shards: usize,
    /// Repetitions per point (rates keep the best rep).
    pub reps: usize,
}

impl Scenario {
    /// The known scenario names.
    pub const NAMES: [&'static str; 2] = ["smoke", "full"];

    /// Look up a scenario by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Scenario> {
        let grid = |ks: &[u32], ns: &[usize]| -> Vec<ScenarioPoint> {
            let mut points = Vec::new();
            for &n in ns {
                for &k in ks {
                    for mechanism in MechanismKind::ALL {
                        points.push(ScenarioPoint {
                            mechanism,
                            d: 8,
                            k,
                            n,
                            eps: 1.1,
                            mode: PointMode::Batch,
                            batch: 0,
                        });
                    }
                }
            }
            points
        };
        let swept = |mechanism: MechanismKind, n: usize, batch: usize| ScenarioPoint {
            mechanism,
            d: 8,
            k: 2,
            n,
            eps: 1.1,
            mode: PointMode::Batch,
            batch,
        };
        let serve = |mechanism: MechanismKind, n: usize, batch: usize| ScenarioPoint {
            mechanism,
            d: 8,
            k: 2,
            n,
            eps: 1.1,
            mode: PointMode::Serve,
            batch,
        };
        match name {
            // Seconds, not minutes: the CI bench-smoke job runs this on
            // every push.
            "smoke" => Some(Scenario {
                name: "smoke",
                points: {
                    let mut points = grid(&[2], &[20_000]);
                    // Batch-size sweep: the server worker's drain bound
                    // (256) and the CLI ingest scratch (1024), on the
                    // two kernels with the most per-batch setup to
                    // amortize (InpEM's dense scratch, MargPS's GRR
                    // histogram).
                    for &batch in &[256usize, 1_024] {
                        points.push(swept(MechanismKind::InpEm, 20_000, batch));
                        points.push(swept(MechanismKind::MargPs, 20_000, batch));
                    }
                    // The encode-throughput gate's batched point: InpRR
                    // has the heaviest client (2^d coins per report), so
                    // it is where the lane-oriented encode kernels show
                    // up (batch=0 measures the serial loop above).
                    points.push(swept(MechanismKind::InpRr, 20_000, 1_024));
                    // Serve points push REPORT_BATCH frames (wire v2);
                    // the pair sweeps the client batch size around the
                    // worker drain bound. n is 10× the batch points':
                    // a serve iteration pays fixed connection-setup
                    // costs (TCP handshake, accept latency, thread
                    // spawns), and at 20k reports those costs — not
                    // the serving path — would be the measurement.
                    points.push(serve(MechanismKind::MargPs, 200_000, 1_024));
                    points.push(serve(MechanismKind::MargPs, 200_000, 256));
                    points
                },
                merge_shards: 8,
                reps: 3,
            }),
            "full" => Some(Scenario {
                name: "full",
                points: {
                    let mut points = grid(&[2, 3], &[100_000, 400_000]);
                    // Wider batch-size sweep at population scale.
                    for &batch in &[64usize, 256, 1_024, 4_096] {
                        points.push(swept(MechanismKind::InpEm, 100_000, batch));
                        points.push(swept(MechanismKind::MargPs, 100_000, batch));
                        points.push(swept(MechanismKind::InpRr, 100_000, batch));
                    }
                    // Both frame shapes at population scale: the
                    // legacy one-frame-per-report serve path and the
                    // batched wire-v2 path.
                    points.push(serve(MechanismKind::MargPs, 100_000, 0));
                    points.push(serve(MechanismKind::InpHt, 100_000, 0));
                    points.push(serve(MechanismKind::MargPs, 100_000, 1_024));
                    points
                },
                merge_shards: 8,
                reps: 3,
            }),
            _ => None,
        }
    }
}

/// The measurements of one [`ScenarioPoint`].
#[derive(Clone, Debug, PartialEq)]
pub struct PointResult {
    /// The grid point measured.
    pub point: ScenarioPoint,
    /// Client encodes/sec (best of reps). `batch == 0` measures the
    /// serial per-user `encode` loop; `batch > 0` measures the batched
    /// `encode_batch` kernel writing `REPORT_BATCH` frames into a
    /// reused `wire::Writer`.
    pub encodes_per_sec: f64,
    /// Accumulator ingest throughput, reports/sec (best of reps).
    pub reports_per_sec: f64,
    /// Partial-aggregate merges/sec (best of reps).
    pub merges_per_sec: f64,
    /// Serialized accumulator state size after ingesting all n reports.
    pub snapshot_bytes: usize,
    /// Mean serialized report size on the wire.
    pub bytes_per_report: f64,
}

/// Floor on every timed region: repeat the measured operation until at
/// least this much wall time has elapsed, so per-op rates are computed
/// over a window far above timer resolution (a sub-millisecond region
/// would make the CI regression gate flaky).
const MIN_MEASURE_SECS: f64 = 0.05;

/// Repeat `op` until [`MIN_MEASURE_SECS`] has elapsed; returns
/// `(elapsed, iterations)`.
fn time_at_least<F: FnMut()>(mut op: F) -> (f64, usize) {
    let mut iters = 0usize;
    let t0 = Instant::now();
    loop {
        op();
        iters += 1;
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed >= MIN_MEASURE_SECS {
            return (elapsed, iters);
        }
    }
}

/// Measure one grid point. `seed` drives both the synthetic population
/// and the per-user report randomness (via the [`user_rng`] schedule),
/// so a measurement is exactly reproducible.
#[must_use]
pub fn run_point(
    point: &ScenarioPoint,
    merge_shards: usize,
    reps: usize,
    seed: u64,
) -> PointResult {
    assert!(reps >= 1 && merge_shards >= 2);
    if point.mode == PointMode::Serve {
        return run_serve_point(point, reps, seed);
    }
    let mech = point.mechanism.build(point.d, point.k, point.eps);
    let data = if point.d == 8 {
        DataSource::Taxi.generate(point.d, point.n, seed)
    } else {
        DataSource::Skewed.generate(point.d, point.n, seed)
    };

    // Client pass (timed inside the same ≥ MIN_MEASURE_SECS window as
    // the other rates): batch == 0 measures the serial per-user encode
    // loop, batch > 0 the batched kernel writing REPORT_BATCH frames
    // into one reused Writer.
    let best_encode = measure_encode(&mech, data.rows(), point.batch, reps, seed);

    // The report buffer the ingest/merge measurements consume, plus the
    // wire size of what the population would transmit (untimed).
    let reports: Vec<MechanismReport> = data
        .rows()
        .iter()
        .enumerate()
        .map(|(user, &row)| {
            let mut rng = user_rng(seed, user as u64);
            mech.encode(row, &mut rng)
        })
        .collect();
    let wire_bytes: usize = reports.iter().map(|r| r.to_bytes().len()).sum();

    // Snapshot size after one full ingest (state size is count-invariant,
    // so this is independent of the timing loops below).
    let mut acc = mech.accumulator();
    acc.absorb_batch(&reports);
    let snapshot_bytes = acc.to_bytes().len();

    // Server ingest: absorb the full report buffer repeatedly inside a
    // ≥ MIN_MEASURE_SECS window; best rate over `reps`. A positive
    // `point.batch` absorbs in bounded chunks instead — the shape the
    // server worker drain and the CLI ingest scratch actually run.
    let mut best_ingest = 0.0f64;
    for _ in 0..reps {
        let mut sink = mech.accumulator();
        let (elapsed, iters) = time_at_least(|| {
            if point.batch == 0 {
                sink.absorb_batch(&reports);
            } else {
                for chunk in reports.chunks(point.batch) {
                    sink.absorb_batch(chunk);
                }
            }
            std::hint::black_box(&sink);
        });
        best_ingest = best_ingest.max(point.n as f64 * iters as f64 / elapsed);
    }

    // Merge: fold `merge_shards` partial aggregates (each holding an
    // n/shards slice) into one. The fold consumes its inputs, so each
    // iteration re-clones the parts; a clone-only loop is timed
    // separately and subtracted to isolate the merge cost.
    let chunk = point.n.div_ceil(merge_shards).max(1);
    let parts: Vec<_> = reports
        .chunks(chunk)
        .map(|slice| {
            let mut part = mech.accumulator();
            part.absorb_batch(slice);
            part
        })
        .collect();
    let merges = parts.len().saturating_sub(1).max(1);
    let mut best_merge = 0.0f64;
    for _ in 0..reps {
        let (clone_elapsed, clone_iters) = time_at_least(|| {
            std::hint::black_box(parts.clone());
        });
        let (both_elapsed, both_iters) = time_at_least(|| {
            let mut fold = parts.clone().into_iter();
            let mut base = fold.next().expect("at least one shard");
            for part in fold {
                base.merge(part);
            }
            std::hint::black_box(&base);
        });
        let clone_per_iter = clone_elapsed / clone_iters as f64;
        let both_per_iter = both_elapsed / both_iters as f64;
        // Guard against clone jitter swallowing the whole measurement.
        let merge_per_iter = (both_per_iter - clone_per_iter).max(both_per_iter * 0.05);
        best_merge = best_merge.max(merges as f64 / merge_per_iter);
    }

    PointResult {
        point: *point,
        encodes_per_sec: best_encode,
        reports_per_sec: best_ingest,
        merges_per_sec: best_merge,
        snapshot_bytes,
        bytes_per_report: wire_bytes as f64 / point.n as f64,
    }
}

/// Measure client encode throughput over a population (best of `reps`,
/// each rep a ≥ [`MIN_MEASURE_SECS`] window). `batch == 0` runs the
/// serial per-user `encode`; `batch > 0` runs `encode_batch` over
/// `batch`-row chunks into one reused [`Writer`] — both under the same
/// `user_rng(seed, user)` schedule, so the two rates compare the
/// kernels, not the workloads.
fn measure_encode(
    mech: &ldp_core::Mechanism,
    rows: &[u64],
    batch: usize,
    reps: usize,
    seed: u64,
) -> f64 {
    let n = rows.len();
    let mut best = 0.0f64;
    for _ in 0..reps {
        let (elapsed, iters) = if batch == 0 {
            time_at_least(|| {
                for (user, &row) in rows.iter().enumerate() {
                    let mut rng = user_rng(seed, user as u64);
                    std::hint::black_box(mech.encode(row, &mut rng));
                }
            })
        } else {
            let mut w = Writer::default();
            time_at_least(|| {
                for (chunk_index, chunk) in rows.chunks(batch).enumerate() {
                    mech.encode_batch(chunk, seed, (chunk_index * batch) as u64, &mut w);
                    std::hint::black_box(w.as_bytes());
                }
            })
        };
        best = best.max(n as f64 * iters as f64 / elapsed);
    }
    best
}

/// Concurrent TCP clients a [`PointMode::Serve`] measurement drives.
pub const SERVE_CLIENTS: usize = 4;

/// Worker (shard) count of the in-process server a serve point spins
/// up.
pub const SERVE_SHARDS: usize = 4;

/// Measure one [`PointMode::Serve`] grid point: spin up a real
/// `ldp_server::Server` on a loopback port, push pre-encoded reports
/// from [`SERVE_CLIENTS`] concurrent TCP connections — grouped into
/// `REPORT_BATCH` frames of `point.batch` reports when it is positive,
/// one frame per report when `0` — (each client waiting for the
/// server's absorbed acknowledgement), and read rates
/// off the wall clock. `reports_per_sec` is therefore the full serving
/// path — framing, TCP, connection handling, worker dispatch, absorb —
/// and `merges_per_sec` counts live snapshot requests per second (each
/// one collects and merges every worker's state and ships it back).
fn run_serve_point(point: &ScenarioPoint, reps: usize, seed: u64) -> PointResult {
    use ldp_server::{Control, Request, Response, Server};

    let mech = point.mechanism.build(point.d, point.k, point.eps);
    let data = if point.d == 8 {
        DataSource::Taxi.generate(point.d, point.n, seed)
    } else {
        DataSource::Skewed.generate(point.d, point.n, seed)
    };

    // Client encode pass (timed like the batch mode), then the framed
    // wire form each client will push, built untimed.
    let best_encode = measure_encode(&mech, data.rows(), point.batch, reps, seed);
    let frames: Vec<Vec<u8>> = data
        .rows()
        .iter()
        .enumerate()
        .map(|(user, &row)| {
            let mut rng = user_rng(seed, user as u64);
            mech.encode(row, &mut rng).to_bytes()
        })
        .collect();
    let wire_bytes: usize = frames.iter().map(Vec::len).sum();

    let header = StreamHeader::mechanism(point.mechanism, point.d, point.k, point.eps);
    let server = Server::bind("127.0.0.1:0", SERVE_SHARDS).expect("bind the bench server");
    let addr = server
        .local_addr()
        .expect("bench server address")
        .to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // Contiguous per-client slices of the report stream.
    let chunk = point.n.div_ceil(SERVE_CLIENTS).max(1);
    let slices: Vec<&[Vec<u8>]> = frames.chunks(chunk).collect();

    let mut best_ingest = 0.0f64;
    for _ in 0..reps {
        let (elapsed, iters) = time_at_least(|| {
            std::thread::scope(|scope| {
                for slice in &slices {
                    let addr = addr.as_str();
                    scope.spawn(move || {
                        ldp_server::push_report_batches(addr, &header, slice, point.batch)
                            .expect("push reports to the bench server");
                    });
                }
            });
        });
        best_ingest = best_ingest.max(point.n as f64 * iters as f64 / elapsed);
    }

    // Live snapshots: collect + merge every worker's state on demand.
    let mut control = Control::connect(&addr).expect("control connection");
    let mut snapshot_bytes = 0usize;
    let mut best_snapshot = 0.0f64;
    for _ in 0..reps {
        let (elapsed, iters) =
            time_at_least(
                || match control.request(&Request::Snapshot).expect("live snapshot") {
                    Response::Snapshot { state, .. } => snapshot_bytes = state.len(),
                    other => panic!("unexpected snapshot response: {other:?}"),
                },
            );
        best_snapshot = best_snapshot.max(iters as f64 / elapsed);
    }

    control
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    PointResult {
        point: *point,
        encodes_per_sec: best_encode,
        reports_per_sec: best_ingest,
        merges_per_sec: best_snapshot,
        snapshot_bytes,
        bytes_per_report: wire_bytes as f64 / point.n as f64,
    }
}

/// Run every point of a scenario, invoking `progress` after each one
/// (for CLI logging; pass `|_| ()` to stay quiet).
#[must_use]
pub fn run_scenario<F: FnMut(&PointResult)>(
    scenario: &Scenario,
    seed: u64,
    mut progress: F,
) -> Vec<PointResult> {
    scenario
        .points
        .iter()
        .map(|point| {
            let result = run_point(point, scenario.merge_shards, scenario.reps, seed);
            progress(&result);
            result
        })
        .collect()
}

/// Serialize results into the `BENCH.json` document (schema v1; see
/// `docs/BENCHMARKS.md`).
#[must_use]
pub fn to_json(scenario_name: &str, results: &[PointResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"scenario\": \"{scenario_name}\",\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mechanism\": \"{}\", \"mode\": \"{}\", \"batch\": {}, \"d\": {}, \"k\": {}, \
             \"n\": {}, \"eps\": {}, \
             \"encodes_per_sec\": {:.1}, \"reports_per_sec\": {:.1}, \"merges_per_sec\": {:.1}, \
             \"snapshot_bytes\": {}, \"bytes_per_report\": {:.2}}}{}\n",
            r.point.mechanism.name(),
            r.point.mode.name(),
            r.point.batch,
            r.point.d,
            r.point.k,
            r.point.n,
            r.point.eps,
            r.encodes_per_sec,
            r.reports_per_sec,
            r.merges_per_sec,
            r.snapshot_bytes,
            r.bytes_per_report,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a `BENCH.json` document back into its scenario name and
/// results. Hand-rolled (the workspace builds offline, with no serde);
/// accepts exactly the subset of JSON that [`to_json`] emits, plus
/// arbitrary whitespace.
pub fn parse_bench_json(text: &str) -> Result<(String, Vec<PointResult>), String> {
    let root = json::parse(text)?;
    let obj = root.as_object().ok_or("top level is not an object")?;
    let scenario = json::get(obj, "scenario")?
        .as_str()
        .ok_or("\"scenario\" is not a string")?
        .to_string();
    let results = json::get(obj, "results")?
        .as_array()
        .ok_or("\"results\" is not an array")?;
    let mut out = Vec::new();
    for entry in results {
        let e = entry.as_object().ok_or("result entry is not an object")?;
        let name = json::get(e, "mechanism")?
            .as_str()
            .ok_or("\"mechanism\" is not a string")?;
        let mechanism = MechanismKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown mechanism {name:?}"))?;
        // `mode` is a schema-v1 addition: absent means "batch", so
        // documents written before serve points existed still parse.
        let mode = match e.iter().find(|(k, _)| k == "mode").map(|(_, v)| v) {
            None => PointMode::Batch,
            Some(v) => match v.as_str() {
                Some("batch") => PointMode::Batch,
                Some("serve") => PointMode::Serve,
                other => return Err(format!("unknown mode {other:?}")),
            },
        };
        // `batch` is likewise a later addition: absent means 0 (absorb
        // the whole buffer in one call), so older documents still parse.
        let batch = match e.iter().find(|(k, _)| k == "batch").map(|(_, v)| v) {
            None => 0usize,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("\"batch\" is not a number: {v:?}"))?
                as usize,
        };
        let num = |key: &str| -> Result<f64, String> {
            json::get(e, key)?
                .as_f64()
                .ok_or_else(|| format!("{key:?} is not a number"))
        };
        out.push(PointResult {
            point: ScenarioPoint {
                mechanism,
                d: num("d")? as u32,
                k: num("k")? as u32,
                n: num("n")? as usize,
                eps: num("eps")?,
                mode,
                batch,
            },
            encodes_per_sec: num("encodes_per_sec")?,
            reports_per_sec: num("reports_per_sec")?,
            merges_per_sec: num("merges_per_sec")?,
            snapshot_bytes: num("snapshot_bytes")? as usize,
            bytes_per_report: num("bytes_per_report")?,
        });
    }
    Ok((scenario, out))
}

/// The per-point drop allowance: `serve` points gate at 1.5× the batch
/// threshold (capped below 1), because end-to-end loopback TCP rates
/// carry scheduler noise an in-process `absorb_batch` loop does not.
#[must_use]
pub fn allowed_drop(mode: PointMode, max_drop: f64) -> f64 {
    match mode {
        PointMode::Batch => max_drop,
        PointMode::Serve => (max_drop * 1.5).min(0.95),
    }
}

/// The CI regression gate: one message per grid point whose ingest
/// throughput — or client encode throughput — dropped more than its
/// allowance (`max_drop` for batch points, [`allowed_drop`] for serve
/// points) below the baseline. Points missing from either side are
/// reported too — a silently narrowed grid must not pass as "no
/// regressions".
#[must_use]
pub fn regressions(
    current: &[PointResult],
    baseline: &[PointResult],
    max_drop: f64,
) -> Vec<String> {
    let key = |p: &ScenarioPoint| {
        (
            p.mechanism.name(),
            p.mode,
            p.batch,
            p.d,
            p.k,
            p.n,
            p.eps.to_bits(),
        )
    };
    let label = |p: &ScenarioPoint| {
        let batch = if p.batch > 0 {
            format!(" batch={}", p.batch)
        } else {
            String::new()
        };
        format!(
            "{} [{}]{batch} d={} k={} n={}",
            p.mechanism.name(),
            p.mode.name(),
            p.d,
            p.k,
            p.n
        )
    };
    let mut problems = Vec::new();
    for base in baseline {
        match current.iter().find(|c| key(&c.point) == key(&base.point)) {
            None => problems.push(format!(
                "{}: missing from current results",
                label(&base.point)
            )),
            Some(cur) => {
                let allowance = allowed_drop(base.point.mode, max_drop);
                let floor = base.reports_per_sec * (1.0 - allowance);
                if cur.reports_per_sec < floor {
                    problems.push(format!(
                        "{}: {:.0} reports/sec is {:.0}% below baseline {:.0} (floor {:.0})",
                        label(&cur.point),
                        cur.reports_per_sec,
                        (1.0 - cur.reports_per_sec / base.reports_per_sec) * 100.0,
                        base.reports_per_sec,
                        floor
                    ));
                }
                let encode_floor = base.encodes_per_sec * (1.0 - allowance);
                if cur.encodes_per_sec < encode_floor {
                    problems.push(format!(
                        "{}: {:.0} encodes/sec is {:.0}% below baseline {:.0} (floor {:.0})",
                        label(&cur.point),
                        cur.encodes_per_sec,
                        (1.0 - cur.encodes_per_sec / base.encodes_per_sec) * 100.0,
                        base.encodes_per_sec,
                        encode_floor
                    ));
                }
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| key(&b.point) == key(&cur.point)) {
            problems.push(format!(
                "{}: not in the baseline — refresh it so this point is gated",
                label(&cur.point)
            ));
        }
    }
    problems
}

/// Minimal JSON reader for the `BENCH.json` subset (objects, arrays,
/// strings without escapes beyond `\"` and `\\`, numbers, booleans,
/// null).
mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, as `f64`.
        Num(f64),
        /// A string literal.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(v) => Some(*v),
                _ => None,
            }
        }
    }

    /// Fetch a required object field.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing JSON content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(ch), *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => parse_string(b, pos).map(Value::Str),
            Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of JSON".to_string()),
        }
    }

    fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    *pos += 1;
                }
                c => {
                    out.push(char::from(c));
                    *pos += 1;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_point(mechanism: MechanismKind) -> ScenarioPoint {
        ScenarioPoint {
            mechanism,
            d: 4,
            k: 2,
            n: 2_000,
            eps: 1.1,
            mode: PointMode::Batch,
            batch: 0,
        }
    }

    #[test]
    fn known_scenarios_resolve_and_unknown_do_not() {
        for name in Scenario::NAMES {
            let s = Scenario::by_name(name).unwrap();
            assert_eq!(s.name, name);
            assert!(!s.points.is_empty());
        }
        assert!(Scenario::by_name("nope").is_none());
        // The smoke grid covers every mechanism, plus a batch-size
        // pair of serve points.
        let smoke = Scenario::by_name("smoke").unwrap();
        for kind in MechanismKind::ALL {
            assert!(smoke.points.iter().any(|p| p.mechanism == kind));
        }
        let serve: Vec<_> = smoke
            .points
            .iter()
            .filter(|p| p.mode == PointMode::Serve)
            .collect();
        assert_eq!(serve.len(), 2);
        assert!(serve.iter().all(|p| p.batch > 0));
    }

    #[test]
    fn run_point_produces_finite_positive_metrics() {
        let r = run_point(&tiny_point(MechanismKind::MargPs), 4, 1, 7);
        assert!(r.encodes_per_sec > 0.0 && r.encodes_per_sec.is_finite());
        assert!(r.reports_per_sec > 0.0 && r.reports_per_sec.is_finite());
        assert!(r.merges_per_sec > 0.0 && r.merges_per_sec.is_finite());
        assert!(r.snapshot_bytes > 0);
        assert!(r.bytes_per_report > 0.0);
    }

    #[test]
    fn bench_json_round_trips() {
        let results = vec![
            run_point(&tiny_point(MechanismKind::InpHt), 4, 1, 7),
            run_point(&tiny_point(MechanismKind::InpEm), 4, 1, 7),
        ];
        let text = to_json("smoke", &results);
        let (name, back) = parse_bench_json(&text).unwrap();
        assert_eq!(name, "smoke");
        assert_eq!(back.len(), results.len());
        for (b, r) in back.iter().zip(&results) {
            assert_eq!(b.point.mechanism, r.point.mechanism);
            assert_eq!(b.snapshot_bytes, r.snapshot_bytes);
            // Rates go through a one-decimal text form.
            assert!((b.reports_per_sec - r.reports_per_sec).abs() <= 0.06);
        }
    }

    #[test]
    fn serve_points_run_and_round_trip() {
        let point = ScenarioPoint {
            mode: PointMode::Serve,
            n: 1_000,
            ..tiny_point(MechanismKind::MargPs)
        };
        let r = run_point(&point, 4, 1, 7);
        assert!(r.reports_per_sec > 0.0 && r.reports_per_sec.is_finite());
        assert!(r.merges_per_sec > 0.0 && r.merges_per_sec.is_finite());
        assert!(r.snapshot_bytes > 0);
        let text = to_json("smoke", std::slice::from_ref(&r));
        assert!(text.contains("\"mode\": \"serve\""), "{text}");
        let (_, back) = parse_bench_json(&text).unwrap();
        assert_eq!(back[0].point.mode, PointMode::Serve);
        assert_eq!(back[0].snapshot_bytes, r.snapshot_bytes);
    }

    #[test]
    fn mode_defaults_to_batch_for_pre_serve_documents() {
        let legacy = r#"{"scenario": "x", "results": [{"mechanism": "InpHT", "d": 4,
            "k": 2, "n": 10, "eps": 1.0, "encodes_per_sec": 1, "reports_per_sec": 1,
            "merges_per_sec": 1, "snapshot_bytes": 1, "bytes_per_report": 1}]}"#;
        let (_, results) = parse_bench_json(legacy).unwrap();
        assert_eq!(results[0].point.mode, PointMode::Batch);
    }

    #[test]
    fn serve_points_get_a_wider_regression_allowance() {
        assert_eq!(allowed_drop(PointMode::Batch, 0.30), 0.30);
        assert!((allowed_drop(PointMode::Serve, 0.30) - 0.45).abs() < 1e-12);
        let base = run_point(&tiny_point(MechanismKind::MargHt), 4, 1, 7);
        let mut serve_base = base.clone();
        serve_base.point.mode = PointMode::Serve;
        let mut serve_cur = serve_base.clone();
        // A 40% drop trips the 30% batch gate but not the 45% serve one.
        serve_cur.reports_per_sec = serve_base.reports_per_sec * 0.6;
        assert!(regressions(
            std::slice::from_ref(&serve_cur),
            std::slice::from_ref(&serve_base),
            0.30
        )
        .is_empty());
        // Batch and serve points never match each other.
        assert_eq!(
            regressions(
                std::slice::from_ref(&base),
                std::slice::from_ref(&serve_base),
                0.30
            )
            .len(),
            2
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_bench_json("").is_err());
        assert!(parse_bench_json("{\"scenario\": \"x\"}").is_err()); // no results
        assert!(parse_bench_json("{\"scenario\": 3, \"results\": []}").is_err());
        assert!(parse_bench_json("[1,2,3]").is_err());
        assert!(parse_bench_json("{\"scenario\": \"x\", \"results\": []} trailing").is_err());
        let bad_mech = r#"{"scenario": "x", "results": [{"mechanism": "Nope", "d": 4,
            "k": 2, "n": 10, "eps": 1.0, "encodes_per_sec": 1, "reports_per_sec": 1,
            "merges_per_sec": 1, "snapshot_bytes": 1, "bytes_per_report": 1}]}"#;
        assert!(parse_bench_json(bad_mech).is_err());
    }

    #[test]
    fn batched_points_run_round_trip_and_key_separately() {
        // A chunked ingest must produce the same accumulator state (and
        // valid rates) as the one-call point.
        let whole = tiny_point(MechanismKind::InpEm);
        let chunked = ScenarioPoint {
            batch: 128,
            ..whole
        };
        let a = run_point(&whole, 4, 1, 7);
        let b = run_point(&chunked, 4, 1, 7);
        assert_eq!(a.snapshot_bytes, b.snapshot_bytes);
        assert!(b.reports_per_sec > 0.0 && b.reports_per_sec.is_finite());

        let text = to_json("smoke", &[a.clone(), b.clone()]);
        assert!(text.contains("\"batch\": 0"), "{text}");
        assert!(text.contains("\"batch\": 128"), "{text}");
        let (_, back) = parse_bench_json(&text).unwrap();
        assert_eq!(back[0].point.batch, 0);
        assert_eq!(back[1].point.batch, 128);

        // Different batch sizes are different grid points: comparing one
        // against the other reports both sides as missing.
        assert_eq!(
            regressions(std::slice::from_ref(&a), std::slice::from_ref(&b), 0.30).len(),
            2
        );
    }

    #[test]
    fn batch_defaults_to_zero_for_pre_sweep_documents() {
        let legacy = r#"{"scenario": "x", "results": [{"mechanism": "InpHT", "d": 4,
            "k": 2, "n": 10, "eps": 1.0, "encodes_per_sec": 1, "reports_per_sec": 1,
            "merges_per_sec": 1, "snapshot_bytes": 1, "bytes_per_report": 1}]}"#;
        let (_, results) = parse_bench_json(legacy).unwrap();
        assert_eq!(results[0].point.batch, 0);
        let bad = r#"{"scenario": "x", "results": [{"mechanism": "InpHT", "batch": "big",
            "d": 4, "k": 2, "n": 10, "eps": 1.0, "encodes_per_sec": 1, "reports_per_sec": 1,
            "merges_per_sec": 1, "snapshot_bytes": 1, "bytes_per_report": 1}]}"#;
        assert!(parse_bench_json(bad).is_err());
    }

    #[test]
    fn gate_passes_exactly_at_threshold_and_fails_just_below() {
        let base = run_point(&tiny_point(MechanismKind::MargHt), 4, 1, 7);
        // Exactly at the floor is not a regression: the gate is strict.
        let mut at_floor = base.clone();
        at_floor.reports_per_sec = base.reports_per_sec * (1.0 - 0.30);
        assert!(regressions(
            std::slice::from_ref(&at_floor),
            std::slice::from_ref(&base),
            0.30
        )
        .is_empty());
        // Any measurable amount below the floor is.
        let mut below = base.clone();
        below.reports_per_sec = base.reports_per_sec * (1.0 - 0.30) * 0.999;
        assert_eq!(
            regressions(
                std::slice::from_ref(&below),
                std::slice::from_ref(&base),
                0.30
            )
            .len(),
            1
        );
    }

    #[test]
    fn encode_throughput_is_gated_too() {
        let base = run_point(&tiny_point(MechanismKind::MargHt), 4, 1, 7);
        // A halved encode rate trips the gate even when ingest holds.
        let mut slow_encode = base.clone();
        slow_encode.encodes_per_sec = base.encodes_per_sec * 0.5;
        let problems = regressions(
            std::slice::from_ref(&slow_encode),
            std::slice::from_ref(&base),
            0.30,
        );
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("encodes/sec"), "{problems:?}");
        // Exactly at the floor passes — same strictness as ingest.
        let mut at_floor = base.clone();
        at_floor.encodes_per_sec = base.encodes_per_sec * (1.0 - 0.30);
        assert!(regressions(
            std::slice::from_ref(&at_floor),
            std::slice::from_ref(&base),
            0.30
        )
        .is_empty());
        // Both rates dropping reports both problems for the one point.
        let mut both = base.clone();
        both.encodes_per_sec = base.encodes_per_sec * 0.5;
        both.reports_per_sec = base.reports_per_sec * 0.5;
        assert_eq!(
            regressions(
                std::slice::from_ref(&both),
                std::slice::from_ref(&base),
                0.30
            )
            .len(),
            2
        );
    }

    #[test]
    fn batched_encode_points_measure_the_kernel() {
        // batch > 0 routes the encode measurement through encode_batch
        // (REPORT_BATCH frames into a reused Writer); the rate must be
        // a valid gating key and the ingest state unchanged.
        let whole = tiny_point(MechanismKind::InpRr);
        let chunked = ScenarioPoint { batch: 64, ..whole };
        let a = run_point(&whole, 4, 1, 7);
        let b = run_point(&chunked, 4, 1, 7);
        assert!(b.encodes_per_sec > 0.0 && b.encodes_per_sec.is_finite());
        assert_eq!(a.snapshot_bytes, b.snapshot_bytes);
    }

    #[test]
    fn serve_allowance_caps_below_one() {
        // Even an absurd --max-regress cannot widen a serve point's
        // allowance into "any throughput passes".
        assert!((allowed_drop(PointMode::Serve, 0.90) - 0.95).abs() < 1e-12);
        assert_eq!(allowed_drop(PointMode::Batch, 0.90), 0.90);
    }

    #[test]
    fn regression_gate_flags_drops_and_missing_points() {
        let base = run_point(&tiny_point(MechanismKind::MargHt), 4, 1, 7);
        let mut slow = base.clone();
        slow.reports_per_sec = base.reports_per_sec * 0.5;
        let mut fine = base.clone();
        fine.reports_per_sec = base.reports_per_sec * 0.8;

        // 50% drop trips a 30% gate; 20% drop does not.
        assert_eq!(
            regressions(&[slow.clone()], std::slice::from_ref(&base), 0.30).len(),
            1
        );
        assert!(regressions(&[fine], std::slice::from_ref(&base), 0.30).is_empty());
        // A point missing from either side is itself a failure: dropped
        // from the run, or added without a baseline entry to gate it.
        assert_eq!(regressions(&[], std::slice::from_ref(&base), 0.30).len(), 1);
        assert_eq!(regressions(std::slice::from_ref(&base), &[], 0.30).len(), 1);
    }
}
