#![forbid(unsafe_code)]
//! Figure 8: total mutual information of Chow–Liu dependency trees on
//! the movielens data (d = 10, N = 200K) as ε varies. Trees are learnt
//! from private 2-way marginals (InpHT / MargPS) and scored by the
//! **true** MI of the selected edges, against the non-private tree.

use ldp_analysis::chowliu::{maximum_spanning_tree, reweigh, total_weight};
use ldp_analysis::mi::mutual_information_2x2;
use ldp_bench::{fmt_summary, parse_common_args, print_table, summarize, DataSource, Truth};
use ldp_bits::Mask;
use ldp_core::{MarginalEstimator, MechanismKind};

fn main() {
    let (reps, quick) = parse_common_args(3);
    let (d, k) = (10u32, 2u32);
    let n = if quick { 1 << 14 } else { 200_000 };
    let epss: Vec<f64> = if quick {
        vec![0.4, 1.0]
    } else {
        vec![0.4, 0.6, 0.8, 1.0, 1.2, 1.4]
    };

    let mut rows = Vec::new();
    for &eps in &epss {
        let mut opt = Vec::new();
        let mut ht_scores = Vec::new();
        let mut ps_scores = Vec::new();
        for r in 0..reps {
            let seed = ((eps * 1000.0) as u64) << 20 | r as u64;
            let data = DataSource::MovieLens.generate(d, n, seed);
            let truth = Truth::new(&data);
            let true_mi =
                |a: u32, b: u32| mutual_information_2x2(&truth.marginal(Mask::from_attrs(&[a, b])));
            // Non-private optimum.
            let base_tree = maximum_spanning_tree(d, true_mi);
            opt.push(total_weight(&base_tree));
            // Private trees, scored by true MI of the chosen edges.
            for (kind, out) in [
                (MechanismKind::InpHt, &mut ht_scores),
                (MechanismKind::MargPs, &mut ps_scores),
            ] {
                let est = kind.build(d, k, eps).run(data.rows(), seed ^ 0xC0DE);
                let private_mi = |a: u32, b: u32| {
                    mutual_information_2x2(&est.marginal(Mask::from_attrs(&[a, b])))
                };
                let tree = maximum_spanning_tree(d, private_mi);
                out.push(total_weight(&reweigh(&tree, true_mi)));
            }
        }
        rows.push(vec![
            format!("{eps:.1}"),
            fmt_summary(summarize(&opt)),
            fmt_summary(summarize(&ht_scores)),
            fmt_summary(summarize(&ps_scores)),
        ]);
    }
    print_table(
        &format!("Figure 8: Chow-Liu total (true) MI, movielens d=10, N={n}"),
        &["eps", "NonPrivate", "InpHT", "MargPS"],
        &rows,
    );
    println!(
        "\npaper shape: InpHT trees achieve nearly the non-private total MI at every eps; \
         MargPS is less accurate at low eps and catches up as eps increases"
    );
}
