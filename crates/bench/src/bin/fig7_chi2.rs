#![forbid(unsafe_code)]
//! Figure 7: χ² association testing on the taxi data; N = 256K,
//! ε = 1.1. Private χ² values (InpHT and MargPS marginals) vs the
//! non-private statistic and the 0.95-confidence critical value.

use ldp_analysis::chi2::{chi2_independence_2x2, chi2_noise_aware_2x2};
use ldp_analysis::special::chi2_critical;
use ldp_bench::{parse_common_args, print_table, DataSource, Truth};
use ldp_bits::Mask;
use ldp_core::{MarginalEstimator, MechanismKind};
use ldp_data::taxi::{attr, ATTRIBUTE_NAMES};
use ldp_mechanisms::theory::inpht_cell_variance;

fn main() {
    let (_reps, quick) = parse_common_args(1);
    let n = if quick { 1 << 15 } else { 1 << 18 };
    let (d, k, eps) = (8u32, 2u32, 1.1f64);
    // Three pairs the test must declare dependent, three independent (§6.1).
    let pairs = [
        (attr::NIGHT_PICK, attr::NIGHT_DROP, true),
        (attr::TOLL, attr::FAR, true),
        (attr::CC, attr::TIP, true),
        (attr::M_DROP, attr::CC, false),
        (attr::FAR, attr::NIGHT_PICK, false),
        (attr::TOLL, attr::NIGHT_PICK, false),
    ];

    let data = DataSource::Taxi.generate(d, n, 77);
    let truth = Truth::new(&data);
    let ht = MechanismKind::InpHt.build(d, k, eps).run(data.rows(), 101);
    let ps = MechanismKind::MargPs.build(d, k, eps).run(data.rows(), 102);

    let critical = chi2_critical(0.05, 1);
    let cell_var = inpht_cell_variance(d, k, eps, n);
    let nf = n as f64;
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|&(a, b, expect_dep)| {
            let beta = Mask::from_attrs(&[a, b]);
            let stat_true = chi2_independence_2x2(&truth.marginal(beta), nf).statistic;
            let stat_ht = chi2_independence_2x2(&ht.marginal(beta), nf).statistic;
            let stat_ps = chi2_independence_2x2(&ps.marginal(beta), nf).statistic;
            let aware = chi2_noise_aware_2x2(&ht.marginal(beta), nf, cell_var);
            vec![
                format!(
                    "({}, {})",
                    ATTRIBUTE_NAMES[a as usize], ATTRIBUTE_NAMES[b as usize]
                ),
                if expect_dep {
                    "dependent"
                } else {
                    "independent"
                }
                .to_string(),
                format!("{stat_true:.1}"),
                format!("{stat_ht:.1}"),
                format!("{stat_ps:.1}"),
                format!(
                    "{}/{}",
                    if stat_ht > critical { "dep" } else { "ind" },
                    if stat_ps > critical { "dep" } else { "ind" }
                ),
                if aware.rejects_independence(0.05) {
                    "dep"
                } else {
                    "ind"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 7: chi-square values, taxi, N=2^{}, eps=1.1 (critical value {critical:.3})",
            n.trailing_zeros()
        ),
        &[
            "pair",
            "ground truth",
            "NonPrivate",
            "InpHT",
            "MargPS",
            "verdict HT/PS",
            "HT noise-aware",
        ],
        &rows,
    );
    println!(
        "\npaper shape: InpHT chi2 values track the non-private ones on both sides of the \
         critical value; MargPS sometimes commits type I errors (fails to reject) on the \
         weakly-dependent pairs"
    );
}
