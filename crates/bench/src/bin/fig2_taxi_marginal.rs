#![forbid(unsafe_code)]
//! Figure 2: the 2-way ⟨M_pick, M_drop⟩ marginal of the taxi data.
//!
//! The generator is calibrated to the paper's table
//! (YY 0.55 / YN 0.15 / NY 0.10 / NN 0.20); this binary regenerates it
//! from a fresh sample.

use ldp_bench::{print_table, DataSource};
use ldp_bits::Mask;
use ldp_data::taxi::attr;

fn main() {
    let data = DataSource::Taxi.generate(8, 1_000_000, 2018);
    let beta = Mask::from_attrs(&[attr::M_PICK, attr::M_DROP]);
    let m = data.true_marginal(beta);
    // Local bit 0 = M_pick, bit 1 = M_drop.
    let rows = vec![
        vec![
            "Y".to_string(),
            format!("{:.2}", m[0b11]),
            format!("{:.2}", m[0b01]),
        ],
        vec![
            "N".to_string(),
            format!("{:.2}", m[0b10]),
            format!("{:.2}", m[0b00]),
        ],
    ];
    print_table(
        "Figure 2: 2-way marginal (rows: M_pick; columns: M_drop)",
        &["M_pick \\ M_drop", "Y", "N"],
        &rows,
    );
    println!("\npaper: YY 0.55, YN 0.15, NY 0.10, NN 0.20");
}
