#![forbid(unsafe_code)]
//! Figure 4: mean total variation distance of 1/2/3-way marginals over
//! the movielens data as the population size N varies, for all six
//! mechanisms; d ∈ {4, 8, 16}, k ∈ {1, 2, 3}, ε = ln 3.
//!
//! `--quick` restricts to d ∈ {4, 8}, k ∈ {1, 2} and three N values.

use ldp_bench::{fmt_summary, parse_common_args, print_table, summarize, DataSource, Truth};
use ldp_core::MechanismKind;

fn main() {
    let (reps, quick) = parse_common_args(3);
    let eps = 3f64.ln();
    let (ds, ks, ns): (Vec<u32>, Vec<u32>, Vec<usize>) = if quick {
        (vec![4, 8], vec![1, 2], vec![1 << 14, 1 << 16, 1 << 18])
    } else {
        (
            vec![4, 8, 16],
            vec![1, 2, 3],
            vec![1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19],
        )
    };

    for &d in &ds {
        for &k in &ks {
            let mut rows = Vec::new();
            for &n in &ns {
                // One population + truth per (grid point, rep), shared by
                // all six mechanisms — matching the paper's protocol.
                let mut per_mech: Vec<Vec<f64>> = vec![Vec::new(); MechanismKind::SIX.len()];
                for r in 0..reps {
                    let seed =
                        (u64::from(d) << 48) ^ (u64::from(k) << 40) ^ ((n as u64) << 8) ^ r as u64;
                    let data = DataSource::MovieLens.generate(d, n, seed);
                    let truth = Truth::new(&data);
                    for (mi, kind) in MechanismKind::SIX.iter().enumerate() {
                        let est = kind.build(d, k, eps).run(data.rows(), seed ^ 0xF1F1);
                        per_mech[mi].push(truth.mean_kway_tvd(&est, k));
                    }
                }
                let mut row = vec![format!("2^{}", n.trailing_zeros())];
                row.extend(per_mech.iter().map(|tvds| fmt_summary(summarize(tvds))));
                rows.push(row);
            }
            let mut header = vec!["N"];
            header.extend(MechanismKind::SIX.iter().map(|m| m.name()));
            print_table(
                &format!("Figure 4 panel: movielens, d={d}, k={k}, eps=ln3 (mean TVD ± std)"),
                &header,
                &rows,
            );
        }
    }
    println!(
        "\npaper shape: error ∝ 1/√N for all methods; InpPS decays with 2^d and stops \
         improving; InpHT lowest or near-lowest everywhere; MargPS ≥ MargRR accuracy; \
         methods indistinguishable at k=1"
    );
}
