#![forbid(unsafe_code)]
//! Figure 5: effect of the marginal order k on accuracy; taxi data,
//! N = 2^18, e^ε = 3, d = 8, k = 1…7, all six mechanisms.

use ldp_bench::{fmt_summary, parse_common_args, print_table, summarize, DataSource, Truth};
use ldp_core::MechanismKind;

fn main() {
    let (reps, quick) = parse_common_args(3);
    let (d, eps) = (8u32, 3f64.ln());
    let n = if quick { 1 << 15 } else { 1 << 18 };
    let ks: Vec<u32> = if quick {
        vec![1, 2, 3]
    } else {
        (1..=7).collect()
    };

    let mut rows = Vec::new();
    for &k in &ks {
        let mut per_mech: Vec<Vec<f64>> = vec![Vec::new(); MechanismKind::SIX.len()];
        for r in 0..reps {
            let seed = (u64::from(k) << 32) ^ r as u64 ^ 0x5A5A;
            let data = DataSource::Taxi.generate(d, n, seed);
            let truth = Truth::new(&data);
            for (mi, kind) in MechanismKind::SIX.iter().enumerate() {
                let est = kind.build(d, k, eps).run(data.rows(), seed ^ 0x0F0F);
                per_mech[mi].push(truth.mean_kway_tvd(&est, k));
            }
        }
        let mut row = vec![format!("{k}")];
        row.extend(per_mech.iter().map(|t| fmt_summary(summarize(t))));
        rows.push(row);
    }
    let mut header = vec!["k"];
    header.extend(MechanismKind::SIX.iter().map(|m| m.name()));
    print_table(
        &format!(
            "Figure 5: taxi, d=8, N=2^{}, e^eps=3 (mean k-way TVD ± std)",
            n.trailing_zeros()
        ),
        &header,
        &rows,
    );
    println!(
        "\npaper shape: InpHT is the method of choice for k ≤ d/2; for larger k InpRR \
         becomes competitive in accuracy (at 2^d communication); marginal methods degrade \
         faster; absolute error grows with k"
    );
}
