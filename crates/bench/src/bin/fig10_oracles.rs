#![forbid(unsafe_code)]
//! Figure 10 (Appendix B.2): frequency-oracle baselines vs InpHT on
//! lightly-skewed synthetic data as d grows; e^ε = 3, InpOLH with a
//! decode-operation budget (the paper's 12-hour timeout, scaled), and
//! InpHTCMS with g = 5 hashes of width w = 256.

use ldp_bench::{fmt_summary, parse_common_args, print_table, summarize, DataSource, Truth};
use ldp_bits::masks_of_weight;
use ldp_core::MechanismKind;
use ldp_oracles::{oracle_marginal, HadamardCms, Olh, OlhDecode};
use ldp_transform::total_variation_distance;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let (reps, quick) = parse_common_args(3);
    let k = 2u32;
    let eps = 3f64.ln();
    let n = if quick { 1 << 13 } else { 1 << 16 };
    let dims: Vec<u32> = if quick {
        vec![4, 8]
    } else {
        vec![4, 8, 12, 16]
    };
    // OLH decode budget in hash evaluations — chosen so that (as in the
    // paper) d ≤ 8 completes and d ≥ 12 times out at full population.
    let olh_budget: u64 = 4 * (n as u64) * (1 << 8);

    let mut rows = Vec::new();
    for &d in &dims {
        let mut ht = Vec::new();
        let mut olh = Vec::new();
        let mut hcms = Vec::new();
        let mut olh_timed_out = false;
        for r in 0..reps {
            let seed = (u64::from(d) << 24) ^ r as u64;
            let data = DataSource::Skewed.generate(d, n, seed);
            let truth = Truth::new(&data);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xACE);

            // InpHT (ours).
            let est = MechanismKind::InpHt.build(d, k, eps).run(data.rows(), seed);
            ht.push(truth.mean_kway_tvd(&est, k));

            // InpOLH with decode budget.
            let olh_mech = Olh::new(d, eps);
            let mut agg = olh_mech.aggregator();
            for &row in data.rows() {
                agg.absorb(olh_mech.encode(row, &mut rng));
            }
            let oracle = agg.finish();
            match oracle.estimate_all(olh_budget) {
                OlhDecode::Complete(full) => {
                    let est = ldp_core::FullDistributionEstimate::new(d, full);
                    olh.push(truth.mean_kway_tvd(&est, k));
                }
                OlhDecode::TimedOut { .. } => olh_timed_out = true,
            }

            // InpHTCMS, g = 5, w = 256.
            let cms = HadamardCms::new(d, eps, 5, 256, seed ^ 0xCC);
            let mut agg = cms.aggregator();
            for &row in data.rows() {
                agg.absorb(cms.encode(row, &mut rng));
            }
            let oracle = agg.finish();
            let mut total = 0.0;
            let mut count = 0;
            for beta in masks_of_weight(d, k) {
                total += total_variation_distance(
                    &truth.marginal(beta),
                    &oracle_marginal(&oracle, beta),
                );
                count += 1;
            }
            hcms.push(total / f64::from(count));
        }
        rows.push(vec![
            format!("{d}"),
            fmt_summary(summarize(&ht)),
            if olh_timed_out || olh.is_empty() {
                "timed out".to_string()
            } else {
                fmt_summary(summarize(&olh))
            },
            fmt_summary(summarize(&hcms)),
        ]);
    }
    print_table(
        &format!(
            "Figure 10: frequency oracles, skewed synthetic, k=2, N=2^{}, e^eps=3",
            n.trailing_zeros()
        ),
        &["d", "InpHT", "InpOLH", "InpHTCMS"],
        &rows,
    );
    println!(
        "\npaper shape: InpOLH matches InpHT at small d but its decode times out by d=12; \
         InpHTCMS is fast but not competitive in accuracy on low-frequency cells; InpHT \
         remains the method of choice"
    );
}
