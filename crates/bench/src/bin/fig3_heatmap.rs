#![forbid(unsafe_code)]
//! Figure 3: the attribute-correlation heatmap of the taxi data, printed
//! as a Pearson-coefficient matrix.

use ldp_bench::{print_table, DataSource};
use ldp_data::{pearson_matrix, taxi::ATTRIBUTE_NAMES};

fn main() {
    let data = DataSource::Taxi.generate(8, 500_000, 3);
    let corr = pearson_matrix(&data);
    let mut header = vec![""];
    header.extend(ATTRIBUTE_NAMES);
    let rows: Vec<Vec<String>> = (0..8)
        .map(|a| {
            let mut row = vec![ATTRIBUTE_NAMES[a].to_string()];
            row.extend((0..8).map(|b| format!("{:+.2}", corr[a][b])));
            row
        })
        .collect();
    print_table(
        "Figure 3: Pearson correlation heatmap, taxi data",
        &header,
        &rows,
    );
    println!(
        "\npaper: strong positives on (Night_pick,Night_drop), (Toll,Far), (CC,Tip), \
         (M_pick,M_drop); remaining pairs weak or negative"
    );
}
