#![forbid(unsafe_code)]
//! Streaming-ingest experiment: reports/sec and accumulator memory of
//! the incremental [`Accumulator`] path vs materializing every report
//! before aggregating.
//!
//! ```text
//! cargo run --release -p ldp_bench --bin streaming_ingest [n] [d] [k] [eps]
//! ```
//!
//! Defaults: n = 200,000 taxi users, d = 8, k = 2, ε = 1.1. For each
//! mechanism the harness runs the same per-user seed schedule twice:
//!
//! * **streaming** — `encode → absorb` per user; the only server state
//!   ever held is the accumulator (its compact serialized size is
//!   reported as `acc state`);
//! * **materialized** — collect all n reports into a buffer first
//!   (`report buf` estimates its heap footprint), then `absorb_batch`.
//!
//! Both paths must produce byte-identical accumulator state — the
//! partition/order-invariance law of [`Accumulator`] — which is asserted
//! before anything is printed. The interesting columns at scale: the
//! accumulator state is O(mechanism dimensions), independent of n,
//! while the report buffer grows linearly with n.

use ldp_bench::DataSource;
use ldp_core::{user_rng, Accumulator, MechanismKind, MechanismReport};
use std::time::Instant;

/// Approximate heap footprint of a materialized report buffer, in bytes.
fn report_buffer_bytes(reports: &[MechanismReport]) -> usize {
    let inline = std::mem::size_of::<MechanismReport>();
    reports
        .iter()
        .map(|r| {
            inline
                + match r {
                    MechanismReport::InpRr(ones) => ones.len() * std::mem::size_of::<u32>(),
                    MechanismReport::MargRr(r) => r.ones.len() * std::mem::size_of::<u16>(),
                    _ => 0,
                }
        })
        .sum()
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: f64| -> f64 {
        args.next()
            .map_or(default, |a| a.parse().expect("arguments must be numeric"))
    };
    let n = next(200_000.0) as usize;
    let d = next(8.0) as u32;
    let k = next(2.0) as u32;
    let eps = next(1.1);
    let seed = 42u64;

    println!("population n = {n}, d = {d}, k = {k}, eps = {eps}");
    println!("(InpRR runs its faithful O(2^d)-per-user client here, not the run_fast simulation)");
    println!();
    let data = DataSource::Taxi.generate(d, n, seed);

    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>12}  {:>9}",
        "", "stream", "reports/s", "batch", "report buf", "acc state"
    );
    for kind in MechanismKind::ALL {
        let mechanism = kind.build(d, k, eps);

        // Streaming: one report in flight at a time.
        let t0 = Instant::now();
        let mut acc = mechanism.accumulator();
        for (user, &row) in data.rows().iter().enumerate() {
            let mut rng = user_rng(seed, user as u64);
            acc.absorb(&mechanism.encode(row, &mut rng));
        }
        let t_stream = t0.elapsed();

        // Materialized: all reports buffered, then batch-absorbed.
        let reports: Vec<MechanismReport> = data
            .rows()
            .iter()
            .enumerate()
            .map(|(user, &row)| {
                let mut rng = user_rng(seed, user as u64);
                mechanism.encode(row, &mut rng)
            })
            .collect();
        let buffer_bytes = report_buffer_bytes(&reports);
        let t0 = Instant::now();
        let mut batched = mechanism.accumulator();
        batched.absorb_batch(&reports);
        let t_batch = t0.elapsed();

        let state = acc.to_bytes();
        assert_eq!(
            state,
            batched.to_bytes(),
            "{} streaming and batched state diverged",
            kind.name()
        );
        println!(
            "{:>8}  {:>10.1?}  {:>12.0}  {:>10.1?}  {:>12}  {:>9}",
            kind.name(),
            t_stream,
            n as f64 / t_stream.as_secs_f64(),
            t_batch,
            human(buffer_bytes),
            human(state.len()),
        );
    }
}
