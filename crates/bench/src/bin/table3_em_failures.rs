#![forbid(unsafe_code)]
//! Table 3: InpEM failure rate (EM converging immediately to the uniform
//! prior) on the taxi data for small ε — the seven parameter rows of the
//! paper's table.

use ldp_bench::{parse_common_args, print_table, DataSource};
use ldp_bits::binomial;
use ldp_core::{Estimate, MechanismKind};

fn main() {
    let (_reps, quick) = parse_common_args(1);
    // (N, d, k, eps) — the rows of Table 3.
    let rows_cfg: &[(usize, u32, u32, f64)] = if quick {
        &[(1 << 12, 8, 2, 0.1), (1 << 12, 12, 2, 0.2)]
    } else {
        &[
            (1 << 16, 8, 1, 0.2),
            (1 << 18, 8, 2, 0.1),
            (1 << 16, 8, 2, 0.2),
            (1 << 16, 12, 2, 0.2),
            (1 << 18, 16, 2, 0.1),
            (1 << 18, 16, 2, 0.2),
            (1 << 19, 24, 2, 0.2),
        ]
    };

    let rows: Vec<Vec<String>> = rows_cfg
        .iter()
        .map(|&(n, d, k, eps)| {
            let data = DataSource::Taxi.generate(d, n, u64::from(d) << 8 | (n as u64));
            let est = MechanismKind::InpEm.build(d, k, eps).run(data.rows(), 7);
            let Estimate::Em(em) = est else {
                unreachable!("InpEm produces Em estimates")
            };
            let total = binomial(u64::from(d), u64::from(k));
            let (_, failed) = em.decode_all_kway(k);
            vec![
                format!("2^{}", n.trailing_zeros()),
                d.to_string(),
                k.to_string(),
                format!("{eps:.1}"),
                format!("{failed}/{total}"),
            ]
        })
        .collect();
    print_table(
        "Table 3: InpEM immediate-failure rate on taxi data for small eps",
        &["N", "d", "k", "eps", "Failed/Total marginals"],
        &rows,
    );
    println!(
        "\npaper: 3/8, 15/28, 3/28, 19/66, 120/120, 72/120, 276/276 — failures grow with d \
         and shrink with eps and N; at (d=16, eps=0.1) and (d=24, eps=0.2) every marginal \
         fails"
    );
}
