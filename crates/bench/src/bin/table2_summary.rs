#![forbid(unsafe_code)]
//! Table 2: per-method communication cost (bits) and error behavior —
//! the analytic columns plus a measured-error column to confirm the
//! relative ordering the table predicts.

use ldp_bench::{fmt_summary, measure_tvd, parse_common_args, print_table, DataSource};
use ldp_core::MechanismKind;
use ldp_mechanisms::theory::MethodBound;

fn main() {
    let (reps, quick) = parse_common_args(3);
    let (d, k, eps) = (8u32, 2u32, 1.1f64);
    let n = if quick { 1 << 14 } else { 1 << 18 };

    let rows: Vec<Vec<String>> = MechanismKind::SIX
        .iter()
        .map(|kind| {
            let bound: MethodBound = kind.bound().expect("six methods have bounds");
            let comm = bound.communication_bits(d, k);
            let theory = bound.error_bound(d, k, eps, n);
            let measured = measure_tvd(*kind, DataSource::Taxi, d, k, n, eps, reps, 99);
            vec![
                kind.name().to_string(),
                comm.to_string(),
                format!("{theory:.3}"),
                fmt_summary(measured),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table 2: d={d}, k={k}, eps={eps}, N=2^{}",
            n.trailing_zeros()
        ),
        &[
            "Method",
            "Comm (bits)",
            "Error bound shape",
            "Measured mean TVD",
        ],
        &rows,
    );
    println!(
        "\npaper: comm = 2^d / d / d+1 / d+2^k / d+k / d+k+1; error shape = 2^(k/2)2^(d/2) \
         / 2^(d+k/2) / 2^(k/2)sqrt(T) / 2^k*d^(k/2) / 2^(3k/2)d^(k/2) x2; bounds are \
         worst-case shapes — measured error should respect the InpHT-best ordering"
    );
}
