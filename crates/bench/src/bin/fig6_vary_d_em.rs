#![forbid(unsafe_code)]
//! Figure 6: k = 2 comparison against the EM heuristic at larger
//! dimensionalities (achieved, as in the paper, by duplicating taxi
//! columns); InpHT and MargPS vs InpEM across ε.

use ldp_bench::{fmt_summary, parse_common_args, print_table, summarize, DataSource, Truth};
use ldp_core::{Estimate, MechanismKind};

fn main() {
    let (reps, quick) = parse_common_args(3);
    let k = 2u32;
    let n = if quick { 1 << 14 } else { 1 << 17 };
    let ds: Vec<u32> = if quick {
        vec![8, 16]
    } else {
        vec![8, 16, 24, 32]
    };
    let epss = [0.4, 0.8, 1.2];
    let methods = [
        MechanismKind::InpHt,
        MechanismKind::MargPs,
        MechanismKind::InpEm,
    ];

    for &d in &ds {
        let mut rows = Vec::new();
        for &eps in &epss {
            let mut per_mech: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
            for r in 0..reps {
                let seed = (u64::from(d) << 32) ^ ((eps * 1000.0) as u64) ^ r as u64;
                let data = DataSource::Taxi.generate(d, n, seed);
                // d ≤ 26 limit for the cached full distribution: score the
                // 2-way marginals directly against the dataset for big d.
                let truth: Option<Truth> = (d <= 20).then(|| Truth::new(&data));
                for (mi, kind) in methods.iter().enumerate() {
                    let est: Estimate = kind.build(d, k, eps).run(data.rows(), seed ^ 0xEE);
                    let tvd = match &truth {
                        Some(t) => t.mean_kway_tvd(&est, k),
                        None => ldp_core::mean_kway_tvd(&est, &data, k),
                    };
                    per_mech[mi].push(tvd);
                }
            }
            let mut row = vec![format!("{eps:.1}")];
            row.extend(per_mech.iter().map(|t| fmt_summary(summarize(t))));
            rows.push(row);
        }
        let mut header = vec!["eps"];
        header.extend(methods.iter().map(|m| m.name()));
        print_table(
            &format!(
                "Figure 6 panel: taxi (duplicated columns), d={d}, k=2, N=2^{} (mean TVD ± std)",
                n.trailing_zeros()
            ),
            &header,
            &rows,
        );
    }
    println!(
        "\npaper shape: InpEM improves with eps but stays several times worse than the \
         unbiased estimators InpHT and MargPS at every d"
    );
}
