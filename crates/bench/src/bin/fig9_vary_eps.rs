#![forbid(unsafe_code)]
//! Figure 9 (Appendix B.1): mean TVD for 1/2/3-way marginals over
//! N = 2^18 movielens users as the privacy budget ε varies.

use ldp_bench::{fmt_summary, parse_common_args, print_table, summarize, DataSource, Truth};
use ldp_core::MechanismKind;

fn main() {
    let (reps, quick) = parse_common_args(3);
    let n = if quick { 1 << 14 } else { 1 << 18 };
    let (ds, ks): (Vec<u32>, Vec<u32>) = if quick {
        (vec![8], vec![2])
    } else {
        (vec![8, 16], vec![1, 2, 3])
    };
    let epss = [0.4, 0.6, 0.8, 1.0, 1.2, 1.4];

    for &d in &ds {
        for &k in &ks {
            let mut rows = Vec::new();
            for &eps in &epss {
                let mut per_mech: Vec<Vec<f64>> = vec![Vec::new(); MechanismKind::SIX.len()];
                for r in 0..reps {
                    let seed = (u64::from(d) << 40)
                        ^ (u64::from(k) << 32)
                        ^ ((eps * 1000.0) as u64)
                        ^ (r as u64) << 16;
                    let data = DataSource::MovieLens.generate(d, n, seed);
                    let truth = Truth::new(&data);
                    for (mi, kind) in MechanismKind::SIX.iter().enumerate() {
                        let est = kind.build(d, k, eps).run(data.rows(), seed ^ 0xBEE);
                        per_mech[mi].push(truth.mean_kway_tvd(&est, k));
                    }
                }
                let mut row = vec![format!("{eps:.1}")];
                row.extend(per_mech.iter().map(|t| fmt_summary(summarize(t))));
                rows.push(row);
            }
            let mut header = vec!["eps"];
            header.extend(MechanismKind::SIX.iter().map(|m| m.name()));
            print_table(
                &format!(
                    "Figure 9 panel: movielens, d={d}, k={k}, N=2^{} (mean TVD ± std)",
                    n.trailing_zeros()
                ),
                &header,
                &rows,
            );
        }
    }
    println!(
        "\npaper shape: error declines as eps grows; InpPS/InpRR/MargRR unfavorable for \
         k ≥ 2; MargPS overtakes MargHT as eps increases; InpHT best across all \
         configurations"
    );
}
