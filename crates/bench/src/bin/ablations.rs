#![forbid(unsafe_code)]
//! Accuracy ablations for the design choices called out in `DESIGN.md`
//! §5:
//!
//! 1. vanilla symmetric PRR probabilities vs Wang et al.'s OUE (the paper
//!    finds they "make little difference", §5.1);
//! 2. budget splitting vs sampling (§3.1's BS-vs-RRS claim), compared
//!    through InpEM (BS) vs MargPS (sampling) at matched ε;
//! 3. MargHT sampling only the 2^k − 1 informative coefficients vs the
//!    paper's all-2^k sampling (emulated by discarding the 1/2^k of
//!    reports that would have drawn the known constant coefficient);
//! 4. Barak-style consistency postprocessing of MargPS's independent
//!    per-marginal tables (pool shared coefficients, rebuild).

use ldp_bench::{fmt_summary, parse_common_args, print_table, summarize, DataSource, Truth};
use ldp_core::consistency;
use ldp_core::{InpRr, MargRr};
use ldp_core::{MargHt, MarginalSetEstimate, MechanismKind};
use ldp_mechanisms::UnaryFlavor;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let (reps, quick) = parse_common_args(5);
    let (d, k, eps) = (8u32, 2u32, 1.1f64);
    let n = if quick { 1 << 13 } else { 1 << 16 };

    // --- Ablation 1: symmetric vs OUE probabilities. ---
    let mut rows = Vec::new();
    for (label, flavor) in [
        ("symmetric (paper Fact 3.2)", UnaryFlavor::Symmetric),
        ("optimized (Wang et al.)", UnaryFlavor::Optimized),
    ] {
        let mut inp = Vec::new();
        let mut marg = Vec::new();
        for r in 0..reps {
            let seed = 1000 + r as u64;
            let data = DataSource::Taxi.generate(d, n, seed);
            let truth = Truth::new(&data);
            let mech = InpRr::with_flavor(d, eps, flavor);
            inp.push(truth.mean_kway_tvd(&mech.run_fast(data.rows(), seed), k));
            let mech = MargRr::with_flavor(d, k, eps, flavor);
            let mut rng = StdRng::seed_from_u64(seed ^ 7);
            let mut agg = mech.aggregator();
            for &row in data.rows() {
                agg.absorb(&mech.encode(row, &mut rng));
            }
            marg.push(truth.mean_kway_tvd(&agg.finish(), k));
        }
        rows.push(vec![
            label.to_string(),
            fmt_summary(summarize(&inp)),
            fmt_summary(summarize(&marg)),
        ]);
    }
    print_table(
        &format!(
            "Ablation 1: PRR probability flavor, taxi d={d} k={k} eps={eps} N=2^{}",
            n.trailing_zeros()
        ),
        &["flavor", "InpRR TVD", "MargRR TVD"],
        &rows,
    );
    println!("paper: the two settings \"make little difference\" (§5.1)");

    // --- Ablation 2: budget splitting vs sampling. ---
    let mut rows = Vec::new();
    let mut bs = Vec::new();
    let mut samp = Vec::new();
    for r in 0..reps {
        let seed = 2000 + r as u64;
        let data = DataSource::Taxi.generate(d, n, seed);
        let truth = Truth::new(&data);
        let em = MechanismKind::InpEm.build(d, k, eps).run(data.rows(), seed);
        bs.push(truth.mean_kway_tvd(&em, k));
        let ps = MechanismKind::MargPs
            .build(d, k, eps)
            .run(data.rows(), seed);
        samp.push(truth.mean_kway_tvd(&ps, k));
    }
    rows.push(vec![
        "budget split (InpEM, eps/d per bit)".to_string(),
        fmt_summary(summarize(&bs)),
    ]);
    rows.push(vec![
        "sampling (MargPS, full eps on one piece)".to_string(),
        fmt_summary(summarize(&samp)),
    ]);
    print_table(
        "Ablation 2: budget splitting vs sampling (2-way TVD)",
        &["strategy", "TVD"],
        &rows,
    );
    println!("paper: \"accuracy is improved if we instead sample\" (§3.1)");

    // --- Ablation 3: MargHT with vs without the constant coefficient. ---
    let mut rows = Vec::new();
    let mut informative = Vec::new();
    let mut with_zero = Vec::new();
    for r in 0..reps {
        let seed = 3000 + r as u64;
        let data = DataSource::Taxi.generate(d, n, seed);
        let truth = Truth::new(&data);
        let mech = MargHt::new(d, k, eps);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
        // Ours: every report lands on an informative coefficient.
        let mut agg = mech.aggregator();
        for &row in data.rows() {
            agg.absorb(mech.encode(row, &mut rng));
        }
        let est: MarginalSetEstimate = agg.finish();
        informative.push(truth.mean_kway_tvd(&est, k));
        // Paper-style: users drawing the constant coefficient (prob 2^-k)
        // contribute nothing.
        let mut agg = mech.aggregator();
        for &row in data.rows() {
            if rng.gen_range(0..(1u64 << k)) != 0 {
                agg.absorb(mech.encode(row, &mut rng));
            }
        }
        with_zero.push(truth.mean_kway_tvd(&agg.finish(), k));
    }
    rows.push(vec![
        "nonzero coefficients only (ours)".to_string(),
        fmt_summary(summarize(&informative)),
    ]);
    rows.push(vec![
        "all 2^k coefficients (paper)".to_string(),
        fmt_summary(summarize(&with_zero)),
    ]);
    print_table(
        "Ablation 3: MargHT coefficient sampling (2-way TVD)",
        &["variant", "TVD"],
        &rows,
    );
    println!("expected: small gain from never wasting reports on the known c_0");

    // --- Ablation 4: consistency postprocessing on MargPS tables. ---
    let mut rows = Vec::new();
    let mut raw = Vec::new();
    let mut fixed = Vec::new();
    for r in 0..reps {
        let seed = 4000 + r as u64;
        let data = DataSource::Taxi.generate(d, n, seed);
        let truth = Truth::new(&data);
        let est = MechanismKind::MargPs
            .build(d, k, eps)
            .run(data.rows(), seed);
        let ldp_core::Estimate::MarginalSet(set) = est else {
            unreachable!()
        };
        raw.push(truth.mean_kway_tvd(&set, k));
        fixed.push(truth.mean_kway_tvd(&consistency::make_consistent(&set), k));
    }
    rows.push(vec![
        "independent tables (raw)".to_string(),
        fmt_summary(summarize(&raw)),
    ]);
    rows.push(vec![
        "coefficient-pooled (Barak-style consistency)".to_string(),
        fmt_summary(summarize(&fixed)),
    ]);
    print_table(
        "Ablation 4: consistency postprocessing on MargPS (2-way TVD)",
        &["variant", "TVD"],
        &rows,
    );
    println!("expected: pooling shared coefficients reduces variance at zero privacy cost");
}
