#![forbid(unsafe_code)]
//! Sharded-runner scaling experiment: serial vs `run_sharded` wall time
//! on a large synthetic population, with bit-identity verification.
//!
//! ```text
//! cargo run --release -p ldp_bench --bin sharding_speedup [n] [shards]
//! ```
//!
//! Defaults: n = 1,000,000 taxi users, shards = 8. Prints per-mechanism
//! serial and sharded wall times, the speedup, and verifies the two
//! estimates are bit-identical before reporting anything. The speedup
//! ceiling is `min(shards, cores)`: shards are embarrassingly parallel
//! and merged in O(state) at the end, so on a single-core machine the
//! interesting number is the *overhead* (sharded/serial ≈ 1.0).

use ldp_bench::DataSource;
use ldp_core::MechanismKind;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map_or(1_000_000, |a| a.parse().expect("n must be an integer"));
    let shards: usize = args
        .next()
        .map_or(8, |a| a.parse().expect("shards must be an integer"));
    let (d, k, eps, seed) = (8u32, 2u32, 1.1f64, 42u64);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("population n = {n}, d = {d}, k = {k}, eps = {eps}");
    println!("shards = {shards}, available cores = {cores}");
    println!();

    let data = DataSource::Taxi.generate(d, n, seed);

    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}  identical",
        "", "serial", "sharded", "speedup"
    );
    for kind in [
        MechanismKind::InpPs,
        MechanismKind::InpHt,
        MechanismKind::MargRr,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
    ] {
        let mechanism = kind.build(d, k, eps);

        // Explicit 1-shard baseline: `run` itself auto-shards across
        // the available cores.
        let t0 = Instant::now();
        let serial = mechanism.run_sharded(data.rows(), seed, 1);
        let t_serial = t0.elapsed();

        let t0 = Instant::now();
        let sharded = mechanism.run_sharded(data.rows(), seed, shards);
        let t_sharded = t0.elapsed();

        let identical = serial == sharded;
        println!(
            "{:>8}  {:>10.1?}  {:>10.1?}  {:>7.2}x  {}",
            kind.name(),
            t_serial,
            t_sharded,
            t_serial.as_secs_f64() / t_sharded.as_secs_f64(),
            identical,
        );
        assert!(
            identical,
            "{} diverged between serial and sharded",
            kind.name()
        );
    }
}
