//! HDR-style log-bucketed latency histogram for the load generator.
//!
//! Values (nanoseconds) below 32 land in exact unit buckets; above
//! that, each power-of-two octave is split into 16 sub-buckets, so any
//! recorded value is attributed to a bucket whose upper bound is within
//! ~6.25% of it — constant relative error across the full range, like
//! HdrHistogram, with a fixed ~1 KiB footprint and O(1) `record`.
//! Histograms from concurrent workers merge by bucket-wise addition,
//! so per-thread recording needs no locks.

/// Unit buckets cover `[0, LINEAR)`; log buckets take over above.
const LINEAR: u64 = 32;
/// Sub-buckets per power-of-two octave.
const SUBS: usize = 16;
/// Bucket count covering the full `u64` range.
const BUCKETS: usize = LINEAR as usize + (64 - 5) * SUBS;

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds by
/// convention).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // ≥ 5
        let shift = msb - 4;
        let sub = ((v >> shift) & 15) as usize;
        LINEAR as usize + ((msb - 5) * SUBS) + sub
        // msb = 5 (v ∈ [32, 64)) starts right after the unit buckets;
        // sub-bucket width doubles with each octave.
    }
}

/// Inclusive upper bound of a bucket — the value reported for any
/// quantile that lands in it (≤ 6.25% above the true sample).
fn bucket_upper(index: usize) -> u64 {
    if (index as u64) < LINEAR {
        index as u64
    } else {
        let li = index - LINEAR as usize;
        let octave = li / SUBS; // msb - 5
        let sub = (li % SUBS) as u64;
        ((16 + sub + 1) << (octave + 1)) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0u64; BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v).min(BUCKETS - 1);
        if let Some(slot) = self.counts.get_mut(i) {
            *slot += 1;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += u128::from(v);
    }

    /// Fold another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact, not bucketized).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest sample — within ~6.25% above
    /// the true order statistic. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report beyond the observed maximum (the top
                // bucket's bound can overshoot it).
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending order.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    /// The histogram as a JSON object (nanosecond units), embedding the
    /// standard quantiles and the non-empty buckets:
    /// `{"count": …, "min_ns": …, "max_ns": …, "mean_ns": …,
    ///   "p50_ns": …, "p90_ns": …, "p99_ns": …, "p999_ns": …,
    ///   "buckets": [{"le_ns": …, "count": …}, …]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let buckets = self
            .buckets()
            .iter()
            .map(|(le, c)| format!("{{\"le_ns\": {le}, \"count\": {c}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"count\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"buckets\": [{buckets}]}}",
            self.count(),
            self.min(),
            self.max(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// One human-readable summary line: count, min/mean/max and the
    /// standard quantiles, with adaptive time units.
    #[must_use]
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label}: count={} min={} mean={} p50={} p90={} p99={} p99.9={} max={}",
            self.count(),
            fmt_ns(self.min()),
            fmt_ns(self.mean() as u64),
            fmt_ns(self.quantile(0.50)),
            fmt_ns(self.quantile(0.90)),
            fmt_ns(self.quantile(0.99)),
            fmt_ns(self.quantile(0.999)),
            fmt_ns(self.max()),
        )
    }
}

/// Format nanoseconds with an adaptive unit.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut last = None;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            if let Some(l) = last {
                assert!(i == l || i == l + 1, "index jumped {l} -> {i} at {v}");
            }
            assert!(v <= bucket_upper(i), "v={v} above its bucket bound");
            last = Some(i);
        }
        // Spot-check the huge range too.
        for shift in 20..63 {
            let v = 1u64 << shift;
            assert!(v <= bucket_upper(bucket_index(v)));
        }
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<u64> = (0..10_000u64).map(|i| 1_000 + i * 137).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            let truth = samples[idx] as f64;
            let est = h.quantile(q) as f64;
            assert!(est >= truth, "q={q}: {est} < {truth}");
            assert!(est <= truth * 1.0701, "q={q}: {est} vs {truth}");
        }
    }

    #[test]
    fn exact_below_linear_threshold() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 0..5_000u64 {
            let v = 10 + i * 31;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.to_json().contains("\"count\": 0"));
    }

    #[test]
    fn json_shape_and_total() {
        let mut h = LogHistogram::new();
        for v in [1_000u64, 2_000, 3_000_000] {
            h.record(v);
        }
        let json = h.to_json();
        for key in [
            "\"count\": 3",
            "\"min_ns\"",
            "\"max_ns\"",
            "\"mean_ns\"",
            "\"p50_ns\"",
            "\"p999_ns\"",
            "\"buckets\"",
            "\"le_ns\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let total: u64 = h.buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn render_uses_adaptive_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
        let mut h = LogHistogram::new();
        h.record(2_000_000);
        let line = h.render("ack latency");
        assert!(line.starts_with("ack latency: count=1"), "{line}");
        assert!(line.contains("p99"), "{line}");
    }
}
