//! Criterion microbenchmarks for the transform substrate: FWHT scaling,
//! marginal reconstruction from coefficients (Lemma 3.7), and the direct
//! marginal operator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldp_bits::Mask;
use ldp_transform::{fwht, marginal_from_coefficients, marginalize, scaled_coefficients};
use std::hint::black_box;

fn fwht_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht");
    for d in [8u32, 12, 16, 20] {
        let n = 1usize << d;
        group.throughput(Throughput::Elements(n as u64));
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{d}")),
            &data,
            |b, x| {
                b.iter(|| {
                    let mut y = x.clone();
                    fwht(&mut y);
                    black_box(y)
                });
            },
        );
    }
    group.finish();
}

fn reconstruction(c: &mut Criterion) {
    let d = 16u32;
    let n = 1usize << d;
    let raw: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let total: f64 = raw.iter().sum();
    let dist: Vec<f64> = raw.iter().map(|v| v / total).collect();
    let coeffs = scaled_coefficients(&dist);
    let beta = Mask::new(0b0000_0101_0001_0000);

    c.bench_function("marginal_from_coefficients_d16_k3", |b| {
        b.iter(|| {
            black_box(marginal_from_coefficients(black_box(beta), |a| {
                coeffs[a.bits() as usize]
            }))
        });
    });
    c.bench_function("marginalize_direct_d16_k3", |b| {
        b.iter(|| black_box(marginalize(black_box(&dist), d, beta)));
    });
}

criterion_group!(benches, fwht_scaling, reconstruction);
criterion_main!(benches);
