//! Criterion timing ablations for design choices called out in
//! `DESIGN.md` §5: InpHT encode cost vs coefficient-set size, the
//! binomial sampler's two regimes, and EM decode cost vs convergence
//! threshold. (Accuracy ablations are the `ablations` *binary*.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_bench::DataSource;
use ldp_core::{InpEm, InpHt};
use ldp_sampling::binomial;
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn inpht_encode_vs_coefficient_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("inpht_encode_coeff_set");
    let mut rng = SmallRng::seed_from_u64(3);
    for (d, k) in [(8u32, 2u32), (16, 2), (16, 3), (24, 3)] {
        let mech = InpHt::new(d, k, 1.1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d}_k{k}_T{}", mech.coefficient_count())),
            &mech,
            |b, m| b.iter(|| black_box(m.encode(black_box(5), &mut rng))),
        );
    }
    group.finish();
}

fn binomial_regimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sampler");
    let mut rng = SmallRng::seed_from_u64(4);
    // Inversion regime (np < 10) vs BTPE rejection regime.
    group.bench_function("binv_n1e3_p0.005", |b| {
        b.iter(|| black_box(binomial(&mut rng, 1_000, 0.005)));
    });
    group.bench_function("btpe_n1e5_p0.4", |b| {
        b.iter(|| black_box(binomial(&mut rng, 100_000, 0.4)));
    });
    group.bench_function("btpe_n1e8_p0.37", |b| {
        b.iter(|| black_box(binomial(&mut rng, 100_000_000, 0.37)));
    });
    group.finish();
}

fn em_decode_vs_omega(c: &mut Criterion) {
    let data = DataSource::Taxi.generate(8, 1 << 13, 9);
    let beta = ldp_bits::Mask::from_attrs(&[1, 2]);
    let mut group = c.benchmark_group("em_decode_omega");
    group.sample_size(10);
    for omega in [1e-4f64, 1e-5, 1e-6] {
        let mech = InpEm::with_convergence(8, 1.1, omega, 200_000);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut agg = mech.aggregator();
        for &row in data.rows() {
            agg.absorb(mech.encode(row, &mut rng));
        }
        let est = agg.finish();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("omega_{omega:e}")),
            &est,
            |b, e| b.iter(|| black_box(e.decode(black_box(beta)))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    inpht_encode_vs_coefficient_set,
    binomial_regimes,
    em_decode_vs_omega
);
criterion_main!(benches);
