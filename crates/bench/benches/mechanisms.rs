//! Criterion microbenchmarks: per-user encode cost and end-to-end
//! pipeline cost for each mechanism — the operational counterpart to
//! Table 2's communication column (client time is proportional to
//! message size; §4's "time cost is linear in the size of the
//! communication").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldp_bench::DataSource;
use ldp_core::{InpEm, InpHt, InpPs, InpRr, MargHt, MargPs, MargRr, MechanismKind};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn encode_per_user(c: &mut Criterion) {
    let (d, k, eps) = (8u32, 2u32, 1.1f64);
    let mut group = c.benchmark_group("encode_per_user_d8_k2");
    group.throughput(Throughput::Elements(1));

    let row = 0b1010_0110u64;
    let mut rng = SmallRng::seed_from_u64(1);

    let inp_rr = InpRr::new(d, eps);
    group.bench_function("InpRR", |b| {
        b.iter(|| black_box(inp_rr.encode(black_box(row), &mut rng)));
    });
    let inp_ps = InpPs::new(d, eps);
    group.bench_function("InpPS", |b| {
        b.iter(|| black_box(inp_ps.encode(black_box(row), &mut rng)));
    });
    let inp_ht = InpHt::new(d, k, eps);
    group.bench_function("InpHT", |b| {
        b.iter(|| black_box(inp_ht.encode(black_box(row), &mut rng)));
    });
    let marg_rr = MargRr::new(d, k, eps);
    group.bench_function("MargRR", |b| {
        b.iter(|| black_box(marg_rr.encode(black_box(row), &mut rng)));
    });
    let marg_ps = MargPs::new(d, k, eps);
    group.bench_function("MargPS", |b| {
        b.iter(|| black_box(marg_ps.encode(black_box(row), &mut rng)));
    });
    let marg_ht = MargHt::new(d, k, eps);
    group.bench_function("MargHT", |b| {
        b.iter(|| black_box(marg_ht.encode(black_box(row), &mut rng)));
    });
    let inp_em = InpEm::new(d, eps);
    group.bench_function("InpEM", |b| {
        b.iter(|| black_box(inp_em.encode(black_box(row), &mut rng)));
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let (d, k, eps) = (8u32, 2u32, 1.1f64);
    let n = 1 << 14;
    let data = DataSource::Taxi.generate(d, n, 42);
    let mut group = c.benchmark_group("pipeline_d8_k2_n16k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for kind in MechanismKind::SIX {
        let mech = kind.build(d, k, eps);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &mech, |b, m| {
            b.iter(|| black_box(m.run(data.rows(), 7)));
        });
    }
    group.finish();
}

fn em_decode(c: &mut Criterion) {
    let (d, eps) = (8u32, 1.1f64);
    let data = DataSource::Taxi.generate(d, 1 << 13, 5);
    let mech = MechanismKind::InpEm.build(d, 2, eps);
    let est = mech.run(data.rows(), 11);
    let ldp_core::Estimate::Em(em) = est else {
        unreachable!()
    };
    let beta = ldp_bits::Mask::from_attrs(&[1, 2]);
    c.bench_function("inp_em_decode_one_2way", |b| {
        b.iter(|| black_box(em.decode(black_box(beta))));
    });
}

criterion_group!(benches, encode_per_user, end_to_end, em_decode);
criterion_main!(benches);
