//! Tree-structured Bayesian models from pairwise marginals (§6.2).
//!
//! Once a Chow–Liu tree topology is learnt, "any high dimensional joint
//! distribution of interest can be learnt by multiplying conditional
//! probabilities that can \[be\] found using marginals" — this module
//! implements that final step: conditional probability tables (CPTs) are
//! extracted from the (private) 2-way marginals along tree edges, giving
//! a generative model `P(x) = P(x_root) · Π_i P(x_i | x_parent(i))` that
//! supports exact joint queries and sampling.

use crate::chowliu::Edge;
use rand::Rng;

/// A fitted tree-structured model over `d` binary attributes.
#[derive(Clone, Debug)]
pub struct TreeModel {
    d: u32,
    /// Attributes in sampling order (parents before children).
    order: Vec<u32>,
    /// `parent[i]` for non-root attributes.
    parent: Vec<Option<u32>>,
    /// `P(attr = 1)` for the root(s) of each tree component.
    root_p1: Vec<f64>,
    /// `cpt[i][pv]` = `P(attr i = 1 | parent = pv)`; unused for roots.
    cpt: Vec<[f64; 2]>,
}

impl TreeModel {
    /// Fit CPTs from pairwise marginals along the edges of a (spanning)
    /// tree or forest.
    ///
    /// `pair_marginal(a, b)` (called with `a < b`) must return the 2×2
    /// joint table of `(a, b)` with local bit 0 = `a`, bit 1 = `b` — the
    /// exact layout `MarginalEstimator::marginal(Mask::from_attrs(&[a,b]))`
    /// produces. Noisy tables are clamped and renormalized.
    pub fn fit(
        d: u32,
        edges: &[Edge],
        mut pair_marginal: impl FnMut(u32, u32) -> Vec<f64>,
    ) -> Self {
        assert!((1..=63).contains(&d));
        // Adjacency with the (clamped) joint stored per edge.
        let mut adj: Vec<Vec<(u32, [f64; 4])>> = vec![Vec::new(); d as usize];
        for e in edges {
            assert!(e.a < d && e.b < d && e.a != e.b, "invalid edge");
            let (lo, hi) = (e.a.min(e.b), e.a.max(e.b));
            let raw = pair_marginal(lo, hi);
            assert_eq!(raw.len(), 4, "pair marginal must be a 2x2 table");
            let mut t = [0.0f64; 4];
            let mut total = 0.0;
            for (slot, &v) in t.iter_mut().zip(&raw) {
                *slot = v.max(1e-12);
                total += *slot;
            }
            t.iter_mut().for_each(|v| *v /= total);
            adj[lo as usize].push((hi, t));
            // Transposed view for traversal from `hi`: bit0 must be the
            // traversal child... store the canonical table and transpose
            // on use instead.
            adj[hi as usize].push((lo, t));
        }

        let mut order = Vec::with_capacity(d as usize);
        let mut parent = vec![None; d as usize];
        let mut root_p1 = Vec::new();
        let mut cpt = vec![[0.5, 0.5]; d as usize];
        let mut visited = vec![false; d as usize];

        for start in 0..d {
            if visited[start as usize] {
                continue;
            }
            // New component rooted at `start`: P(root=1) from any incident
            // edge's marginal, or 0.5 for isolated attributes.
            visited[start as usize] = true;
            order.push(start);
            let p1 = adj[start as usize]
                .first()
                .map_or(0.5, |(other, t)| marginal_of(t, start < *other).1);
            root_p1.push(p1);

            // BFS.
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &(v, t) in &adj[u as usize] {
                    if visited[v as usize] {
                        continue;
                    }
                    visited[v as usize] = true;
                    parent[v as usize] = Some(u);
                    // t is canonical (bit0 = min(u,v)). We need
                    // P(v = 1 | u = pv).
                    let child_is_bit0 = v < u;
                    for pv in 0..2usize {
                        let (joint1, parent_mass) = if child_is_bit0 {
                            // bit0 = v (child), bit1 = u (parent).
                            (t[0b01 | (pv << 1)], t[pv << 1] + t[0b01 | (pv << 1)])
                        } else {
                            // bit0 = u (parent), bit1 = v (child).
                            (t[pv | 0b10], t[pv] + t[pv | 0b10])
                        };
                        cpt[v as usize][pv] = if parent_mass > 0.0 {
                            (joint1 / parent_mass).clamp(0.0, 1.0)
                        } else {
                            0.5
                        };
                    }
                    order.push(v);
                    queue.push_back(v);
                }
            }
        }
        TreeModel {
            d,
            order,
            parent,
            root_p1,
            cpt,
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The exact model probability of a full assignment.
    #[must_use]
    pub fn joint_prob(&self, row: u64) -> f64 {
        let mut p = 1.0;
        let mut root_idx = 0usize;
        for &attr in &self.order {
            let bit = (row >> attr) & 1;
            match self.parent[attr as usize] {
                None => {
                    let p1 = self.root_p1[root_idx];
                    root_idx += 1;
                    p *= if bit == 1 { p1 } else { 1.0 - p1 };
                }
                Some(par) => {
                    let pv = ((row >> par) & 1) as usize;
                    let p1 = self.cpt[attr as usize][pv];
                    p *= if bit == 1 { p1 } else { 1.0 - p1 };
                }
            }
        }
        p
    }

    /// The model's full distribution (enumeration; `d ≤ 20`).
    #[must_use]
    pub fn full_distribution(&self) -> Vec<f64> {
        assert!(self.d <= 20, "enumeration limited to d ≤ 20");
        (0..(1u64 << self.d))
            .map(|row| self.joint_prob(row))
            .collect()
    }

    /// Draw one record from the model.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut row = 0u64;
        let mut root_idx = 0usize;
        for &attr in &self.order {
            let p1 = match self.parent[attr as usize] {
                None => {
                    let p = self.root_p1[root_idx];
                    root_idx += 1;
                    p
                }
                Some(par) => self.cpt[attr as usize][((row >> par) & 1) as usize],
            };
            if rng.gen_bool(p1.clamp(0.0, 1.0)) {
                row |= 1u64 << attr;
            }
        }
        row
    }

    /// Average log-likelihood (nats per record) of a dataset under the
    /// model — the §6.2 measure of how well the tree approximates the
    /// joint distribution.
    #[must_use]
    pub fn mean_log_likelihood(&self, rows: &[u64]) -> f64 {
        assert!(!rows.is_empty());
        rows.iter()
            .map(|&r| self.joint_prob(r).max(1e-300).ln())
            .sum::<f64>()
            / rows.len() as f64
    }
}

fn marginal_of(t: &[f64; 4], attr_is_bit0: bool) -> (f64, f64) {
    // Returns (P(attr=0), P(attr=1)) from a canonical 2x2 table.
    if attr_is_bit0 {
        (t[0b00] + t[0b10], t[0b01] + t[0b11])
    } else {
        (t[0b00] + t[0b01], t[0b10] + t[0b11])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chowliu::maximum_spanning_tree;
    use crate::mi::mutual_information_2x2;
    use rand::{rngs::StdRng, SeedableRng};

    /// A Markov-chain population 0 → 1 → 2 with strong dependence.
    fn chain_rows(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let b0 = u64::from(rng.gen_bool(0.6));
                let b1 = u64::from(rng.gen_bool(if b0 == 1 { 0.8 } else { 0.2 }));
                let b2 = u64::from(rng.gen_bool(if b1 == 1 { 0.9 } else { 0.3 }));
                b0 | (b1 << 1) | (b2 << 2)
            })
            .collect()
    }

    fn empirical(rows: &[u64], d: u32) -> Vec<f64> {
        let mut t = vec![0.0; 1 << d];
        for &r in rows {
            t[r as usize] += 1.0;
        }
        t.iter_mut().for_each(|v| *v /= rows.len() as f64);
        t
    }

    fn pair_from(rows: &[u64]) -> impl FnMut(u32, u32) -> Vec<f64> + '_ {
        move |a, b| {
            let mut t = vec![0.0; 4];
            for &r in rows {
                let cell = (((r >> a) & 1) | (((r >> b) & 1) << 1)) as usize;
                t[cell] += 1.0;
            }
            t.iter_mut().for_each(|v| *v /= rows.len() as f64);
            t
        }
    }

    #[test]
    fn recovers_tree_structured_distribution() {
        let rows = chain_rows(200_000, 1);
        let mut pair = pair_from(&rows);
        // Chow–Liu on exact MI finds the chain; fit CPTs from marginals.
        let tree = maximum_spanning_tree(3, |a, b| mutual_information_2x2(&pair(a, b)));
        let model = TreeModel::fit(3, &tree, pair_from(&rows));
        let model_dist = model.full_distribution();
        let emp = empirical(&rows, 3);
        let tvd: f64 = model_dist
            .iter()
            .zip(&emp)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tvd < 0.01, "model vs empirical TVD {tvd}");
    }

    #[test]
    fn model_distribution_is_normalized() {
        let rows = chain_rows(50_000, 2);
        let tree = maximum_spanning_tree(3, |a, b| mutual_information_2x2(&pair_from(&rows)(a, b)));
        let model = TreeModel::fit(3, &tree, pair_from(&rows));
        let total: f64 = model.full_distribution().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_model() {
        let rows = chain_rows(100_000, 3);
        let tree = maximum_spanning_tree(3, |a, b| mutual_information_2x2(&pair_from(&rows)(a, b)));
        let model = TreeModel::fit(3, &tree, pair_from(&rows));
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<u64> = (0..200_000).map(|_| model.sample(&mut rng)).collect();
        let emp = empirical(&samples, 3);
        let dist = model.full_distribution();
        for (cell, (a, b)) in emp.iter().zip(&dist).enumerate() {
            assert!((a - b).abs() < 0.01, "cell {cell}: {a} vs {b}");
        }
    }

    #[test]
    fn forest_with_isolated_attribute() {
        // Two attributes connected, one isolated: the model treats the
        // isolated one as an independent fair coin (no marginal info).
        let rows = chain_rows(50_000, 5);
        let edges = [Edge {
            a: 0,
            b: 1,
            weight: 1.0,
        }];
        let model = TreeModel::fit(3, &edges, pair_from(&rows));
        let dist = model.full_distribution();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Attribute 2 is 50/50 in the model.
        let p2: f64 = (0..8u64)
            .filter(|r| (r >> 2) & 1 == 1)
            .map(|r| dist[r as usize])
            .sum();
        assert!((p2 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn higher_likelihood_than_independence_on_dependent_data() {
        let rows = chain_rows(100_000, 6);
        let mut pair = pair_from(&rows);
        let tree = maximum_spanning_tree(3, |a, b| mutual_information_2x2(&pair(a, b)));
        let chain_model = TreeModel::fit(3, &tree, pair_from(&rows));
        let indep_model = TreeModel::fit(3, &[], pair_from(&rows));
        let ll_tree = chain_model.mean_log_likelihood(&rows);
        let ll_indep = indep_model.mean_log_likelihood(&rows);
        assert!(ll_tree > ll_indep + 0.05, "{ll_tree} vs {ll_indep}");
    }

    #[test]
    fn handles_noisy_marginals() {
        // Negative cells (privacy noise) are clamped, model stays valid.
        let edges = [Edge {
            a: 0,
            b: 1,
            weight: 1.0,
        }];
        let model = TreeModel::fit(2, &edges, |_, _| vec![0.6, -0.05, 0.25, 0.2]);
        let dist = model.full_distribution();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(dist.iter().all(|v| *v >= 0.0));
    }
}
