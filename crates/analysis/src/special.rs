//! Special functions: ln-gamma and the regularized incomplete gamma
//! function, sufficient for exact χ² tail probabilities and quantiles.

/// Natural log of the gamma function (Lanczos approximation, g = 7,
/// n = 9; |relative error| < 1e-13 for positive arguments).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes style). Accurate to ~1e-12.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "need a > 0, x ≥ 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{−x} x^a / Γ(a) Σ_{n≥0} x^n / (a(a+1)…(a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Continued fraction for `Q(a, x)`, valid for `x ≥ a + 1` (modified
/// Lentz's method).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -f64::from(i) * (f64::from(i) - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Survival function of the χ² distribution with `df` degrees of freedom:
/// `Pr[X > x] = Q(df/2, x/2)`.
#[must_use]
pub fn chi2_sf(x: f64, df: u32) -> f64 {
    assert!(df >= 1);
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(f64::from(df) / 2.0, x / 2.0)
}

/// Quantile (inverse survival): the critical value `c` with
/// `Pr[X > c] = alpha` for the χ² distribution with `df` degrees of
/// freedom — e.g. `chi2_critical(0.05, 1) ≈ 3.841` (Figure 7's line).
#[must_use]
pub fn chi2_critical(alpha: f64, df: u32) -> f64 {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0);
    // Bisection on the survival function (monotone decreasing).
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while chi2_sf(hi, df) > alpha {
        hi *= 2.0;
        if hi > 1e9 {
            return f64::INFINITY;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_sf(mid, df) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-11);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for a in [0.5, 1.0, 2.5, 10.0, 50.0] {
            for x in [0.1, 1.0, 3.0, 10.0, 60.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-10, "a={a} x={x}: {s}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 0.5, 2.0, 5.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn chi2_reference_values() {
        // Standard table values.
        assert!((chi2_critical(0.05, 1) - 3.841).abs() < 0.01);
        assert!((chi2_critical(0.05, 3) - 7.815).abs() < 0.01);
        assert!((chi2_critical(0.01, 1) - 6.635).abs() < 0.01);
        assert!((chi2_critical(0.001, 4) - 18.467).abs() < 0.01);
        // Survival at the critical value returns alpha.
        let c = chi2_critical(0.05, 2);
        assert!((chi2_sf(c, 2) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn chi2_sf_monotone() {
        let mut prev = 1.0;
        for i in 1..100 {
            let x = f64::from(i) * 0.5;
            let s = chi2_sf(x, 3);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }
}
