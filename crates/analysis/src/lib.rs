#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Statistical analysis on reconstructed marginals (§6 of the paper).
//!
//! * [`chi2`] — the χ² test of independence run on (private) 2-way
//!   marginal tables, with exact critical values computed from the
//!   regularized incomplete gamma function (Figure 7);
//! * [`mi`] — mutual information between attribute pairs from 2-way
//!   marginals;
//! * [`chowliu`] — the Chow–Liu maximum-spanning-tree approximation of
//!   the joint distribution (Figure 8);
//! * [`treemodel`] — conditional-probability-table models over a fitted
//!   tree: exact joint queries, sampling, likelihood (completing §6.2's
//!   "multiplying conditional probabilities" step);
//! * [`special`] — ln-gamma and incomplete-gamma special functions
//!   (implemented here; no external math dependency).

pub mod chi2;
pub mod chowliu;
pub mod mi;
pub mod special;
pub mod treemodel;
