//! Chow–Liu dependency trees (§6.2).
//!
//! Chow & Liu (1968): the best tree-structured approximation of a joint
//! distribution (in KL divergence) is the maximum-weight spanning tree of
//! the complete graph whose edge weights are pairwise mutual informations.
//! The paper fits trees from privately-estimated 2-way marginals and
//! compares the **true** total MI of the selected edges against the
//! non-private tree (Figure 8).

/// An undirected weighted edge between two attributes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// First attribute.
    pub a: u32,
    /// Second attribute.
    pub b: u32,
    /// Edge weight (mutual information).
    pub weight: f64,
}

/// Disjoint-set union (union-find) with path halving and union by size.
#[derive(Clone, Debug)]
pub struct DisjointSet {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSet {
    /// `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// The maximum-weight spanning tree over `d` nodes given all pairwise
/// weights (Kruskal). Returns the `d − 1` chosen edges, sorted by
/// decreasing weight. `weights(a, b)` is queried once per unordered pair.
pub fn maximum_spanning_tree(d: u32, mut weights: impl FnMut(u32, u32) -> f64) -> Vec<Edge> {
    assert!(d >= 1);
    let mut edges = Vec::with_capacity((d as usize * (d as usize - 1)) / 2);
    for a in 0..d {
        for b in (a + 1)..d {
            edges.push(Edge {
                a,
                b,
                weight: weights(a, b),
            });
        }
    }
    edges.sort_by(|x, y| y.weight.total_cmp(&x.weight));
    let mut dsu = DisjointSet::new(d as usize);
    let mut tree = Vec::with_capacity(d as usize - 1);
    for e in edges {
        if dsu.union(e.a, e.b) {
            tree.push(e);
            if tree.len() == d as usize - 1 {
                break;
            }
        }
    }
    tree
}

/// The Chow–Liu objective: total weight of a tree's edges.
#[must_use]
pub fn total_weight(tree: &[Edge]) -> f64 {
    tree.iter().map(|e| e.weight).sum()
}

/// Re-weight a tree's edges with a different weight function (e.g. score
/// a privately-learnt topology by **true** mutual information, as
/// Figure 8 does).
pub fn reweigh(tree: &[Edge], mut weights: impl FnMut(u32, u32) -> f64) -> Vec<Edge> {
    tree.iter()
        .map(|e| Edge {
            a: e.a,
            b: e.b,
            weight: weights(e.a, e.b),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsu_basics() {
        let mut dsu = DisjointSet::new(4);
        assert!(dsu.union(0, 1));
        assert!(!dsu.union(1, 0));
        assert!(dsu.union(2, 3));
        assert_ne!(dsu.find(0), dsu.find(2));
        assert!(dsu.union(0, 3));
        assert_eq!(dsu.find(1), dsu.find(2));
    }

    #[test]
    fn tree_has_d_minus_1_edges_and_spans() {
        let tree = maximum_spanning_tree(6, |a, b| f64::from((a * 7 + b * 13) % 11));
        assert_eq!(tree.len(), 5);
        let mut dsu = DisjointSet::new(6);
        for e in &tree {
            assert!(dsu.union(e.a, e.b), "tree contains a cycle");
        }
    }

    #[test]
    fn picks_heaviest_edges_on_a_triangle() {
        // Weights: (0,1)=3, (0,2)=2, (1,2)=1 → tree must be {(0,1),(0,2)}.
        let tree = maximum_spanning_tree(3, |a, b| match (a, b) {
            (0, 1) => 3.0,
            (0, 2) => 2.0,
            (1, 2) => 1.0,
            _ => unreachable!(),
        });
        assert_eq!(total_weight(&tree), 5.0);
        assert!(tree.iter().any(|e| (e.a, e.b) == (0, 1)));
        assert!(tree.iter().any(|e| (e.a, e.b) == (0, 2)));
    }

    #[test]
    fn chain_structure_recovered() {
        // A Markov chain 0–1–2–3 has MI(i, i+1) largest; MI decays with
        // distance. The Chow–Liu tree must be the chain itself.
        let mi = |a: u32, b: u32| 1.0 / f64::from(a.abs_diff(b));
        let tree = maximum_spanning_tree(4, mi);
        let mut pairs: Vec<(u32, u32)> = tree.iter().map(|e| (e.a, e.b)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn reweigh_keeps_topology() {
        let tree = maximum_spanning_tree(4, |a, b| f64::from(a + b));
        let rescored = reweigh(&tree, |_, _| 1.0);
        assert_eq!(rescored.len(), tree.len());
        assert_eq!(total_weight(&rescored), 3.0);
        for (e1, e2) in tree.iter().zip(&rescored) {
            assert_eq!((e1.a, e1.b), (e2.a, e2.b));
        }
    }

    #[test]
    fn single_node_tree_is_empty() {
        assert!(maximum_spanning_tree(1, |_, _| 0.0).is_empty());
    }
}
