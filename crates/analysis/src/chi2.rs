//! χ² test of independence on 2-way marginal tables (§6.1).
//!
//! For a 2-way marginal `m` over attributes `(A, B)` computed from `N`
//! users, the statistic is `Σ_j (O_j − E_j)² / E_j` where `O_j = N·m[j]`
//! and `E_j` is the expected count under independence (the product of the
//! row and column sums). With binary attributes the table has 1 degree of
//! freedom; the test rejects independence at confidence `1 − α` when the
//! statistic exceeds [`crate::special::chi2_critical`]`(α, 1)`.

use crate::special::{chi2_critical, chi2_sf};

/// Result of one independence test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Chi2Result {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom `(rows − 1)(cols − 1)`.
    pub df: u32,
    /// The tail probability `Pr[X > statistic]`.
    pub p_value: f64,
}

impl Chi2Result {
    /// Does the test reject independence at significance level `alpha`?
    #[must_use]
    pub fn rejects_independence(&self, alpha: f64) -> bool {
        self.statistic > chi2_critical(alpha, self.df)
    }
}

/// χ² independence test on a 2×2 marginal table (locally indexed: bit 0 =
/// first attribute, bit 1 = second), given the population size `n`.
///
/// Noisy marginals may contain small negative entries; they are clamped
/// and the table renormalized before testing (standard postprocessing).
#[must_use]
pub fn chi2_independence_2x2(marginal: &[f64], n: f64) -> Chi2Result {
    assert_eq!(marginal.len(), 4, "expected a 2×2 marginal table");
    assert!(n > 0.0);
    // Clamp and renormalize.
    let mut p: Vec<f64> = marginal.iter().map(|v| v.max(0.0)).collect();
    let total: f64 = p.iter().sum();
    if total > 0.0 {
        p.iter_mut().for_each(|v| *v /= total);
    } else {
        p = vec![0.25; 4];
    }
    // Margins: a = P(bit0 = 1), b = P(bit1 = 1).
    let a1 = p[0b01] + p[0b11];
    let b1 = p[0b10] + p[0b11];
    let expected = [
        (1.0 - a1) * (1.0 - b1),
        a1 * (1.0 - b1),
        (1.0 - a1) * b1,
        a1 * b1,
    ];
    let mut stat = 0.0;
    for j in 0..4 {
        let e = expected[j] * n;
        if e > 0.0 {
            let o = p[j] * n;
            stat += (o - e) * (o - e) / e;
        }
    }
    Chi2Result {
        statistic: stat,
        df: 1,
        p_value: chi2_sf(stat, 1),
    }
}

/// General r×c independence test on a two-attribute categorical marginal,
/// indexed `cell = i + r·j` (first attribute fastest).
#[must_use]
pub fn chi2_independence(table: &[f64], r: usize, c: usize, n: f64) -> Chi2Result {
    assert_eq!(table.len(), r * c);
    assert!(r >= 2 && c >= 2 && n > 0.0);
    let mut p: Vec<f64> = table.iter().map(|v| v.max(0.0)).collect();
    let total: f64 = p.iter().sum();
    if total > 0.0 {
        p.iter_mut().for_each(|v| *v /= total);
    } else {
        p = vec![1.0 / (r * c) as f64; r * c];
    }
    let mut row = vec![0.0; r];
    let mut col = vec![0.0; c];
    for j in 0..c {
        for i in 0..r {
            row[i] += p[i + r * j];
            col[j] += p[i + r * j];
        }
    }
    let mut stat = 0.0;
    for j in 0..c {
        for i in 0..r {
            let e = row[i] * col[j] * n;
            if e > 0.0 {
                let o = p[i + r * j] * n;
                stat += (o - e) * (o - e) / e;
            }
        }
    }
    let df = ((r - 1) * (c - 1)) as u32;
    Chi2Result {
        statistic: stat,
        df,
        p_value: chi2_sf(stat, df),
    }
}

/// Noise-aware χ² independence test for privately-estimated 2×2 tables
/// (the robustness fix the paper's footnote 3 leaves as future work,
/// after Gaboardi et al. 2016).
///
/// A marginal estimated under LDP carries additive per-cell noise with
/// (mechanism-dependent) variance `cell_variance`; under the null, the
/// statistic concentrates around `df + N · Σ_j cell_variance / E_j`
/// instead of `df`, so comparing it to the noise-unaware critical value
/// rejects almost always for large `N`. This test inflates the critical
/// value by the expected noise contribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseAwareChi2 {
    /// The raw χ² statistic on the (clamped) private table.
    pub statistic: f64,
    /// The *expected* noise contribution under the null (the rejection
    /// threshold uses its upper quantile, see
    /// [`NoiseAwareChi2::rejects_independence`]).
    pub noise_inflation: f64,
    /// Degrees of freedom.
    pub df: u32,
}

impl NoiseAwareChi2 {
    /// Reject independence at level `alpha`, accounting for the privacy
    /// noise. The noise contribution behaves like a scaled χ² with
    /// (cells − 1 − df) = 3 − df … ≈ 3 effective degrees of freedom for a
    /// 2×2 table, so the threshold uses its (1 − α) quantile rather than
    /// its mean: `critical(α, df) + inflation · critical(α, 3)/3`.
    #[must_use]
    pub fn rejects_independence(&self, alpha: f64) -> bool {
        let noise_quantile = self.noise_inflation * chi2_critical(alpha, 3) / 3.0;
        self.statistic > chi2_critical(alpha, self.df) + noise_quantile
    }
}

/// Run the noise-aware test on a private 2×2 marginal. `cell_variance`
/// is the variance of each reconstructed cell (e.g.
/// `ldp_mechanisms::theory::inpht_cell_variance`).
#[must_use]
pub fn chi2_noise_aware_2x2(marginal: &[f64], n: f64, cell_variance: f64) -> NoiseAwareChi2 {
    assert!(cell_variance >= 0.0);
    let base = chi2_independence_2x2(marginal, n);
    // Expected inflation: E[N Σ (noise_j)² / E_j] = N · σ² · Σ 1/E_j,
    // with the expected-cell probabilities taken from the (clamped)
    // observed margins.
    let mut p: Vec<f64> = marginal.iter().map(|v| v.max(0.0)).collect();
    let total: f64 = p.iter().sum();
    if total > 0.0 {
        p.iter_mut().for_each(|v| *v /= total);
    } else {
        p = vec![0.25; 4];
    }
    let a1 = p[0b01] + p[0b11];
    let b1 = p[0b10] + p[0b11];
    let expected = [
        (1.0 - a1) * (1.0 - b1),
        a1 * (1.0 - b1),
        (1.0 - a1) * b1,
        a1 * b1,
    ];
    let inv_e: f64 = expected.iter().map(|e| 1.0 / e.max(1e-6)).sum();
    NoiseAwareChi2 {
        statistic: base.statistic,
        noise_inflation: n * cell_variance * inv_e,
        df: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_table_accepts() {
        // Product distribution: P(A)=0.3, P(B)=0.6.
        let m = [0.7 * 0.4, 0.3 * 0.4, 0.7 * 0.6, 0.3 * 0.6];
        let r = chi2_independence_2x2(&m, 256_000.0);
        assert!(r.statistic < 1e-6);
        assert!(!r.rejects_independence(0.05));
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn correlated_table_rejects() {
        // Figure 2's M_pick/M_drop joint — strongly dependent.
        let m = [0.20, 0.15, 0.10, 0.55];
        let r = chi2_independence_2x2(&m, 256_000.0);
        assert!(r.rejects_independence(0.05), "stat {}", r.statistic);
        assert!(r.statistic > 1_000.0);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn statistic_scales_linearly_with_n() {
        let m = [0.24, 0.26, 0.26, 0.24];
        let r1 = chi2_independence_2x2(&m, 10_000.0);
        let r2 = chi2_independence_2x2(&m, 40_000.0);
        assert!((r2.statistic / r1.statistic - 4.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_negative_noise() {
        let m = [0.5, -0.02, 0.3, 0.22];
        let r = chi2_independence_2x2(&m, 1000.0);
        assert!(r.statistic.is_finite());
    }

    #[test]
    fn general_matches_2x2() {
        let m = [0.20, 0.15, 0.10, 0.55];
        let a = chi2_independence_2x2(&m, 5000.0);
        let b = chi2_independence(&m, 2, 2, 5000.0);
        assert!((a.statistic - b.statistic).abs() < 1e-9);
        assert_eq!(a.df, b.df);
    }

    #[test]
    fn noise_aware_accepts_independent_noisy_tables() {
        // An independent table plus synthetic noise of known variance:
        // the naive test rejects, the noise-aware one does not. The
        // noise level is large enough that the contrast is a >4 sigma
        // margin on both counters, not a property of one RNG stream.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let n = 262_144.0;
        let sigma = 2e-2;
        let clean = [0.7 * 0.4, 0.3 * 0.4, 0.7 * 0.6, 0.3 * 0.6];
        let mut naive_rejects = 0;
        let mut aware_rejects = 0;
        for _ in 0..40 {
            let noisy: Vec<f64> = clean
                .iter()
                .map(|v| {
                    // Approximate Gaussian noise via CLT of 12 uniforms.
                    let g: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
                    v + sigma * g
                })
                .collect();
            naive_rejects += u32::from(chi2_independence_2x2(&noisy, n).rejects_independence(0.05));
            aware_rejects += u32::from(
                chi2_noise_aware_2x2(&noisy, n, sigma * sigma).rejects_independence(0.05),
            );
        }
        assert!(naive_rejects > 30, "naive should almost always reject");
        assert!(aware_rejects < 8, "noise-aware should rarely reject");
    }

    #[test]
    fn noise_aware_still_rejects_strong_dependence() {
        let m = [0.20, 0.15, 0.10, 0.55];
        let r = chi2_noise_aware_2x2(&m, 262_144.0, 1e-4);
        assert!(r.rejects_independence(0.05));
    }

    #[test]
    fn zero_variance_reduces_to_plain_test() {
        let m = [0.24, 0.26, 0.26, 0.24];
        let aware = chi2_noise_aware_2x2(&m, 10_000.0, 0.0);
        let plain = chi2_independence_2x2(&m, 10_000.0);
        assert_eq!(aware.noise_inflation, 0.0);
        assert!((aware.statistic - plain.statistic).abs() < 1e-12);
    }

    #[test]
    fn general_3x2_runs() {
        // A mildly dependent 3×2 table.
        let t = [0.2, 0.1, 0.1, 0.1, 0.1, 0.4];
        let r = chi2_independence(&t, 3, 2, 10_000.0);
        assert_eq!(r.df, 2);
        assert!(r.rejects_independence(0.05));
    }
}
