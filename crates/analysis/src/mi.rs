//! Mutual information between attribute pairs, from 2-way marginal tables
//! (§6.2):
//!
//! `MI(A, B) = Σ_{i,j} P[A=i, B=j] · log( P[A=i,B=j] / (P[A=i] P[B=j]) )`.

/// Mutual information (in nats) of a 2×2 marginal table (locally indexed:
/// bit 0 = attribute A, bit 1 = attribute B).
///
/// Noisy tables are clamped to `[0,1]` and renormalized first; zero cells
/// contribute zero (the standard `0 log 0 = 0` convention).
#[must_use]
pub fn mutual_information_2x2(marginal: &[f64]) -> f64 {
    assert_eq!(marginal.len(), 4);
    let mut p: Vec<f64> = marginal.iter().map(|v| v.max(0.0)).collect();
    let total: f64 = p.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    p.iter_mut().for_each(|v| *v /= total);
    let a1 = p[0b01] + p[0b11];
    let b1 = p[0b10] + p[0b11];
    let pa = [1.0 - a1, a1];
    let pb = [1.0 - b1, b1];
    let mut mi = 0.0;
    for j in 0..2 {
        for i in 0..2 {
            let joint = p[i | (j << 1)];
            let prod = pa[i] * pb[j];
            if joint > 0.0 && prod > 0.0 {
                mi += joint * (joint / prod).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Mutual information (in nats) of a general r×c joint table indexed
/// `cell = i + r·j`.
#[must_use]
pub fn mutual_information(table: &[f64], r: usize, c: usize) -> f64 {
    assert_eq!(table.len(), r * c);
    let mut p: Vec<f64> = table.iter().map(|v| v.max(0.0)).collect();
    let total: f64 = p.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    p.iter_mut().for_each(|v| *v /= total);
    let mut row = vec![0.0; r];
    let mut col = vec![0.0; c];
    for j in 0..c {
        for i in 0..r {
            row[i] += p[i + r * j];
            col[j] += p[i + r * j];
        }
    }
    let mut mi = 0.0;
    for j in 0..c {
        for i in 0..r {
            let joint = p[i + r * j];
            let prod = row[i] * col[j];
            if joint > 0.0 && prod > 0.0 {
                mi += joint * (joint / prod).ln();
            }
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_attributes_have_zero_mi() {
        let m = [0.7 * 0.4, 0.3 * 0.4, 0.7 * 0.6, 0.3 * 0.6];
        assert!(mutual_information_2x2(&m).abs() < 1e-12);
    }

    #[test]
    fn identical_attributes_have_entropy_mi() {
        // A = B with P(A=1) = 0.5 → MI = H(A) = ln 2.
        let m = [0.5, 0.0, 0.0, 0.5];
        assert!((mutual_information_2x2(&m) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let m = [0.20, 0.15, 0.10, 0.55];
        // Swap A and B: transpose the table.
        let t = [m[0], m[2], m[1], m[3]];
        assert!((mutual_information_2x2(&m) - mutual_information_2x2(&t)).abs() < 1e-12);
    }

    #[test]
    fn mi_nonnegative_on_noisy_tables() {
        let m = [0.5, -0.03, 0.33, 0.2];
        assert!(mutual_information_2x2(&m) >= 0.0);
    }

    #[test]
    fn general_matches_2x2() {
        let m = [0.20, 0.15, 0.10, 0.55];
        let g = mutual_information(&m, 2, 2);
        assert!((g - mutual_information_2x2(&m)).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_min_entropy() {
        // MI(A,B) ≤ min(H(A), H(B)).
        let m = [0.1, 0.3, 0.25, 0.35];
        let mi = mutual_information_2x2(&m);
        let a1: f64 = m[1] + m[3];
        let b1: f64 = m[2] + m[3];
        let h = |p: f64| {
            if p <= 0.0 || p >= 1.0 {
                0.0
            } else {
                -p * p.ln() - (1.0 - p) * (1.0 - p).ln()
            }
        };
        assert!(mi <= h(a1).min(h(b1)) + 1e-12);
    }
}
