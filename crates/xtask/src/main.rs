//! The `ldp-lint` binary: `cargo run -p xtask -- lint` from anywhere
//! in the workspace. Exit status 0 on a clean tree, 1 with one
//! `file:line: [kind] message` block per finding otherwise.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask → the workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = workspace_root();
    let mut command = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "lint" => command = Some("lint"),
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ldp-lint lint [--root <repo>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }
    if command != Some("lint") {
        eprintln!("usage: ldp-lint lint [--root <repo>]");
        return ExitCode::FAILURE;
    }

    let diags = xtask::run_lint(&root);
    if diags.is_empty() {
        eprintln!("ldp-lint: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        eprintln!("{d}");
    }
    eprintln!(
        "ldp-lint: {} finding{} (see docs/WIRE_FORMAT.md §10 and crates/xtask/lint_allowlist.txt)",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
