//! The lossy-cast audit: flag `as u16` / `as u32` / `as usize`
//! narrowing on wire-length and report-index expressions. This is the
//! exact bug class behind the u64 range-compare fix in the batched
//! ingest work: a length or index born as `u64` on the wire, narrowed
//! before it was range-checked, truncates silently on 32-bit targets
//! and turns a corrupt prefix into a wrong-but-plausible value.
//!
//! The heuristic is deliberately name-based: a narrowing cast is only
//! suspect when the line smells like a length/index computation (the
//! `MARKERS` substrings below). Sites that narrow *after* a range
//! check stay, with an
//! explanatory entry in the allowlist.

use crate::{Diagnostic, Kind};

/// Narrowing target types (widening casts are harmless here; `u8`
/// narrowing of lengths does not occur on the wire, which length-
/// prefixes with `u32`/`u64` only).
const NARROW: [&str; 3] = ["u16", "u32", "usize"];

/// Substrings that mark a line as length/index-flavoured.
const MARKERS: [&str; 7] = ["len", "idx", "index", "count", "marginal", "pos", "prefix"];

/// Scan one masked file; append a diagnostic per suspect cast.
pub fn scan(rel: &str, src: &str, masked: &str, out: &mut Vec<Diagnostic>) {
    let src_lines: Vec<&str> = src.lines().collect();
    for (idx, line) in masked.lines().enumerate() {
        let lower = line.to_lowercase();
        if !MARKERS.iter().any(|m| lower.contains(m)) {
            continue;
        }
        for ty in NARROW {
            for pos in find_casts(line, ty) {
                out.push(Diagnostic {
                    file: rel.to_string(),
                    line: idx + 1,
                    kind: Kind::Cast,
                    message: format!(
                        "narrowing `as {ty}` on a length/index expression (column {}); \
                         range-check in u64 space first (see wire.rs checked_len), \
                         or allowlist with the guarding check named",
                        pos + 1
                    ),
                    text: src_lines.get(idx).map_or("", |l| l.trim()).to_string(),
                });
            }
        }
    }
}

/// Byte offsets of every ` as <ty>` occurrence with a word boundary
/// after the type (so `as u16` does not match inside `as u16x8`).
fn find_casts(line: &str, ty: &str) -> Vec<usize> {
    let needle = format!(" as {ty}");
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(at) = line[from..].find(&needle) {
        let pos = from + at;
        let after = pos + needle.len();
        let bounded = line[after..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if bounded {
            found.push(pos);
        }
        from = after;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source;

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let masked = source::mask_cfg_test(&source::mask(src));
        scan("f.rs", src, &masked, &mut out);
        out
    }

    #[test]
    fn flags_narrowing_on_length_lines() {
        let d = run("let n = payload.len() as u32;");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, Kind::Cast);
        assert_eq!(run("let i = marginal as usize;").len(), 1);
    }

    #[test]
    fn ignores_widening_and_unmarked_lines() {
        assert!(run("let n = x.len() as u64;").is_empty());
        assert!(run("let v = value as u32;").is_empty());
        assert!(run("let f = total_len as f64;").is_empty());
    }

    #[test]
    fn ignores_comments_and_tests() {
        assert!(run("// let n = len as u32;").is_empty());
        let src = "#[cfg(test)]\nmod tests { fn t() { let n = len as u32; } }\n";
        assert!(run(src).is_empty());
    }
}
