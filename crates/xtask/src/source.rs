//! Source masking: blank out the character ranges that must not
//! trigger lexical lints — comments, string/char literals, and
//! `#[cfg(test)]` blocks — while preserving every line boundary, so
//! downstream scanners report exact line numbers against the original
//! file.

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn blank(c: char) -> char {
    if c == '\n' {
        '\n'
    } else {
        ' '
    }
}

/// Replace the contents of comments and string/char literals with
/// spaces. Delimiters (`"`, `'`, the comment markers themselves) are
/// also blanked except for string quotes, which are kept so quoted
/// regions stay visibly delimited in debug output. Line structure is
/// preserved exactly.
#[must_use]
pub fn mask(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment: blank to end of line.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested): blank to the matching close.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"..." or r#"..."# (any hash count). The `r`
        // must not be the tail of an identifier.
        if c == 'r'
            && matches!(b.get(i + 1), Some(&'"') | Some(&'#'))
            && (i == 0 || !is_ident(b[i - 1]))
        {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                out.push('r');
                out.push_str(&"#".repeat(hashes));
                out.push('"');
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"' && (1..=hashes).all(|h| b.get(i + h) == Some(&'#')) {
                        out.push('"');
                        out.push_str(&"#".repeat(hashes));
                        i += 1 + hashes;
                        break;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary (or byte) string literal.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push(' ');
                    if i + 1 < b.len() {
                        out.push(blank(b[i + 1]));
                    }
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals, 'a in a
        // generic position is a lifetime and passes through.
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                out.push('\'');
                out.push_str("  ");
                i += 3; // quote, backslash, escaped char
                while i < b.len() && b[i] != '\'' {
                    out.push(' ');
                    i += 1;
                }
                if i < b.len() {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if b.get(i + 2) == Some(&'\'') && b.get(i + 1).is_some_and(|&n| n != '\'') {
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
                continue;
            }
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Blank every `#[cfg(test)]` item whose body is a brace block (in
/// practice: `mod tests { ... }`). Expects already-[`mask`]ed input so
/// braces inside strings/comments cannot unbalance the count. An item
/// that ends in `;` before any `{` (e.g. a cfg'd `use`) is left alone.
#[must_use]
pub fn mask_cfg_test(masked: &str) -> String {
    const ATTR: &str = "#[cfg(test)]";
    let b: Vec<char> = masked.chars().collect();
    let attr: Vec<char> = ATTR.chars().collect();
    let mut out = b.clone();
    let mut i = 0;
    while i + attr.len() <= b.len() {
        if b[i..i + attr.len()] != attr[..] {
            i += 1;
            continue;
        }
        // Find the block start, bailing on a `;` item.
        let mut j = i + attr.len();
        while j < b.len() && b[j] != '{' && b[j] != ';' {
            j += 1;
        }
        if j >= b.len() || b[j] == ';' {
            i = j + 1;
            continue;
        }
        // Brace-count to the matching close.
        let mut depth = 0usize;
        let mut k = j;
        while k < b.len() {
            match b[k] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end = (k + 1).min(b.len());
        for cell in &mut out[i..end] {
            if *cell != '\n' {
                *cell = ' ';
            }
        }
        i = end;
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"a[0].unwrap()\"; // b[1]\nlet y = 2; /* c.unwrap() */\n";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("b[1]"));
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(m.contains("let x"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn masks_char_literals_but_not_lifetimes() {
        let src = "fn f<'a>(s: &'a str) -> char { '[' }";
        let m = mask(src);
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains('['));
    }

    #[test]
    fn masks_raw_strings() {
        let src = "let p = r#\"x.unwrap()\"#; let q = 1;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let q = 1;"));
    }

    #[test]
    fn masks_cfg_test_modules_only() {
        let src = "fn hot() { a(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn cold() {}\n";
        let m = mask_cfg_test(&mask(src));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("fn hot"));
        assert!(m.contains("fn cold"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn leaves_cfg_test_use_items_alone() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n";
        let m = mask_cfg_test(&mask(src));
        assert!(m.contains("fn live"));
    }
}
