//! The committed suppression file, `crates/xtask/lint_allowlist.txt`.
//!
//! Entry shape (one per line, `#` comments explain the *why*):
//!
//! ```text
//! <repo-relative path> :: <kind> :: <trimmed source line>
//! ```
//!
//! Entries match by **content**, not line number: a suppressed site
//! keeps its entry through unrelated edits above it, and an entry
//! whose exact trimmed line text vanishes (the site was fixed or
//! rewritten) becomes *stale* — which is itself a lint failure, so
//! the allowlist can only shrink in step with reality. Spec-drift and
//! IO findings are never suppressible.

use crate::{Diagnostic, Kind};
use std::fs;
use std::path::Path;

/// Where the allowlist lives, repo-relative.
pub const ALLOWLIST: &str = "crates/xtask/lint_allowlist.txt";

/// One parsed entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Repo-relative path the suppression applies to.
    pub file: String,
    /// The lint kind being suppressed.
    pub kind: Kind,
    /// The trimmed source-line text to match.
    pub text: String,
    /// The entry's own line in the allowlist (for stale reports).
    pub line: usize,
}

fn parse_kind(name: &str) -> Option<Kind> {
    match name {
        "panic" => Some(Kind::Panic),
        "index" => Some(Kind::Index),
        "cast" => Some(Kind::Cast),
        _ => None,
    }
}

/// Load and parse the allowlist; a missing file is an empty list (the
/// clean-fixture case), a malformed line is a diagnostic.
pub fn load(root: &Path, out: &mut Vec<Diagnostic>) -> Vec<Entry> {
    let Ok(content) = fs::read_to_string(root.join(ALLOWLIST)) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = trimmed.splitn(3, " :: ").collect();
        let [file, kind_name, text] = parts[..] else {
            out.push(Diagnostic {
                file: ALLOWLIST.to_string(),
                line: lineno,
                kind: Kind::StaleAllow,
                message: "malformed entry: expected `<path> :: <kind> :: <line text>`".to_string(),
                text: trimmed.to_string(),
            });
            continue;
        };
        let Some(kind) = parse_kind(kind_name) else {
            out.push(Diagnostic {
                file: ALLOWLIST.to_string(),
                line: lineno,
                kind: Kind::StaleAllow,
                message: format!(
                    "unknown kind `{kind_name}`: only panic/index/cast findings are suppressible"
                ),
                text: trimmed.to_string(),
            });
            continue;
        };
        entries.push(Entry {
            file: file.to_string(),
            kind,
            text: text.to_string(),
            line: lineno,
        });
    }
    entries
}

/// Filter `violations` through the allowlist: matched findings are
/// suppressed, unmatched ones pass through to `out`, and entries that
/// matched nothing are reported stale.
pub fn apply(entries: &[Entry], violations: Vec<Diagnostic>, out: &mut Vec<Diagnostic>) {
    let mut used = vec![false; entries.len()];
    for v in violations {
        let hit = entries
            .iter()
            .position(|e| e.file == v.file && e.kind == v.kind && e.text == v.text.trim());
        match hit {
            Some(i) => used[i] = true,
            None => out.push(v),
        }
    }
    for (entry, used) in entries.iter().zip(used) {
        if !used {
            out.push(Diagnostic {
                file: ALLOWLIST.to_string(),
                line: entry.line,
                kind: Kind::StaleAllow,
                message: format!(
                    "entry matches no current {} finding in {}; the site was fixed or rewritten — delete the entry",
                    entry.kind.name(),
                    entry.file
                ),
                text: entry.text.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(file: &str, kind: Kind, text: &str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line: 7,
            kind,
            message: "m".to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn suppresses_matched_and_reports_stale() {
        let entries = vec![
            Entry {
                file: "a.rs".to_string(),
                kind: Kind::Panic,
                text: "x.unwrap();".to_string(),
                line: 3,
            },
            Entry {
                file: "b.rs".to_string(),
                kind: Kind::Cast,
                text: "len as u32".to_string(),
                line: 5,
            },
        ];
        let mut out = Vec::new();
        apply(
            &entries,
            vec![violation("a.rs", Kind::Panic, "x.unwrap();")],
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, Kind::StaleAllow);
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn unmatched_violations_pass_through() {
        let mut out = Vec::new();
        apply(&[], vec![violation("a.rs", Kind::Index, "b[0]")], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, Kind::Index);
    }
}
