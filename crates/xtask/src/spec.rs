//! Spec↔code drift detection: `docs/WIRE_FORMAT.md` carries marked,
//! machine-parseable regions (tag registry, wire version, and the
//! `StreamHeader` byte layout), and this module cross-checks them
//! against the normative code in `crates/core/src/wire.rs` and
//! `frame.rs`. A tag added/removed/renumbered on one side, a version
//! bump that misses the doc, or a header field reordered in
//! `to_bytes` without the spec (or `from_bytes`) following along all
//! fail with a diagnostic naming the lagging side.

use crate::{Diagnostic, Kind};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

const DOC: &str = "docs/WIRE_FORMAT.md";
const WIRE: &str = "crates/core/src/wire.rs";
const FRAME: &str = "crates/core/src/frame.rs";

const TAG_BEGIN: &str = "<!-- ldp-lint:tag-registry:begin -->";
const TAG_END: &str = "<!-- ldp-lint:tag-registry:end -->";
const VERSION_MARK: &str = "<!-- ldp-lint:wire-version=";
const HDR_BEGIN: &str = "<!-- ldp-lint:stream-header:begin";
const HDR_END: &str = "<!-- ldp-lint:stream-header:end -->";

fn diag(file: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        kind: Kind::SpecDrift,
        message,
        text: String::new(),
    }
}

fn read(root: &Path, rel: &str, out: &mut Vec<Diagnostic>) -> Option<String> {
    match fs::read_to_string(root.join(rel)) {
        Ok(s) => Some(s),
        Err(e) => {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: 1,
                kind: Kind::Io,
                message: format!("drift check cannot read {rel}: {e}"),
                text: String::new(),
            });
            None
        }
    }
}

/// A named byte field: name, size in bytes, declaration line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Field {
    name: String,
    size: usize,
    line: usize,
}

fn type_size(ty: &str) -> Option<usize> {
    match ty {
        "u8" => Some(1),
        "u16" => Some(2),
        "u32" => Some(4),
        "u64" | "i64" | "f64" => Some(8),
        _ => None,
    }
}

/// Run every drift check, appending diagnostics.
pub fn check(root: &Path, out: &mut Vec<Diagnostic>) {
    let Some(doc) = read(root, DOC, out) else {
        return;
    };
    let Some(wire) = read(root, WIRE, out) else {
        return;
    };
    let Some(frame) = read(root, FRAME, out) else {
        return;
    };
    check_tags(&doc, &wire, out);
    check_version(&doc, &wire, out);
    check_header(&doc, &frame, out);
}

/// Extract `| 0xNN | `CONST` | … |` rows between the registry markers.
fn doc_tags(doc: &str, out: &mut Vec<Diagnostic>) -> Option<BTreeMap<String, (u8, usize)>> {
    let mut tags = BTreeMap::new();
    let mut inside = false;
    let mut saw_begin = false;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = idx + 1;
        if line.contains(TAG_BEGIN) {
            inside = true;
            saw_begin = true;
            continue;
        }
        if line.contains(TAG_END) {
            inside = false;
            continue;
        }
        if !inside || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // cells[0] and the last are the empty outside of the pipes.
        if cells.len() < 4 {
            continue;
        }
        let tag_cell = cells[1].trim_matches('`');
        let name_cell = cells[2].trim_matches('`');
        let Some(hex) = tag_cell.strip_prefix("0x") else {
            continue; // the `| Tag |` header and `|---|` separator rows
        };
        match u8::from_str_radix(hex, 16) {
            Ok(value) => {
                if tags
                    .insert(name_cell.to_string(), (value, lineno))
                    .is_some()
                {
                    out.push(diag(
                        DOC,
                        lineno,
                        format!("tag registry lists `{name_cell}` twice"),
                    ));
                }
            }
            Err(_) => out.push(diag(
                DOC,
                lineno,
                format!("unparseable tag value `{tag_cell}` in the registry row"),
            )),
        }
    }
    if !saw_begin {
        out.push(diag(
            DOC,
            1,
            format!(
                "missing `{TAG_BEGIN}` marker: the tag registry is no longer machine-checkable"
            ),
        ));
        return None;
    }
    Some(tags)
}

/// Extract `pub const NAME: u8 = 0xNN;` declarations (the tag module).
fn code_tags(wire: &str) -> BTreeMap<String, (u8, usize)> {
    let mut tags = BTreeMap::new();
    for (idx, line) in wire.lines().enumerate() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, rhs)) = rest.split_once(": u8 = ") else {
            continue;
        };
        let Some(hex) = rhs.trim().trim_end_matches(';').strip_prefix("0x") else {
            continue; // decimal u8 consts (VERSION) are not tags
        };
        if let Ok(value) = u8::from_str_radix(hex, 16) {
            tags.insert(name.trim().to_string(), (value, idx + 1));
        }
    }
    tags
}

fn check_tags(doc: &str, wire: &str, out: &mut Vec<Diagnostic>) {
    let Some(doc_tags) = doc_tags(doc, out) else {
        return;
    };
    let code_tags = code_tags(wire);
    if code_tags.is_empty() {
        out.push(diag(
            WIRE,
            1,
            "found no `pub const NAME: u8 = 0xNN;` tag declarations".to_string(),
        ));
        return;
    }
    for (name, (value, line)) in &doc_tags {
        match code_tags.get(name) {
            None => out.push(diag(
                DOC,
                *line,
                format!("registry row `{name}` (0x{value:02X}) has no matching const in {WIRE}"),
            )),
            Some((code_value, code_line)) if code_value != value => out.push(diag(
                DOC,
                *line,
                format!(
                    "registry says `{name}` = 0x{value:02X} but {WIRE}:{code_line} says 0x{code_value:02X}"
                ),
            )),
            Some(_) => {}
        }
    }
    for (name, (value, line)) in &code_tags {
        if !doc_tags.contains_key(name) {
            out.push(diag(
                WIRE,
                *line,
                format!(
                    "tag const `{name}` (0x{value:02X}) is missing from the {DOC} registry table"
                ),
            ));
        }
    }
}

fn check_version(doc: &str, wire: &str, out: &mut Vec<Diagnostic>) {
    let doc_version = doc.lines().enumerate().find_map(|(idx, line)| {
        let at = line.find(VERSION_MARK)?;
        let rest = &line[at + VERSION_MARK.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        digits.parse::<u8>().ok().map(|v| (v, idx + 1))
    });
    let code_version = wire.lines().enumerate().find_map(|(idx, line)| {
        let rest = line.trim().strip_prefix("pub const VERSION: u8 = ")?;
        rest.trim_end_matches(';')
            .parse::<u8>()
            .ok()
            .map(|v| (v, idx + 1))
    });
    match (doc_version, code_version) {
        (Some((dv, dl)), Some((cv, cl))) if dv != cv => out.push(diag(
            DOC,
            dl,
            format!("spec says wire version {dv} but {WIRE}:{cl} says {cv}"),
        )),
        (None, _) => out.push(diag(
            DOC,
            1,
            format!("missing `{VERSION_MARK}N -->` marker"),
        )),
        (_, None) => out.push(diag(
            WIRE,
            1,
            "found no `pub const VERSION: u8 = N;` declaration".to_string(),
        )),
        _ => {}
    }
}

/// (prelude-checked fields after tag+version with their claimed
/// offsets, declared total byte count, begin-marker line).
type HeaderLayout = (Vec<(usize, Field)>, usize, usize);

/// Parse the `offset size field` rows of the marked header layout.
fn doc_header(doc: &str, out: &mut Vec<Diagnostic>) -> Option<HeaderLayout> {
    let mut fields = Vec::new();
    let mut inside = false;
    let mut total = None;
    let mut begin_line = 0;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = idx + 1;
        if let Some(at) = line.find(HDR_BEGIN) {
            inside = true;
            begin_line = lineno;
            let rest = &line[at + HDR_BEGIN.len()..];
            total = rest.split("total=").nth(1).and_then(|t| {
                t.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse::<usize>()
                    .ok()
            });
            continue;
        }
        if line.contains(HDR_END) {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(off), Some(size), Some(name)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        let (Ok(off), Ok(size)) = (off.parse::<usize>(), size.parse::<usize>()) else {
            continue; // the `offset size field` caption and fences
        };
        fields.push((
            off,
            Field {
                name: name.to_string(),
                size,
                line: lineno,
            },
        ));
    }
    if begin_line == 0 {
        out.push(diag(
            DOC,
            1,
            format!("missing `{HDR_BEGIN} total=N -->` marker for the StreamHeader layout"),
        ));
        return None;
    }
    let Some(total) = total else {
        out.push(diag(
            DOC,
            begin_line,
            "stream-header begin marker lacks its `total=N` byte count".to_string(),
        ));
        return None;
    };
    // The first two rows must be the tag/version prelude.
    let prelude_ok = fields.len() >= 2
        && fields[0].0 == 0
        && fields[0].1.size == 1
        && fields[0].1.name == "tag"
        && fields[1].0 == 1
        && fields[1].1.size == 1
        && fields[1].1.name == "version";
    if !prelude_ok {
        out.push(diag(
            DOC,
            begin_line,
            "stream-header layout must open with the `tag` and `version` one-byte rows".to_string(),
        ));
        return None;
    }
    Some((fields.split_off(2), total, begin_line))
}

/// Collect `w.put_TY(self.FIELD);` calls inside `fn to_bytes`.
fn code_put_fields(frame: &str) -> Vec<Field> {
    fields_in_fn(frame, "fn to_bytes", |t, lineno| {
        let at = t.find(".put_")?;
        let rest = &t[at + ".put_".len()..];
        let (ty, args) = rest.split_once('(')?;
        let name = args.strip_prefix("self.")?.split(')').next()?;
        Some(Field {
            name: name.trim().to_string(),
            size: type_size(ty)?,
            line: lineno,
        })
    })
}

/// Collect `let FIELD = r.get_TY()?;` bindings inside `fn from_bytes`.
fn code_get_fields(frame: &str) -> Vec<Field> {
    fields_in_fn(frame, "fn from_bytes", |t, lineno| {
        let rest = t.strip_prefix("let ")?;
        let (name, rhs) = rest.split_once('=')?;
        let at = rhs.find(".get_")?;
        let ty = rhs[at + ".get_".len()..].split('(').next()?;
        Some(Field {
            name: name.trim().to_string(),
            size: type_size(ty)?,
            line: lineno,
        })
    })
}

/// Apply `parse` to each line of the first `marker` function's body
/// (brace-counted from the signature line).
fn fields_in_fn(
    frame: &str,
    marker: &str,
    parse: impl Fn(&str, usize) -> Option<Field>,
) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut inside = false;
    let mut done = false;
    for (idx, line) in frame.lines().enumerate() {
        if done {
            break;
        }
        if !inside && line.contains(marker) {
            inside = true;
        }
        if !inside {
            continue;
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        done = true;
                    }
                }
                _ => {}
            }
        }
        if let Some(field) = parse(line.trim(), idx + 1) {
            fields.push(field);
        }
    }
    fields
}

fn check_header(doc: &str, frame: &str, out: &mut Vec<Diagnostic>) {
    let Some((doc_fields, total, begin_line)) = doc_header(doc, out) else {
        return;
    };
    let puts = code_put_fields(frame);
    let gets = code_get_fields(frame);
    if puts.is_empty() {
        out.push(diag(
            FRAME,
            1,
            "found no `w.put_*(self.FIELD)` calls in `fn to_bytes`".to_string(),
        ));
        return;
    }
    // Encoder/decoder symmetry: same fields, same order, same widths.
    if gets.len() != puts.len() {
        out.push(diag(
            FRAME,
            gets.first().map_or(1, |f| f.line),
            format!(
                "StreamHeader::from_bytes reads {} fields but to_bytes writes {}",
                gets.len(),
                puts.len()
            ),
        ));
    }
    for (put, get) in puts.iter().zip(&gets) {
        if put.name != get.name || put.size != get.size {
            out.push(diag(
                FRAME,
                get.line,
                format!(
                    "decoder reads `{}` ({} bytes) where the encoder writes `{}` ({} bytes)",
                    get.name, get.size, put.name, put.size
                ),
            ));
        }
    }
    // Spec rows vs encoder sequence, with accumulated offsets.
    if doc_fields.len() != puts.len() {
        out.push(diag(
            DOC,
            begin_line,
            format!(
                "spec layout lists {} payload fields but StreamHeader::to_bytes writes {}",
                doc_fields.len(),
                puts.len()
            ),
        ));
        return;
    }
    let mut offset = 2; // tag + version prelude
    for ((doc_off, doc_field), put) in doc_fields.iter().zip(&puts) {
        if doc_field.name != put.name || doc_field.size != put.size {
            out.push(diag(
                DOC,
                doc_field.line,
                format!(
                    "spec row `{}` ({} bytes) vs code field `{}` ({} bytes) at {FRAME}:{}",
                    doc_field.name, doc_field.size, put.name, put.size, put.line
                ),
            ));
        }
        if *doc_off != offset {
            out.push(diag(
                DOC,
                doc_field.line,
                format!(
                    "spec row `{}` claims offset {doc_off} but the preceding fields end at {offset}",
                    doc_field.name
                ),
            ));
        }
        offset += put.size;
    }
    if total != offset {
        out.push(diag(
            DOC,
            begin_line,
            format!("marker says total={total} bytes but the fields sum to {offset}"),
        ));
    }
}
