//! The panic-path lint: deny constructs that can abort a collector
//! worker on corrupt input — `unwrap`/`expect`, the panicking macros,
//! and direct slice indexing — in non-test hot-path source. This locks
//! in the "corrupt input degrades, never panics" invariant the serve
//! path established: decoders return `WireError`/`FrameError`,
//! handlers degrade, and nothing between a socket and an accumulator
//! is allowed to assert its way out of a bad byte.

use crate::{Diagnostic, Kind};

/// Keywords that may legally precede `[` without it being an index
/// expression (array literals, slice patterns, type positions).
const NON_INDEX_KEYWORDS: [&str; 18] = [
    "mut", "in", "as", "dyn", "ref", "return", "break", "let", "else", "match", "move", "if",
    "while", "for", "loop", "impl", "where", "box",
];

/// Method calls that panic on `None`/`Err`.
const PANIC_CALLS: [&str; 2] = [".unwrap()", ".expect("];

/// Macros that panic unconditionally when reached.
const PANIC_MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Scan one file (already masked by [`crate::source`]) and append a
/// diagnostic per violation. `src` is the original text, used only to
/// quote the offending line.
pub fn scan(rel: &str, src: &str, masked: &str, out: &mut Vec<Diagnostic>) {
    let src_lines: Vec<&str> = src.lines().collect();
    for (idx, line) in masked.lines().enumerate() {
        let lineno = idx + 1;
        let text = src_lines.get(idx).map_or("", |l| l.trim()).to_string();
        let push = |out: &mut Vec<Diagnostic>, kind: Kind, message: String, text: &str| {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: lineno,
                kind,
                message,
                text: text.to_string(),
            });
        };

        for call in PANIC_CALLS {
            if line.contains(call) {
                push(
                    out,
                    Kind::Panic,
                    format!(
                        "`{}` on the hot path; return a WireError/FrameError or degrade instead",
                        call.trim_matches(|c| c == '.' || c == '(' || c == ')')
                    ),
                    &text,
                );
            }
        }
        for mac in PANIC_MACROS {
            if let Some(pos) = line.find(mac) {
                let boundary = pos == 0
                    || !line[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if boundary {
                    push(
                        out,
                        Kind::Panic,
                        format!("`{mac}` on the hot path; corrupt input must degrade, not abort"),
                        &text,
                    );
                }
            }
        }
        scan_indexing(line, &text, lineno, rel, out);
    }
}

/// Flag `expr[...]` index/slice expressions: a `[` whose previous
/// non-space character ends an expression (identifier, `)`, or `]`),
/// excluding keywords, lifetimes, and attribute/macro brackets.
fn scan_indexing(line: &str, text: &str, lineno: usize, rel: &str, out: &mut Vec<Diagnostic>) {
    let chars: Vec<char> = line.chars().collect();
    for (j, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        // Walk back over spaces to the previous significant char.
        let mut p = j;
        while p > 0 && chars[p - 1] == ' ' {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let prev = chars[p - 1];
        if prev == ')' || prev == ']' {
            out.push(index_diag(rel, lineno, text));
            continue;
        }
        if !(prev.is_alphanumeric() || prev == '_') {
            continue; // `#[`, `![`, `= [`, `&[`, `(["`, ...
        }
        // Extract the identifier token and its preceding char.
        let mut s = p;
        while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
            s -= 1;
        }
        let token: String = chars[s..p].iter().collect();
        if NON_INDEX_KEYWORDS.contains(&token.as_str()) {
            continue;
        }
        if s > 0 && chars[s - 1] == '\'' {
            continue; // `&'a [u8]` — a lifetime, not an expression
        }
        out.push(index_diag(rel, lineno, text));
    }
}

fn index_diag(rel: &str, lineno: usize, text: &str) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line: lineno,
        kind: Kind::Index,
        message: "direct slice indexing on the hot path; use .get()/.get_mut() and degrade on None"
            .to_string(),
        text: text.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source;

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let masked = source::mask_cfg_test(&source::mask(src));
        scan("f.rs", src, &masked, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let d = run("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); unreachable!(); }");
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|d| d.kind == Kind::Panic && d.line == 1));
    }

    #[test]
    fn ignores_unwrap_or_variants() {
        assert!(run("fn f() { x.unwrap_or(0); y.unwrap_or_else(p); }").is_empty());
    }

    #[test]
    fn flags_indexing_but_not_types_or_literals() {
        let d = run("fn f(b: &[u8], v: [u8; 4]) { let x = b[0]; let y = [1, 2]; }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, Kind::Index);
        let d = run("fn g() { h()[0]; }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ignores_attributes_macros_and_lifetimes() {
        assert!(run("#[derive(Debug)]\nfn f<'a>(s: &'a [u8]) { vec![1]; }").is_empty());
    }

    #[test]
    fn ignores_test_modules_and_comments() {
        let src = "// x.unwrap()\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); a[0]; }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flags_range_slicing() {
        let d = run("fn f(b: &[u8]) { let _ = &b[..4]; }");
        assert_eq!(d.len(), 1);
    }
}
