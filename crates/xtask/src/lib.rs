//! `ldp-lint`: the repo's first-party static-analysis pass.
//!
//! Three analyses, all dependency-free text passes, all gating CI:
//!
//! 1. **spec↔code drift** ([`spec`]) — the tag registry, wire version,
//!    and `StreamHeader` layout in `docs/WIRE_FORMAT.md` must agree
//!    with the constants and `put_*`/`get_*` call sequences in
//!    `crates/core/src/wire.rs` and `frame.rs`;
//! 2. **panic paths** ([`panics`]) — non-test source on the collector
//!    hot path (`crates/server`, the wire/frame decoders,
//!    `ldp_oracles::pipeline`, `ldp-cli serve`) must not contain
//!    `unwrap`/`expect`/`panic!`/`unreachable!` or direct slice
//!    indexing, except where the committed allowlist explains why;
//! 3. **lossy casts** ([`casts`]) — `as u16`/`as u32`/`as usize`
//!    narrowing on wire-length/index-flavoured expressions is denied,
//!    the exact bug class a corrupt length prefix exploits.
//!
//! Why text passes and not a compiler plugin: the build environment is
//! offline, so the linter must be dependency-free, and the properties
//! checked are lexical (call names, constant declarations, table rows)
//! — a [`source::mask`] pass that blanks comments, strings, and
//! `#[cfg(test)]` modules makes lexical matching reliable enough to
//! gate CI without false positives. Suppressions live in
//! `crates/xtask/lint_allowlist.txt` ([`allowlist`]); entries match by
//! content, not line number, and a stale entry is itself an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod casts;
pub mod panics;
pub mod source;
pub mod spec;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Which analysis produced a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// `docs/WIRE_FORMAT.md` and the wire/frame code disagree.
    SpecDrift,
    /// A panicking construct (`unwrap`, `expect`, `panic!`,
    /// `unreachable!`) on the hot path.
    Panic,
    /// Direct slice indexing (`x[i]`, `x[a..b]`) on the hot path.
    Index,
    /// A narrowing cast on a length/index-flavoured expression.
    Cast,
    /// An allowlist entry that no longer matches any real site.
    StaleAllow,
    /// A file the lint is contractually required to scan is missing or
    /// unreadable (a rename must update the linter, not evade it).
    Io,
}

impl Kind {
    /// The stable name used in diagnostics and allowlist entries.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kind::SpecDrift => "spec-drift",
            Kind::Panic => "panic",
            Kind::Index => "index",
            Kind::Cast => "cast",
            Kind::StaleAllow => "stale-allowlist",
            Kind::Io => "io",
        }
    }
}

/// One finding, pointable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number (1 when the finding is about a whole file).
    pub line: usize,
    /// The analysis that fired.
    pub kind: Kind,
    /// Human explanation.
    pub message: String,
    /// The trimmed offending source line (empty for file-level
    /// findings); this is what allowlist entries match against.
    pub text: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.kind.name(),
            self.message
        )?;
        if !self.text.is_empty() {
            write!(f, "\n    {}", self.text)?;
        }
        Ok(())
    }
}

/// The files the panic/cast analyses are contractually required to
/// scan, beyond every `.rs` file under `crates/server/src`. Each must
/// exist: a missing entry is an [`Kind::Io`] diagnostic, so renaming a
/// hot-path file forces a linter update instead of silently shrinking
/// coverage.
pub const REQUIRED_FILES: [&str; 7] = [
    "crates/core/src/wire.rs",
    "crates/core/src/frame.rs",
    "crates/core/src/encode.rs",
    "crates/oracles/src/pipeline.rs",
    "crates/oracles/src/encode.rs",
    "crates/cli/src/serve.rs",
    "crates/cli/src/load.rs",
];

/// Directory trees whose every `.rs` file joins the scan set.
pub const REQUIRED_TREES: [&str; 1] = ["crates/server/src"];

fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Resolve the scan set under `root`, reporting missing required
/// files/trees as diagnostics.
fn hot_path_files(root: &Path, diags: &mut Vec<Diagnostic>) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for rel in REQUIRED_FILES {
        let path = root.join(rel);
        if path.is_file() {
            files.push(path);
        } else {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: 1,
                kind: Kind::Io,
                message: format!(
                    "required scan target {rel} is missing; if it moved, update xtask::REQUIRED_FILES"
                ),
                text: String::new(),
            });
        }
    }
    for rel in REQUIRED_TREES {
        let dir = root.join(rel);
        if dir.is_dir() {
            collect_rs(&dir, &mut files);
        } else {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: 1,
                kind: Kind::Io,
                message: format!(
                    "required scan tree {rel} is missing; if it moved, update xtask::REQUIRED_TREES"
                ),
                text: String::new(),
            });
        }
    }
    files.sort();
    files.dedup();
    files
}

/// Run every analysis over the repo at `root` and return the surviving
/// diagnostics (empty means the tree is clean).
#[must_use]
pub fn run_lint(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    spec::check(root, &mut diags);

    let files = hot_path_files(root, &mut diags);
    let mut violations = Vec::new();
    for path in files {
        let rel = rel_of(root, &path);
        match fs::read_to_string(&path) {
            Ok(src) => {
                let masked = source::mask_cfg_test(&source::mask(&src));
                panics::scan(&rel, &src, &masked, &mut violations);
                casts::scan(&rel, &src, &masked, &mut violations);
            }
            Err(e) => diags.push(Diagnostic {
                file: rel,
                line: 1,
                kind: Kind::Io,
                message: format!("unreadable scan target: {e}"),
                text: String::new(),
            }),
        }
    }

    let entries = allowlist::load(root, &mut diags);
    allowlist::apply(&entries, violations, &mut diags);

    diags.sort_by(|a, b| (&a.file, a.line, a.kind).cmp(&(&b.file, b.line, b.kind)));
    diags
}
