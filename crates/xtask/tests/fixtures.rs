//! Fixture-tree tests: prove `ldp-lint` catches each defect class it
//! exists for — spec drift, a hot-path panic, a narrowing cast, a
//! stale allowlist entry — with a pointable file:line diagnostic, and
//! stays green on a clean tree (including the real repository, which
//! makes `cargo test` itself a lint gate).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use xtask::{run_lint, Kind};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A throwaway fixture tree, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

impl Fixture {
    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents")).expect("mkdir");
        fs::write(path, content).expect("write fixture file");
    }
}

const DOC: &str = "\
# fixture wire spec

<!-- ldp-lint:wire-version=1 -->

<!-- ldp-lint:tag-registry:begin -->

| Tag | Constant | Meaning |
|---|---|---|
| `0x01` | `INP_RR` | mechanism state |
| `0x40` | `STREAM_HEADER` | stream header |

<!-- ldp-lint:tag-registry:end -->

<!-- ldp-lint:stream-header:begin total=7 -->

```text
offset  size  field
0       1     tag = 0x40
1       1     version = 1
2       1     protocol
3       4     d
```

<!-- ldp-lint:stream-header:end -->
";

const WIRE: &str = "\
//! fixture wire module
pub mod tag {
    pub const INP_RR: u8 = 0x01;
    pub const STREAM_HEADER: u8 = 0x40;
}
pub const VERSION: u8 = 1;

pub fn decode(b: &[u8]) -> Option<u8> {
    b.first().copied()
}
";

const FRAME: &str = "\
//! fixture frame module
impl StreamHeader {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::STREAM_HEADER);
        w.put_u8(self.protocol);
        w.put_u32(self.d);
        w.into_bytes()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::STREAM_HEADER)?;
        let protocol = r.get_u8()?;
        let d = r.get_u32()?;
        Ok(StreamHeader { protocol, d })
    }
}
";

const CLEAN_RS: &str = "\
//! fixture hot-path module
pub fn absorb(b: &[u8]) -> Option<u8> {
    b.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_can_unwrap() {
        super::absorb(&[1]).unwrap();
    }
}
";

/// Build a complete clean tree (every file the linter contractually
/// scans exists), so single-file perturbations isolate one finding.
fn clean_fixture() -> Fixture {
    let root = std::env::temp_dir().join(format!(
        "ldp-lint-fixture-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let fixture = Fixture { root };
    fixture.write("docs/WIRE_FORMAT.md", DOC);
    fixture.write("crates/core/src/wire.rs", WIRE);
    fixture.write("crates/core/src/frame.rs", FRAME);
    fixture.write("crates/core/src/encode.rs", CLEAN_RS);
    fixture.write("crates/oracles/src/pipeline.rs", CLEAN_RS);
    fixture.write("crates/oracles/src/encode.rs", CLEAN_RS);
    fixture.write("crates/cli/src/serve.rs", CLEAN_RS);
    fixture.write("crates/cli/src/load.rs", CLEAN_RS);
    fixture.write("crates/server/src/lib.rs", CLEAN_RS);
    fixture
}

fn line_of(content: &str, needle: &str) -> usize {
    content
        .lines()
        .position(|l| l.contains(needle))
        .map_or_else(|| panic!("fixture should contain {needle:?}"), |i| i + 1)
}

#[test]
fn clean_fixture_tree_is_green() {
    let f = clean_fixture();
    let diags = run_lint(&f.root);
    assert!(diags.is_empty(), "expected clean, got: {diags:#?}");
}

#[test]
fn drifted_tag_value_fails_at_the_registry_row() {
    let f = clean_fixture();
    // Renumber INP_RR in the code only: the spec now lies.
    f.write(
        "crates/core/src/wire.rs",
        &WIRE.replace("INP_RR: u8 = 0x01", "INP_RR: u8 = 0x09"),
    );
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    let d = &diags[0];
    assert_eq!(d.kind, Kind::SpecDrift);
    assert_eq!(d.file, "docs/WIRE_FORMAT.md");
    assert_eq!(d.line, line_of(DOC, "| `0x01` | `INP_RR` |"));
    assert!(d.message.contains("INP_RR") && d.message.contains("0x09"));
}

#[test]
fn tag_missing_from_the_spec_fails_at_the_const() {
    let f = clean_fixture();
    let wire = WIRE.replace(
        "pub const VERSION",
        "pub mod more {\n    pub const RESP_NEW: u8 = 0x5E;\n}\npub const VERSION",
    );
    f.write("crates/core/src/wire.rs", &wire);
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    let d = &diags[0];
    assert_eq!(d.kind, Kind::SpecDrift);
    assert_eq!(d.file, "crates/core/src/wire.rs");
    assert_eq!(d.line, line_of(&wire, "RESP_NEW"));
    assert!(d.message.contains("RESP_NEW"));
}

#[test]
fn wire_version_bump_without_the_spec_fails() {
    let f = clean_fixture();
    f.write(
        "crates/core/src/wire.rs",
        &WIRE.replace("VERSION: u8 = 1", "VERSION: u8 = 2"),
    );
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    assert_eq!(diags[0].kind, Kind::SpecDrift);
    assert_eq!(diags[0].file, "docs/WIRE_FORMAT.md");
    assert_eq!(diags[0].line, line_of(DOC, "wire-version=1"));
}

#[test]
fn header_field_reorder_fails_spec_and_decoder() {
    let f = clean_fixture();
    // Swap the two payload fields in the encoder only: both the spec
    // rows and the decoder now disagree with to_bytes.
    let frame = FRAME.replace(
        "w.put_u8(self.protocol);\n        w.put_u32(self.d);",
        "w.put_u32(self.d);\n        w.put_u8(self.protocol);",
    );
    f.write("crates/core/src/frame.rs", &frame);
    let diags = run_lint(&f.root);
    assert!(
        diags.iter().any(|d| d.kind == Kind::SpecDrift
            && d.file == "crates/core/src/frame.rs"
            && d.message.contains("decoder reads")),
        "expected an encoder/decoder symmetry finding, got: {diags:#?}"
    );
    assert!(
        diags.iter().any(|d| d.kind == Kind::SpecDrift
            && d.file == "docs/WIRE_FORMAT.md"
            && d.line == line_of(DOC, "2       1     protocol")),
        "expected a spec-row finding at the protocol row, got: {diags:#?}"
    );
}

#[test]
fn injected_hot_path_unwrap_fails_at_file_and_line() {
    let f = clean_fixture();
    let src = CLEAN_RS.replace(
        "b.first().copied()",
        "let v = b.first().copied().unwrap();\n    Some(v)",
    );
    f.write("crates/server/src/lib.rs", &src);
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    let d = &diags[0];
    assert_eq!(d.kind, Kind::Panic);
    assert_eq!(d.file, "crates/server/src/lib.rs");
    assert_eq!(d.line, line_of(&src, ".unwrap()"));
    assert!(d.text.contains(".unwrap()"));
}

#[test]
fn injected_direct_indexing_fails() {
    let f = clean_fixture();
    let src = CLEAN_RS.replace("b.first().copied()", "Some(b[0])");
    f.write("crates/oracles/src/pipeline.rs", &src);
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    assert_eq!(diags[0].kind, Kind::Index);
    assert_eq!(diags[0].file, "crates/oracles/src/pipeline.rs");
    assert_eq!(diags[0].line, line_of(&src, "b[0]"));
}

#[test]
fn injected_narrowing_cast_fails_at_file_and_line() {
    let f = clean_fixture();
    let src = CLEAN_RS.replace(
        "b.first().copied()",
        "let len = b.len() as u32;\n    b.first().copied().map(|v| v.min(len as u8))",
    );
    f.write("crates/cli/src/serve.rs", &src);
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    let d = &diags[0];
    assert_eq!(d.kind, Kind::Cast);
    assert_eq!(d.file, "crates/cli/src/serve.rs");
    assert_eq!(d.line, line_of(&src, "as u32"));
}

#[test]
fn allowlist_suppresses_and_goes_stale() {
    let f = clean_fixture();
    let src = CLEAN_RS.replace("b.first().copied()", "Some(b[0])");
    f.write("crates/server/src/lib.rs", &src);
    f.write(
        "crates/xtask/lint_allowlist.txt",
        "# fixture\ncrates/server/src/lib.rs :: index :: Some(b[0])\n",
    );
    assert!(
        run_lint(&f.root).is_empty(),
        "entry should suppress the finding"
    );

    // Fix the site; the entry must now fail as stale, at its own line.
    f.write("crates/server/src/lib.rs", CLEAN_RS);
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    assert_eq!(diags[0].kind, Kind::StaleAllow);
    assert_eq!(diags[0].file, "crates/xtask/lint_allowlist.txt");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn missing_required_scan_target_fails() {
    let f = clean_fixture();
    fs::remove_file(f.root.join("crates/cli/src/serve.rs")).expect("remove fixture file");
    let diags = run_lint(&f.root);
    assert_eq!(diags.len(), 1, "got: {diags:#?}");
    assert_eq!(diags[0].kind, Kind::Io);
    assert_eq!(diags[0].file, "crates/cli/src/serve.rs");
}

/// The real repository must be lint-clean: this makes plain
/// `cargo test` a lint gate even before CI's dedicated job runs.
#[test]
fn real_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root");
    let diags = run_lint(root);
    assert!(
        diags.is_empty(),
        "the working tree has lint findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
