//! Protocol plumbing shared by the subcommands: one client type and one
//! accumulator type spanning the seven marginal mechanisms *and* the
//! three frequency oracles, keyed by the [`StreamHeader`] that travels
//! as frame 0 of every stream and snapshot.

use ldp_core::frame::StreamHeader;
use ldp_core::{
    Accumulator, Estimate, Mechanism, MechanismAccumulator, MechanismKind, MechanismReport,
};
use ldp_oracles::{
    build_oracle, Oracle, OracleAccumulator, OracleEstimate, OracleKind, OracleReport,
};
use rand::rngs::SmallRng;

/// A protocol named on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// One of the seven marginal mechanisms.
    Mechanism(MechanismKind),
    /// One of the three frequency oracles.
    Oracle(OracleKind),
}

impl Protocol {
    /// Parse a command-line protocol name (case-insensitive).
    pub fn parse(name: &str) -> Result<Protocol, String> {
        let lower = name.to_ascii_lowercase();
        for kind in MechanismKind::ALL {
            if kind.name().to_ascii_lowercase() == lower {
                return Ok(Protocol::Mechanism(kind));
            }
        }
        for kind in OracleKind::ALL {
            if kind.name().to_ascii_lowercase() == lower {
                return Ok(Protocol::Oracle(kind));
            }
        }
        Err(format!(
            "unknown protocol {name:?}; expected one of {}",
            Protocol::names().join(", ")
        ))
    }

    /// Every accepted protocol name, in display form.
    pub fn names() -> Vec<&'static str> {
        MechanismKind::ALL
            .iter()
            .map(|k| k.name())
            .chain(OracleKind::ALL.iter().map(|k| k.name()))
            .collect()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Mechanism(k) => k.name(),
            Protocol::Oracle(k) => k.name(),
        }
    }
}

/// The sketch shape flags (`--hashes`, `--width`, `--family-seed`) an
/// oracle pipeline carries in its header; ignored by mechanisms.
#[derive(Clone, Copy, Debug)]
pub struct SketchShape {
    pub hashes: u32,
    pub width: u32,
    pub family_seed: u64,
}

/// Build the stream header for a protocol at concrete parameters.
pub fn header_for(
    protocol: Protocol,
    d: u32,
    k: u32,
    eps: f64,
    sketch: SketchShape,
) -> StreamHeader {
    match protocol {
        Protocol::Mechanism(kind) => StreamHeader::mechanism(kind, d, k, eps),
        Protocol::Oracle(kind) => StreamHeader::oracle(
            kind.wire_tag(),
            d,
            eps,
            sketch.hashes,
            sketch.width,
            sketch.family_seed,
        ),
    }
}

/// The client half of a pipeline: encodes rows into report frames.
pub enum Client {
    Mechanism(Mechanism),
    Oracle(Oracle),
}

/// Reject parameter combinations the protocol constructors would panic
/// on, with a message naming the offending flag/field. Applied to
/// headers from the command line *and* from incoming streams, so a
/// corrupt or hostile header degrades to an error instead of crashing
/// the collector process.
fn validate_header(header: &StreamHeader) -> Result<(), String> {
    match header.mechanism_kind() {
        Some(MechanismKind::InpRr) => {
            if !(1..=24).contains(&header.d) {
                return Err(format!(
                    "InpRR materializes 2^d cells; need d ≤ 24, got {}",
                    header.d
                ));
            }
        }
        Some(MechanismKind::InpPs) | Some(MechanismKind::InpEm) => {
            if !(1..=26).contains(&header.d) {
                return Err(format!(
                    "{} materializes 2^d cells; need d ≤ 26, got {}",
                    header.mechanism_kind().unwrap().name(),
                    header.d
                ));
            }
        }
        Some(MechanismKind::MargRr) | Some(MechanismKind::MargPs) | Some(MechanismKind::MargHt) => {
            if header.k > 16 {
                return Err(format!(
                    "{} materializes 2^k marginal tables; need k ≤ 16, got {}",
                    header.mechanism_kind().unwrap().name(),
                    header.k
                ));
            }
        }
        Some(MechanismKind::InpHt) => {}
        None => match OracleKind::from_wire_tag(header.protocol) {
            Some(OracleKind::Olh) => {
                if !(1..=40).contains(&header.d) {
                    return Err(format!("OLH needs d ≤ 40, got {}", header.d));
                }
                // g = ⌈e^ε⌉ + 1 must fit the u8 bucket in OlhReport.
                if header.eps > 255f64.ln() {
                    return Err(format!(
                        "OLH buckets are reported as one byte; need eps ≤ ln(255) ≈ 5.54, got {}",
                        header.eps
                    ));
                }
            }
            Some(OracleKind::Cms) | Some(OracleKind::Hcms) => {
                if !(1..=255).contains(&header.hashes) {
                    return Err(format!(
                        "sketch needs 1 ≤ hashes ≤ 255, got {}",
                        header.hashes
                    ));
                }
                if header.width < 2 || header.width > 1 << 16 {
                    return Err(format!(
                        "sketch needs 2 ≤ width ≤ 65536, got {}",
                        header.width
                    ));
                }
                if OracleKind::from_wire_tag(header.protocol) == Some(OracleKind::Hcms)
                    && !header.width.is_power_of_two()
                {
                    return Err(format!(
                        "HCMS width must be a power of two, got {}",
                        header.width
                    ));
                }
            }
            None => {}
        },
    }
    Ok(())
}

impl Client {
    /// Rebuild the client a header describes.
    pub fn from_header(header: &StreamHeader) -> Result<Client, String> {
        validate_header(header)?;
        if let Some(mech) = header.build_mechanism() {
            return Ok(Client::Mechanism(mech));
        }
        if let Some(oracle) = build_oracle(header) {
            return Ok(Client::Oracle(oracle));
        }
        Err(format!(
            "header names unknown protocol tag {:#04x}",
            header.protocol
        ))
    }

    /// Encode one user's record into a report frame payload.
    pub fn encode_report(&self, row: u64, rng: &mut SmallRng) -> Vec<u8> {
        match self {
            Client::Mechanism(m) => m.encode(row, rng).to_bytes(),
            Client::Oracle(o) => o.encode(row, rng).to_bytes(),
        }
    }
}

/// The server half: a type-erased accumulator for either protocol
/// family.
pub enum PipelineAccumulator {
    Mechanism(MechanismAccumulator),
    Oracle(OracleAccumulator),
}

impl PipelineAccumulator {
    /// A fresh, empty accumulator matching a header.
    pub fn empty(header: &StreamHeader) -> Result<Self, String> {
        match Client::from_header(header)? {
            Client::Mechanism(m) => Ok(PipelineAccumulator::Mechanism(m.accumulator())),
            Client::Oracle(o) => Ok(PipelineAccumulator::Oracle(o.accumulator())),
        }
    }

    /// Rehydrate serialized accumulator state, verifying it matches the
    /// snapshot's header.
    pub fn from_state(header: &StreamHeader, state: &[u8]) -> Result<Self, String> {
        if state.first() != Some(&header.protocol) {
            return Err(format!(
                "snapshot state tag {:?} does not match header protocol {:#04x}",
                state.first(),
                header.protocol
            ));
        }
        if header.mechanism_kind().is_some() {
            MechanismAccumulator::from_bytes(state)
                .map(PipelineAccumulator::Mechanism)
                .map_err(|e| format!("bad mechanism snapshot state: {e}"))
        } else if OracleKind::from_wire_tag(header.protocol).is_some() {
            OracleAccumulator::from_bytes(state)
                .map(PipelineAccumulator::Oracle)
                .map_err(|e| format!("bad oracle snapshot state: {e}"))
        } else {
            Err(format!(
                "header names unknown protocol tag {:#04x}",
                header.protocol
            ))
        }
    }

    /// Absorb one report frame payload.
    pub fn absorb_report(&mut self, bytes: &[u8]) -> Result<(), String> {
        match self {
            PipelineAccumulator::Mechanism(acc) => {
                let report = MechanismReport::from_bytes(bytes)
                    .map_err(|e| format!("bad report frame: {e}"))?;
                if report.kind() != acc.kind() {
                    return Err(format!(
                        "stream mixes protocols: {} accumulator got a {} report",
                        acc.kind().name(),
                        report.kind().name()
                    ));
                }
                acc.absorb(&report);
                Ok(())
            }
            PipelineAccumulator::Oracle(acc) => {
                let report = OracleReport::from_bytes(bytes)
                    .map_err(|e| format!("bad report frame: {e}"))?;
                if report.kind() != acc.kind() {
                    return Err(format!(
                        "stream mixes protocols: {} accumulator got a {} report",
                        acc.kind().name(),
                        report.kind().name()
                    ));
                }
                acc.absorb(&report);
                Ok(())
            }
        }
    }

    /// Fold another partial aggregate of the same protocol into this
    /// one.
    pub fn merge(&mut self, other: PipelineAccumulator) -> Result<(), String> {
        match (self, other) {
            (PipelineAccumulator::Mechanism(a), PipelineAccumulator::Mechanism(b)) => {
                if a.kind() != b.kind() {
                    return Err(format!(
                        "cannot merge a {} snapshot into a {} snapshot",
                        b.kind().name(),
                        a.kind().name()
                    ));
                }
                a.merge(b);
                Ok(())
            }
            (PipelineAccumulator::Oracle(a), PipelineAccumulator::Oracle(b)) => {
                if a.kind() != b.kind() {
                    return Err(format!(
                        "cannot merge a {} snapshot into a {} snapshot",
                        b.kind().name(),
                        a.kind().name()
                    ));
                }
                a.merge(b);
                Ok(())
            }
            _ => Err("cannot merge a mechanism snapshot with an oracle snapshot".to_string()),
        }
    }

    /// Reports absorbed so far (summed across merges).
    pub fn report_count(&self) -> u64 {
        match self {
            PipelineAccumulator::Mechanism(a) => a.report_count(),
            PipelineAccumulator::Oracle(a) => a.report_count(),
        }
    }

    /// Serialized state for the snapshot's state frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PipelineAccumulator::Mechanism(a) => a.to_bytes(),
            PipelineAccumulator::Oracle(a) => a.to_bytes(),
        }
    }

    /// Finalize into the queryable estimate.
    pub fn finalize(self) -> PipelineEstimate {
        match self {
            PipelineAccumulator::Mechanism(a) => PipelineEstimate::Mechanism(a.finalize()),
            PipelineAccumulator::Oracle(a) => PipelineEstimate::Oracle(a.finalize()),
        }
    }
}

/// What `query` finalizes a snapshot into.
pub enum PipelineEstimate {
    Mechanism(Estimate),
    Oracle(OracleEstimate),
}
