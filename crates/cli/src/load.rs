//! `ldp-cli load` — the traffic generator, in two modes.
//!
//! **Closed loop** (default): `--clients` concurrent connections each
//! push `--reports` reports as fast as the server acks them. Users are
//! numbered `0..clients*reports` in contiguous per-client slices and
//! encoded under the `user_rng(seed, user)` schedule, so the union of
//! all connections is byte-identical to `ldp-cli encode --generate
//! <src> --n clients*reports --seed <seed>` — a loaded server's
//! snapshot must equal a serial `ingest` of that stream
//! (`tests/serve.rs`). Rows are drawn lazily from
//! [`DataSource::stream`] and reports are encoded straight into the
//! socket via the batched kernels, so memory stays O(batch) however
//! large the population.
//!
//! **Open loop** (`--rate R`): batch arrivals follow a fixed schedule —
//! event `i` fires at `t0 + i·batch/R` regardless of how long earlier
//! events took. A slow server makes senders *late* (tracked and
//! reported) instead of silently stretching the schedule the way a
//! closed loop does, so the recorded per-batch ack latencies do not
//! suffer coordinated omission; latency is measured from the
//! *scheduled* send time. The end-of-run report prints an HDR-style
//! log-bucketed histogram (p50/p90/p99/p99.9) and `--hist-output`
//! writes the same data as JSON. See `docs/OPERATIONS.md` ("Load
//! generation") for how to choose rates and read the numbers.
//!
//! This file is covered by the `ldp-lint` hot-path panic scan: the send
//! loops must not index, unwrap, or narrow unchecked lengths.

use crate::flags::Flags;
use ldp_bench::histogram::{fmt_ns, LogHistogram};
use ldp_bench::DataSource;
use ldp_core::user_rng;
use ldp_core::wire::Writer;
use ldp_oracles::pipeline::{header_for, Client, Protocol, SketchShape};
use ldp_server::{push_frame, push_with};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Default reports per batch event in open-loop mode (where a batch is
/// the unit of arrival and `--batch 0` has no wire-v1 meaning).
const OPEN_LOOP_DEFAULT_BATCH: usize = 256;

/// Shared knobs both modes parse from the flag set.
struct Common {
    addr: String,
    d: u32,
    k: u32,
    eps: f64,
    seed: u64,
    clients: usize,
    batch: usize,
    sketch: SketchShape,
    source: DataSource,
}

fn parse_common(flags: &Flags) -> Result<Common, String> {
    let addr = flags.require("connect")?.to_string();
    let d: u32 = flags.parsed("d", 8)?;
    let k: u32 = flags.parsed("k", 2)?;
    let eps: f64 = flags.parsed("eps", 1.1)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let clients: usize = flags.parsed("clients", 4)?;
    let batch: usize = flags.parsed("batch", 0)?;
    let sketch = SketchShape {
        hashes: flags.parsed("hashes", 5)?,
        width: flags.parsed("width", 256)?,
        family_seed: flags.parsed("family-seed", 1)?,
    };
    if !(1..=63).contains(&d) {
        return Err(format!("--d must be in 1..=63, got {d}"));
    }
    if k < 1 || k > d {
        return Err(format!("--k must be in 1..={d}, got {k}"));
    }
    if clients == 0 {
        return Err("--clients must be at least 1".to_string());
    }
    let source = match flags.get("generate").unwrap_or("taxi") {
        "taxi" => DataSource::Taxi,
        "movielens" => DataSource::MovieLens,
        "skewed" => DataSource::Skewed,
        other => {
            return Err(format!(
                "unknown --generate source {other:?}; expected taxi, movielens or skewed"
            ))
        }
    };
    Ok(Common {
        addr,
        d,
        k,
        eps,
        seed,
        clients,
        batch,
        sketch,
        source,
    })
}

/// Dispatch on `--rate`: present → open-loop generator, absent → the
/// classic closed-loop push (whose snapshot-equality contract the
/// integration tests pin down).
pub fn load(flags: &Flags) -> Result<(), String> {
    let common = parse_common(flags)?;
    match flags.get("rate") {
        Some(_) => open_loop(flags, &common),
        None => {
            for open_only in ["duration", "mix", "hist-output"] {
                if flags.get(open_only).is_some() {
                    return Err(format!("--{open_only} needs --rate (open-loop mode)"));
                }
            }
            closed_loop(flags, &common)
        }
    }
}

/// Closed-loop mode: every client pushes its contiguous slice on one
/// connection, encoding lazily (stream the rows, batch the kernels)
/// instead of materializing `clients × reports` rows and frames first.
fn closed_loop(flags: &Flags, common: &Common) -> Result<(), String> {
    let per_client: usize = flags.parsed("reports", 2_500)?;
    if per_client == 0 {
        return Err("--reports must be at least 1".to_string());
    }
    let protocol = Protocol::parse(flags.require("protocol")?)?;
    let header = header_for(protocol, common.d, common.k, common.eps, common.sketch);
    let client = Client::from_header(&header)?;
    let total = common.clients.saturating_mul(per_client);

    let t0 = Instant::now();
    let results: Vec<(u64, usize)> = std::thread::scope(|scope| {
        (0..common.clients)
            .map(|c| {
                let client = &client;
                let header = &header;
                scope.spawn(move || -> Result<(u64, usize), String> {
                    // Position this client's lazy stream at its slice
                    // of the shared population: same rows the eager
                    // `generate` would have put there, O(1) memory.
                    let mut stream = common.source.stream(common.d, common.seed);
                    stream.skip(c.saturating_mul(per_client));
                    let first_user = (c.saturating_mul(per_client)) as u64;
                    let mut wire_bytes = 0usize;
                    let acked = {
                        let bytes = &mut wire_bytes;
                        push_with(&common.addr, header, move |writer| {
                            if common.batch == 0 {
                                // Wire v1: one frame per report.
                                for i in 0..per_client {
                                    let row = stream.next_row();
                                    let mut rng =
                                        user_rng(common.seed, first_user.wrapping_add(i as u64));
                                    let frame = client.encode_report(row, &mut rng);
                                    *bytes = bytes.saturating_add(frame.len());
                                    writer.write_frame(&frame)?;
                                }
                            } else {
                                // Wire v2: the batched kernels fill one
                                // reusable REPORT_BATCH frame per chunk.
                                let mut w = Writer::default();
                                let mut rows = vec![0u64; common.batch];
                                let mut done = 0usize;
                                while done < per_client {
                                    let take = common.batch.min(per_client - done);
                                    let Some(slice) = rows.get_mut(..take) else {
                                        break;
                                    };
                                    stream.fill(slice);
                                    client.encode_batch(
                                        slice,
                                        common.seed,
                                        first_user.wrapping_add(done as u64),
                                        &mut w,
                                    );
                                    *bytes = bytes.saturating_add(w.len());
                                    writer.write_frame(w.as_bytes())?;
                                    done = done.saturating_add(take);
                                }
                            }
                            Ok(())
                        })?
                    };
                    Ok((acked, wire_bytes))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("a load client thread panicked".to_string()))
            })
            .collect::<Result<_, String>>()
    })?;
    let elapsed = t0.elapsed().as_secs_f64();
    let acked: u64 = results.iter().map(|(a, _)| a).sum();
    let wire_bytes: usize = results.iter().map(|(_, b)| b).sum();
    eprintln!(
        "pushed {total} {} reports ({wire_bytes} wire bytes) over {} connections \
         in {elapsed:.3} s ({:.0} reports/s); server absorbed {acked}",
        protocol.name(),
        common.clients,
        total as f64 / elapsed.max(1e-9),
    );
    Ok(())
}

/// One protocol of the open-loop mix: its weight share of batch events
/// goes to `addr` encoded by `client` under `header`.
struct MixEntry {
    name: &'static str,
    weight: usize,
    addr: String,
    header: ldp_core::frame::StreamHeader,
    client: Client,
}

/// Parse `--mix "margps=3,olh=1@host:port"` (weight defaults to 1,
/// address defaults to `--connect`) into entries plus the weighted
/// round-robin pattern assigning each event index a mix entry.
fn parse_mix(text: &str, common: &Common) -> Result<(Vec<MixEntry>, Vec<usize>), String> {
    let mut entries: Vec<MixEntry> = Vec::new();
    let mut pattern: Vec<usize> = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (spec, addr) = match part.split_once('@') {
            Some((spec, addr)) => (spec, addr.to_string()),
            None => (part, common.addr.clone()),
        };
        let (name, weight) = match spec.split_once('=') {
            Some((name, weight_text)) => {
                let weight: usize = weight_text
                    .parse()
                    .map_err(|_| format!("bad mix weight {weight_text:?} in {part:?}"))?;
                (name, weight)
            }
            None => (spec, 1),
        };
        if weight == 0 {
            return Err(format!("mix weight must be at least 1 in {part:?}"));
        }
        let protocol = Protocol::parse(name)?;
        let header = header_for(protocol, common.d, common.k, common.eps, common.sketch);
        let client = Client::from_header(&header)?;
        let slot = entries.len();
        entries.push(MixEntry {
            name: protocol.name(),
            weight,
            addr,
            header,
            client,
        });
        pattern.extend(std::iter::repeat_n(slot, weight));
    }
    if entries.is_empty() {
        return Err("--mix needs at least one protocol entry".to_string());
    }
    Ok((entries, pattern))
}

/// What one sender thread accumulated over its share of the schedule.
struct SenderTally {
    hist: LogHistogram,
    sent_reports: u64,
    acked: u64,
    late_events: u64,
    max_late_ns: u64,
}

/// Open-loop mode: a fixed arrival schedule of batch events shared by
/// `--clients` sender threads, per-batch ack latency measured from the
/// scheduled send time into a log-bucketed histogram.
fn open_loop(flags: &Flags, common: &Common) -> Result<(), String> {
    let rate: f64 = flags.parsed("rate", 0.0)?;
    if rate <= 0.0 || rate.is_nan() || !rate.is_finite() {
        return Err(format!(
            "--rate must be a positive reports/s target, got {rate}"
        ));
    }
    let duration: f64 = flags.parsed("duration", 2.0)?;
    if duration <= 0.0 || duration.is_nan() || !duration.is_finite() {
        return Err(format!(
            "--duration must be positive seconds, got {duration}"
        ));
    }
    let batch = if common.batch == 0 {
        OPEN_LOOP_DEFAULT_BATCH
    } else {
        common.batch
    };
    let (entries, pattern) = match flags.get("mix") {
        Some(text) => parse_mix(text, common)?,
        None => {
            let protocol = Protocol::parse(flags.require("protocol")?)?;
            let header = header_for(protocol, common.d, common.k, common.eps, common.sketch);
            let client = Client::from_header(&header)?;
            (
                vec![MixEntry {
                    name: protocol.name(),
                    weight: 1,
                    addr: common.addr.clone(),
                    header,
                    client,
                }],
                vec![0],
            )
        }
    };

    let interval = Duration::from_secs_f64(batch as f64 / rate);
    let window = Duration::from_secs_f64(duration);
    let interval_ns = u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX);
    let batch_u64 = batch as u64;
    let pattern_size = pattern.len() as u64;
    let next_event = AtomicU64::new(0);
    let t0 = Instant::now();

    let tallies: Vec<SenderTally> = std::thread::scope(|scope| {
        (0..common.clients)
            .map(|t| {
                let next_event = &next_event;
                let entries = &entries;
                let pattern = &pattern;
                scope.spawn(move || -> Result<SenderTally, String> {
                    // Each sender draws rows from its own stream (all
                    // three sources are i.i.d. per row, so any
                    // row-to-event assignment is the same population);
                    // users are numbered by event so every report still
                    // has a unique user_rng stream per protocol.
                    let mut stream = common
                        .source
                        .stream(common.d, common.seed.wrapping_add(1 + t as u64));
                    let mut rows = vec![0u64; batch];
                    let mut w = Writer::default();
                    let mut tally = SenderTally {
                        hist: LogHistogram::new(),
                        sent_reports: 0,
                        acked: 0,
                        late_events: 0,
                        max_late_ns: 0,
                    };
                    loop {
                        let event = next_event.fetch_add(1, Ordering::Relaxed);
                        let offset = interval.mul_f64(event as f64);
                        if offset >= window {
                            break;
                        }
                        let sched = t0 + offset;
                        let now = Instant::now();
                        match sched.checked_duration_since(now) {
                            Some(wait) => std::thread::sleep(wait),
                            None => {
                                // Late: the schedule does not slip
                                // (that would be coordinated omission);
                                // we record how late we started.
                                let late = now.saturating_duration_since(sched);
                                let late_ns = u64::try_from(late.as_nanos()).unwrap_or(u64::MAX);
                                if late >= interval {
                                    tally.late_events += 1;
                                }
                                tally.max_late_ns = tally.max_late_ns.max(late_ns);
                            }
                        }
                        let at = usize::try_from(event % pattern_size).unwrap_or(0);
                        let Some(entry) = pattern.get(at).and_then(|&slot| entries.get(slot))
                        else {
                            return Err("empty protocol mix".to_string());
                        };
                        stream.fill(&mut rows);
                        let first_user = event.wrapping_mul(batch_u64);
                        entry
                            .client
                            .encode_batch(&rows, common.seed, first_user, &mut w);
                        tally.acked += push_frame(&entry.addr, &entry.header, w.as_bytes())?;
                        tally.sent_reports += batch_u64;
                        // Ack latency from the *scheduled* start, so a
                        // late send shows up as latency, not as a
                        // quietly thinner sample set.
                        let lat = Instant::now().saturating_duration_since(sched);
                        tally
                            .hist
                            .record(u64::try_from(lat.as_nanos()).unwrap_or(u64::MAX));
                    }
                    Ok(tally)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("an open-loop sender thread panicked".to_string()))
            })
            .collect::<Result<_, String>>()
    })?;
    let elapsed = t0.elapsed().as_secs_f64();

    let mut hist = LogHistogram::new();
    let mut sent_reports = 0u64;
    let mut acked = 0u64;
    let mut late_events = 0u64;
    let mut max_late_ns = 0u64;
    for tally in &tallies {
        hist.merge(&tally.hist);
        sent_reports += tally.sent_reports;
        acked += tally.acked;
        late_events += tally.late_events;
        max_late_ns = max_late_ns.max(tally.max_late_ns);
    }
    let sent_batches = hist.count();

    let mix_label: Vec<String> = entries
        .iter()
        .map(|e| format!("{}={}", e.name, e.weight))
        .collect();
    eprintln!(
        "open-loop: target {rate:.0} reports/s as {batch}-report batches every {} \
         over {duration:.1} s ({} senders, mix {})",
        fmt_ns(interval_ns),
        common.clients,
        mix_label.join(","),
    );
    eprintln!(
        "sent {sent_batches} batches ({sent_reports} reports) in {elapsed:.3} s \
         ({:.0} reports/s achieved); server absorbed {acked}",
        sent_reports as f64 / elapsed.max(1e-9),
    );
    eprintln!(
        "lateness: {late_events} events started ≥ one interval late; max lateness {}",
        fmt_ns(max_late_ns)
    );
    eprintln!("{}", hist.render("batch ack latency (from scheduled send)"));
    let buckets = hist.buckets();
    let peak = buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    for (le, bucket) in &buckets {
        let width = (bucket.saturating_mul(40) / peak).max(1);
        let bar = "#".repeat(usize::try_from(width).unwrap_or(40));
        eprintln!("  <= {:>9}  {bucket:>6}  {bar}", fmt_ns(*le));
    }

    if let Some(path) = flags.get("hist-output") {
        use std::io::Write as _;
        let mut out = crate::commands::open_output(path)?;
        let json = format!(
            "{{\n  \"target_rate_per_s\": {rate},\n  \"duration_s\": {duration},\n  \
             \"batch\": {batch},\n  \"senders\": {},\n  \"mix\": [{}],\n  \
             \"interval_ns\": {interval_ns},\n  \"sent_batches\": {sent_batches},\n  \
             \"sent_reports\": {sent_reports},\n  \"acked\": {acked},\n  \
             \"late_events\": {late_events},\n  \"max_lateness_ns\": {max_late_ns},\n  \
             \"elapsed_s\": {elapsed:.6},\n  \"ack_latency\": {}\n}}\n",
            common.clients,
            mix_label
                .iter()
                .map(|m| format!("\"{m}\""))
                .collect::<Vec<_>>()
                .join(", "),
            hist.to_json(),
        );
        out.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        if path != "-" {
            eprintln!("wrote the latency histogram to {path}");
        }
    }
    Ok(())
}
