//! Hand-rolled flag parsing (the workspace builds offline with no
//! argument-parsing dependency), in the style of the bench binaries but
//! with named flags, switches, and positional arguments.

use std::collections::{HashMap, HashSet};

/// Parsed command-line flags for one subcommand.
pub struct Flags {
    values: HashMap<&'static str, String>,
    switches: HashSet<&'static str>,
    positional: Vec<String>,
}

impl Flags {
    /// Parse `args` against the subcommand's flag sets. `value_flags`
    /// take one argument (`--name value`); `switch_flags` take none.
    /// Anything not starting with `--` is positional.
    pub fn parse(
        args: &[String],
        value_flags: &'static [&'static str],
        switch_flags: &'static [&'static str],
    ) -> Result<Flags, String> {
        let mut flags = Flags {
            values: HashMap::new(),
            switches: HashSet::new(),
            positional: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let token = &args[i];
            if let Some(name) = token.strip_prefix("--") {
                if let Some(&known) = value_flags.iter().find(|&&f| f == name) {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.values.insert(known, value.clone());
                    i += 2;
                } else if let Some(&known) = switch_flags.iter().find(|&&f| f == name) {
                    flags.switches.insert(known);
                    i += 1;
                } else {
                    return Err(format!(
                        "unknown flag --{name}; supported: {}{}",
                        value_flags
                            .iter()
                            .map(|f| format!("--{f} V"))
                            .collect::<Vec<_>>()
                            .join(", "),
                        if switch_flags.is_empty() {
                            String::new()
                        } else {
                            format!(
                                ", {}",
                                switch_flags
                                    .iter()
                                    .map(|f| format!("--{f}"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        }
                    ));
                }
            } else {
                flags.positional.push(token.clone());
                i += 1;
            }
        }
        Ok(flags)
    }

    /// The value of a flag, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of a mandatory flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// Parse a flag's value, falling back to `default` when absent.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {text:?}")),
        }
    }

    /// Whether a switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// Positional (non-flag) arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_switches_and_positionals() {
        let f = Flags::parse(
            &to_vec(&["--d", "8", "a.bin", "--bits", "b.bin"]),
            &["d"],
            &["bits"],
        )
        .unwrap();
        assert_eq!(f.get("d"), Some("8"));
        assert_eq!(f.parsed("d", 0u32).unwrap(), 8);
        assert!(f.has("bits"));
        assert_eq!(f.positional(), &["a.bin".to_string(), "b.bin".to_string()]);
        assert_eq!(f.parsed("k", 2u32).unwrap(), 2); // default
    }

    #[test]
    fn rejects_unknown_flags_missing_values_and_bad_numbers() {
        assert!(Flags::parse(&to_vec(&["--nope"]), &["d"], &[]).is_err());
        assert!(Flags::parse(&to_vec(&["--d"]), &["d"], &[]).is_err());
        let f = Flags::parse(&to_vec(&["--d", "eight"]), &["d"], &[]).unwrap();
        assert!(f.parsed("d", 0u32).is_err());
        assert!(f.require("k").is_err());
    }
}
