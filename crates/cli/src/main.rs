#![forbid(unsafe_code)]
//! `ldp-cli` — the end-to-end LDP marginal-release pipeline as a
//! process surface.
//!
//! Every stage of the paper's collect-and-estimate pipeline is a
//! subcommand speaking the framed wire format of `ldp_core::frame`
//! (byte-level spec: `docs/WIRE_FORMAT.md`), so the stages compose
//! across real process boundaries:
//!
//! ```text
//! ldp-cli rows --d 8 --n 100000 \
//!   | ldp-cli encode --protocol inpht --d 8 --k 2 --eps 1.1 \
//!   | ldp-cli ingest --output snapshot.bin
//! ldp-cli query --input snapshot.bin --format csv
//! ```
//!
//! Partial aggregates built by independent `ingest` processes are
//! `merge`d into one snapshot that is byte-identical to a single-process
//! run — the `Accumulator` partition-invariance law, now crossing
//! process boundaries (proved end-to-end by `tests/cli_pipeline.rs`).
//!
//! The same law carries the serving mode: `serve` runs a long-lived
//! multi-threaded TCP collector for live report streams, `load` drives
//! it with concurrent clients, and `snapshot` / `stats` / `query
//! --connect` / `shutdown` speak its framed control plane (proved by
//! `tests/serve.rs`; operations guide: `docs/OPERATIONS.md`).

mod commands;
mod flags;
mod load;
mod serve;

use flags::Flags;

const USAGE: &str = "\
ldp-cli — marginal release under local differential privacy, as a pipeline

USAGE: ldp-cli <subcommand> [flags]

BATCH SUBCOMMANDS
  rows    Generate a CSV population.
          --d D (8) --n N (10000) --seed S (42) --generate taxi|movielens|skewed (taxi)
          --bits (emit 0/1 columns instead of row indices) --output PATH (-)
  encode  Encode CSV rows (stdin or --input) into a framed report stream.
          --protocol NAME (required; InpRR InpPS InpHT MargRR MargPS MargHT InpEM OLH CMS HCMS)
          --d D (8) --k K (2) --eps E (1.1) --seed S (42) --first-user U (0)
          --hashes G (5) --width W (256) --family-seed F (1)   [oracles only]
          --generate SRC --n N (synthesize rows instead of reading --input)
          --batch B (0; group B reports per REPORT_BATCH frame, 0 = one
          frame per report) --input PATH (-) --output PATH (-)
  ingest  Fold a report stream into a serialized accumulator snapshot.
          --input PATH (-) --output PATH (-)
  merge   Combine N snapshots of the same pipeline into one.
          --output PATH (-)  snapshot paths as positional arguments
          --connect A1,A2 (also pull live snapshots from running
          collectors and fold them in)
  query   Finalize a snapshot (or a live server) into estimates.
          --input PATH (-) | --connect ADDR   --format csv|json (csv) --normalize
          --marginal 0,3 (mechanisms: one marginal instead of all k-way)
          --value V (oracles: one frequency instead of the full domain)
          --output PATH (-)
  bench   Run a named scenario matrix and write machine-readable BENCH.json.
          --scenario NAME (see --list) --seed S (42) --output PATH (BENCH.json)
          --baseline PATH --max-regress F (0.30)  [CI regression gate]
          --list (print known scenarios)

SERVING SUBCOMMANDS
  serve   Run the concurrent aggregation server until `shutdown`.
          --listen ADDR (127.0.0.1:7878; port 0 picks a free port — the
          bound address is the first stderr line) --shards W (cores)
          --output PATH (write the final snapshot on shutdown)
          --upstream ADDR (relay mode: push the merged snapshot to a
          parent collector periodically, on every snapshot request,
          and at shutdown — builds federation trees)
          --push-every MS (5000; periodic push interval)
          --id NAME (collector identity pushed upstream; defaults to
          the checkpoint's id, else the bound address)
          --checkpoint PATH (recover it at startup if present; rewrite
          it per --checkpoint-every and at shutdown)
          --checkpoint-every N (50000; checkpoint once ≥N reports have
          been absorbed since the last one, checked at ingest acks)
  load    Drive a server with concurrent clients (traffic generator).
          --connect ADDR (required) --protocol NAME (required)
          --clients C (4) --reports M (2500; per client)
          --batch B (0; reports per REPORT_BATCH frame, 0 = one frame
          per report — see docs/OPERATIONS.md for sizing)
          --d/--k/--eps/--seed/--generate/--hashes/--width/--family-seed as encode
          Open-loop mode (docs/OPERATIONS.md, Load generation):
          --rate R (target reports/s on a fixed arrival schedule; one
          batch event every batch/R seconds, lateness tracked, per-batch
          ack latency measured from the scheduled send)
          --duration S (2.0) --batch B (256 when 0 in this mode)
          --mix margps=3,olh=1@host:port (weighted protocol mix; the
          address defaults to --connect — one server serves one
          pipeline, so point extra protocols at their own servers)
          --hist-output PATH (write the latency histogram JSON)
  snapshot  Fetch the live merged snapshot as a snapshot file.
          --connect ADDR (required) --output PATH (-)
  stats   Print a server's counters (pipeline, reports, connections).
          --connect ADDR (required)
  shutdown  Ask a server to stop gracefully.
          --connect ADDR (required)

  version Print the version and wire-format revision (also --version).
  help    Print this message.

EXIT CODES
  0  success
  1  runtime failure (bad flags or input, I/O or connection error,
     stream/header rejection, bench regression-gate failure)
  2  usage error (no subcommand, or an unknown subcommand)

The per-user randomness follows the user_rng(seed, user) schedule, so an
encode split across processes (via --first-user) or across `load`
clients is bit-identical to one process encoding everything. See
docs/WIRE_FORMAT.md for the byte-level protocol, docs/OPERATIONS.md for
running the server, docs/BENCHMARKS.md for the BENCH.json schema, and
README.md for a full pipeline walkthrough.";

/// Exit status for usage errors (no or unknown subcommand).
const EXIT_USAGE: i32 = 2;

fn version() {
    println!(
        "ldp-cli {} (wire format v{})",
        env!("CARGO_PKG_VERSION"),
        ldp_core::wire::VERSION
    );
}

fn dispatch(subcommand: &str, rest: &[String]) -> Result<(), String> {
    match subcommand {
        "rows" => {
            let f = Flags::parse(rest, &["d", "n", "seed", "generate", "output"], &["bits"])?;
            commands::rows(&f)
        }
        "encode" => {
            let f = Flags::parse(
                rest,
                &[
                    "protocol",
                    "d",
                    "k",
                    "eps",
                    "seed",
                    "first-user",
                    "hashes",
                    "width",
                    "family-seed",
                    "generate",
                    "n",
                    "batch",
                    "input",
                    "output",
                ],
                &[],
            )?;
            commands::encode(&f)
        }
        "ingest" => {
            let f = Flags::parse(rest, &["input", "output"], &[])?;
            commands::ingest(&f)
        }
        "merge" => {
            let f = Flags::parse(rest, &["output", "connect"], &[])?;
            commands::merge(&f)
        }
        "query" => {
            let f = Flags::parse(
                rest,
                &["input", "connect", "output", "format", "marginal", "value"],
                &["normalize"],
            )?;
            commands::query(&f)
        }
        "bench" => {
            let f = Flags::parse(
                rest,
                &["scenario", "seed", "output", "baseline", "max-regress"],
                &["list"],
            )?;
            commands::bench(&f)
        }
        "serve" => {
            let f = Flags::parse(
                rest,
                &[
                    "listen",
                    "shards",
                    "output",
                    "upstream",
                    "push-every",
                    "id",
                    "checkpoint",
                    "checkpoint-every",
                ],
                &[],
            )?;
            serve::serve(&f)
        }
        "load" => {
            let f = Flags::parse(
                rest,
                &[
                    "connect",
                    "protocol",
                    "clients",
                    "reports",
                    "batch",
                    "d",
                    "k",
                    "eps",
                    "seed",
                    "generate",
                    "hashes",
                    "width",
                    "family-seed",
                    "rate",
                    "duration",
                    "mix",
                    "hist-output",
                ],
                &[],
            )?;
            load::load(&f)
        }
        "snapshot" => {
            let f = Flags::parse(rest, &["connect", "output"], &[])?;
            serve::snapshot(&f)
        }
        "stats" => {
            let f = Flags::parse(rest, &["connect"], &[])?;
            serve::stats(&f)
        }
        "shutdown" => {
            let f = Flags::parse(rest, &["connect"], &[])?;
            serve::shutdown(&f)
        }
        "version" | "--version" | "-V" => {
            version();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("ldp-cli: unknown subcommand {other:?}; run `ldp-cli help` for usage");
            std::process::exit(EXIT_USAGE);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((subcommand, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(EXIT_USAGE);
    };
    if let Err(message) = dispatch(subcommand, rest) {
        eprintln!("ldp-cli {subcommand}: {message}");
        std::process::exit(1);
    }
}
