//! The serving subcommands: `serve` (the aggregation daemon), `load`
//! (a concurrent traffic generator), and the control-plane clients
//! `snapshot`, `stats`, and `shutdown`.

use crate::commands::open_output;
use crate::flags::Flags;
use ldp_bench::DataSource;
use ldp_core::frame::write_snapshot;
use ldp_core::user_rng;
use ldp_oracles::pipeline::{header_for, Client, Protocol, SketchShape};
use ldp_server::{push_report_batches, Control, Request, Response, ServeConfig, Server};
use std::time::{Duration, Instant};

/// `serve`: run the aggregation server until a graceful-shutdown
/// request arrives. With `--upstream` the server is a relay node of a
/// federation tree; with `--checkpoint` it survives crashes (see the
/// federation runbook in `docs/OPERATIONS.md`).
pub fn serve(flags: &Flags) -> Result<(), String> {
    let listen = flags.get("listen").unwrap_or("127.0.0.1:7878");
    let default_shards =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards: usize = flags.parsed("shards", default_shards)?;
    let mut config = ServeConfig::new(listen, shards);
    config.upstream = flags.get("upstream").map(str::to_string);
    config.push_every = Duration::from_millis(flags.parsed("push-every", 5_000u64)?);
    config.collector = flags.get("id").map(str::to_string);
    config.checkpoint = flags.get("checkpoint").map(std::path::PathBuf::from);
    config.checkpoint_every = flags.parsed("checkpoint-every", 50_000u64)?;
    if config.upstream.is_none() && flags.get("push-every").is_some() {
        return Err("--push-every needs --upstream".to_string());
    }
    if config.checkpoint.is_none() && flags.get("checkpoint-every").is_some() {
        return Err("--checkpoint-every needs --checkpoint".to_string());
    }
    let server = Server::bind_with(&config)?;
    // First stderr line, machine-parseable: `--listen 127.0.0.1:0` asks
    // the OS for a free port, and this is where the caller learns it.
    eprintln!("serving on {} ({} shards)", server.local_addr()?, shards);
    if let Some(recovery) = server.recovery() {
        eprintln!(
            "recovered checkpoint: {} reports, push epoch {}, {} downstream collectors",
            recovery.reports, recovery.epoch, recovery.downstream
        );
    }
    let summary = server.run()?;
    eprintln!(
        "shutdown: absorbed {} reports over {} connections",
        summary.reports, summary.connections
    );
    if let Some(path) = flags.get("output") {
        match &summary.snapshot {
            Some((header, state)) => {
                write_snapshot(open_output(path)?, header, state).map_err(|e| e.to_string())?;
                eprintln!(
                    "wrote the final snapshot to {path} ({} state bytes)",
                    state.len()
                );
            }
            None => eprintln!("no report stream arrived; {path} not written"),
        }
    }
    Ok(())
}

/// `load`: drive a running server with N concurrent client connections
/// each pushing M reports. Users are numbered `0..N*M` across the
/// clients in contiguous slices and encoded with the `user_rng(seed,
/// user)` schedule, so the union of all connections is byte-identical
/// to `ldp-cli encode --generate <src> --n N*M --seed <seed>` — a
/// live-server snapshot after `load` must equal a serial `ingest` of
/// that stream.
pub fn load(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("connect")?;
    let protocol = Protocol::parse(flags.require("protocol")?)?;
    let d: u32 = flags.parsed("d", 8)?;
    let k: u32 = flags.parsed("k", 2)?;
    let eps: f64 = flags.parsed("eps", 1.1)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let clients: usize = flags.parsed("clients", 4)?;
    let per_client: usize = flags.parsed("reports", 2_500)?;
    // Reports per `REPORT_BATCH` frame; 0 pushes one frame per report
    // (the wire-v1 shape). See docs/OPERATIONS.md for sizing guidance.
    let batch: usize = flags.parsed("batch", 0)?;
    let sketch = SketchShape {
        hashes: flags.parsed("hashes", 5)?,
        width: flags.parsed("width", 256)?,
        family_seed: flags.parsed("family-seed", 1)?,
    };
    if !(1..=63).contains(&d) {
        return Err(format!("--d must be in 1..=63, got {d}"));
    }
    if k < 1 || k > d {
        return Err(format!("--k must be in 1..={d}, got {k}"));
    }
    if clients == 0 || per_client == 0 {
        return Err("--clients and --reports must be at least 1".to_string());
    }
    let source = match flags.get("generate").unwrap_or("taxi") {
        "taxi" => DataSource::Taxi,
        "movielens" => DataSource::MovieLens,
        "skewed" => DataSource::Skewed,
        other => {
            return Err(format!(
                "unknown --generate source {other:?}; expected taxi, movielens or skewed"
            ))
        }
    };

    let total = clients * per_client;
    let data = source.generate(d, total, seed);
    let header = header_for(protocol, d, k, eps, sketch);
    let client = Client::from_header(&header)?;

    // Encode every client's slice up front (concurrently), so the timed
    // phase measures the serving path, not client-side encoding.
    let rows = data.rows();
    let frames: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
        rows.chunks(per_client)
            .enumerate()
            .map(|(c, chunk)| {
                let client = &client;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, &row)| {
                            let user = (c * per_client + i) as u64;
                            let mut rng = user_rng(seed, user);
                            client.encode_report(row, &mut rng)
                        })
                        .collect::<Vec<Vec<u8>>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "an encoder thread panicked".to_string())
            })
            .collect::<Result<_, String>>()
    })?;
    let wire_bytes: usize = frames.iter().flatten().map(Vec::len).sum();

    let t0 = Instant::now();
    let acked: u64 = std::thread::scope(|scope| {
        frames
            .iter()
            .map(|slice| scope.spawn(move || push_report_batches(addr, &header, slice, batch)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("a load client thread panicked".to_string()))
            })
            .sum::<Result<u64, String>>()
    })?;
    let elapsed = t0.elapsed().as_secs_f64();
    eprintln!(
        "pushed {total} {} reports ({wire_bytes} wire bytes) over {clients} connections \
         in {elapsed:.3} s ({:.0} reports/s); server absorbed {acked}",
        protocol.name(),
        total as f64 / elapsed.max(1e-9),
    );
    Ok(())
}

/// `snapshot`: fetch the live merged snapshot from a running server and
/// write it as a snapshot file — byte-identical to what `ldp-cli
/// ingest` would have produced from the same reports.
pub fn snapshot(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("connect")?;
    let mut control = Control::connect(addr)?;
    match control.request(&Request::Snapshot)? {
        Response::Snapshot { header, state } => {
            let path = flags.get("output").unwrap_or("-");
            write_snapshot(open_output(path)?, &header, &state).map_err(|e| e.to_string())?;
            eprintln!("live snapshot: {} state bytes", state.len());
            Ok(())
        }
        other => Err(format!("unexpected snapshot response: {other:?}")),
    }
}

/// `stats`: print a running server's counters.
pub fn stats(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("connect")?;
    let mut control = Control::connect(addr)?;
    match control.request(&Request::Stats)? {
        Response::Stats(s) => {
            match &s.header {
                Some(h) => {
                    let name = Protocol::from_header(h).map_or("?", Protocol::name);
                    println!("pipeline: {name} d={} k={} eps={}", h.d, h.k, h.eps);
                }
                None => println!("pipeline: none (no report stream yet)"),
            }
            println!(
                "reports: {} absorbed, {} frames rejected",
                s.reports, s.rejected_frames
            );
            println!("workers: {}", s.workers);
            println!(
                "connections: {} accepted, {} active",
                s.connections_accepted, s.connections_active
            );
            println!("uptime: {:.1} s", s.uptime_ms as f64 / 1e3);
            Ok(())
        }
        other => Err(format!("unexpected stats response: {other:?}")),
    }
}

/// `shutdown`: ask a running server to stop gracefully.
pub fn shutdown(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("connect")?;
    let mut control = Control::connect(addr)?;
    match control.request(&Request::Shutdown)? {
        Response::Shutdown(reports) => {
            eprintln!("server shutting down after {reports} absorbed reports");
            Ok(())
        }
        other => Err(format!("unexpected shutdown response: {other:?}")),
    }
}
