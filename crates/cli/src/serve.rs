//! The serving subcommands: `serve` (the aggregation daemon) and the
//! control-plane clients `snapshot`, `stats`, and `shutdown` (the
//! traffic generator lives in `crate::load`).

use crate::commands::open_output;
use crate::flags::Flags;
use ldp_core::frame::write_snapshot;
use ldp_oracles::pipeline::Protocol;
use ldp_server::{Control, Request, Response, ServeConfig, Server};
use std::time::Duration;

/// `serve`: run the aggregation server until a graceful-shutdown
/// request arrives. With `--upstream` the server is a relay node of a
/// federation tree; with `--checkpoint` it survives crashes (see the
/// federation runbook in `docs/OPERATIONS.md`).
pub fn serve(flags: &Flags) -> Result<(), String> {
    let listen = flags.get("listen").unwrap_or("127.0.0.1:7878");
    let default_shards =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let shards: usize = flags.parsed("shards", default_shards)?;
    let mut config = ServeConfig::new(listen, shards);
    config.upstream = flags.get("upstream").map(str::to_string);
    config.push_every = Duration::from_millis(flags.parsed("push-every", 5_000u64)?);
    config.collector = flags.get("id").map(str::to_string);
    config.checkpoint = flags.get("checkpoint").map(std::path::PathBuf::from);
    config.checkpoint_every = flags.parsed("checkpoint-every", 50_000u64)?;
    if config.upstream.is_none() && flags.get("push-every").is_some() {
        return Err("--push-every needs --upstream".to_string());
    }
    if config.checkpoint.is_none() && flags.get("checkpoint-every").is_some() {
        return Err("--checkpoint-every needs --checkpoint".to_string());
    }
    let server = Server::bind_with(&config)?;
    // First stderr line, machine-parseable: `--listen 127.0.0.1:0` asks
    // the OS for a free port, and this is where the caller learns it.
    eprintln!("serving on {} ({} shards)", server.local_addr()?, shards);
    if let Some(recovery) = server.recovery() {
        eprintln!(
            "recovered checkpoint: {} reports, push epoch {}, {} downstream collectors",
            recovery.reports, recovery.epoch, recovery.downstream
        );
    }
    let summary = server.run()?;
    eprintln!(
        "shutdown: absorbed {} reports over {} connections",
        summary.reports, summary.connections
    );
    if let Some(path) = flags.get("output") {
        match &summary.snapshot {
            Some((header, state)) => {
                write_snapshot(open_output(path)?, header, state).map_err(|e| e.to_string())?;
                eprintln!(
                    "wrote the final snapshot to {path} ({} state bytes)",
                    state.len()
                );
            }
            None => eprintln!("no report stream arrived; {path} not written"),
        }
    }
    Ok(())
}

/// `snapshot`: fetch the live merged snapshot from a running server and
/// write it as a snapshot file — byte-identical to what `ldp-cli
/// ingest` would have produced from the same reports.
pub fn snapshot(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("connect")?;
    let mut control = Control::connect(addr)?;
    match control.request(&Request::Snapshot)? {
        Response::Snapshot { header, state } => {
            let path = flags.get("output").unwrap_or("-");
            write_snapshot(open_output(path)?, &header, &state).map_err(|e| e.to_string())?;
            eprintln!("live snapshot: {} state bytes", state.len());
            Ok(())
        }
        other => Err(format!("unexpected snapshot response: {other:?}")),
    }
}

/// `stats`: print a running server's counters.
pub fn stats(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("connect")?;
    let mut control = Control::connect(addr)?;
    match control.request(&Request::Stats)? {
        Response::Stats(s) => {
            match &s.header {
                Some(h) => {
                    let name = Protocol::from_header(h).map_or("?", Protocol::name);
                    println!("pipeline: {name} d={} k={} eps={}", h.d, h.k, h.eps);
                }
                None => println!("pipeline: none (no report stream yet)"),
            }
            println!(
                "reports: {} absorbed, {} frames rejected",
                s.reports, s.rejected_frames
            );
            println!("workers: {}", s.workers);
            println!(
                "connections: {} accepted, {} active",
                s.connections_accepted, s.connections_active
            );
            println!("uptime: {:.1} s", s.uptime_ms as f64 / 1e3);
            Ok(())
        }
        other => Err(format!("unexpected stats response: {other:?}")),
    }
}

/// `shutdown`: ask a running server to stop gracefully.
pub fn shutdown(flags: &Flags) -> Result<(), String> {
    let addr = flags.require("connect")?;
    let mut control = Control::connect(addr)?;
    match control.request(&Request::Shutdown)? {
        Response::Shutdown(reports) => {
            eprintln!("server shutting down after {reports} absorbed reports");
            Ok(())
        }
        other => Err(format!("unexpected shutdown response: {other:?}")),
    }
}
