//! The batch-pipeline `ldp-cli` subcommands (the serving ones live in
//! `crate::serve`).

use crate::flags::Flags;
use ldp_bench::scenario::{parse_bench_json, regressions, run_scenario, to_json, Scenario};
use ldp_bench::DataSource;
use ldp_bits::{masks_of_weight, Mask};
use ldp_core::frame::{read_snapshot, write_snapshot, FrameReader, FrameWriter, StreamHeader};
use ldp_core::wire::{tag, Writer};
use ldp_core::{clamp_normalize, user_rng, MarginalEstimator};
use ldp_oracles::pipeline::{
    decode_report_batch_into, header_for, Client, PipelineAccumulator, PipelineEstimate,
    PipelineReport, Protocol, SketchShape,
};
use ldp_oracles::FrequencyOracle;
use ldp_server::{Control, QueryRequest, QueryTarget, Request, Response};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Open `path` for reading (`-` is stdin).
pub fn open_input(path: &str) -> Result<Box<dyn BufRead>, String> {
    if path == "-" {
        Ok(Box::new(BufReader::new(std::io::stdin())))
    } else {
        File::open(path)
            .map(|f| Box::new(BufReader::new(f)) as Box<dyn BufRead>)
            .map_err(|e| format!("cannot open {path}: {e}"))
    }
}

/// Open `path` for writing (`-` is stdout).
pub fn open_output(path: &str) -> Result<Box<dyn Write>, String> {
    if path == "-" {
        Ok(Box::new(BufWriter::new(std::io::stdout())))
    } else {
        File::create(path)
            .map(|f| Box::new(BufWriter::new(f)) as Box<dyn Write>)
            .map_err(|e| format!("cannot create {path}: {e}"))
    }
}

/// Read the mandatory header frame that opens every report stream.
fn read_stream_header<R: Read>(
    reader: &mut FrameReader<R>,
    what: &str,
) -> Result<StreamHeader, String> {
    let frame = reader
        .next_frame()
        .map_err(|e| format!("{what}: {e}"))?
        .ok_or_else(|| format!("{what}: empty stream (expected a header frame)"))?;
    StreamHeader::from_bytes(&frame).map_err(|e| format!("{what}: bad header frame: {e}"))
}

/// `encode`: CSV rows in, framed report stream out.
pub fn encode(flags: &Flags) -> Result<(), String> {
    let protocol = Protocol::parse(flags.require("protocol")?)?;
    let d: u32 = flags.parsed("d", 8)?;
    let k: u32 = flags.parsed("k", 2)?;
    let eps: f64 = flags.parsed("eps", 1.1)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let first_user: u64 = flags.parsed("first-user", 0)?;
    let batch: usize = flags.parsed("batch", 0)?;
    let sketch = SketchShape {
        hashes: flags.parsed("hashes", 5)?,
        width: flags.parsed("width", 256)?,
        family_seed: flags.parsed("family-seed", 1)?,
    };
    if !(1..=63).contains(&d) {
        return Err(format!("--d must be in 1..=63, got {d}"));
    }
    if k < 1 || k > d {
        return Err(format!("--k must be in 1..={d}, got {k}"));
    }

    let rows: Vec<u64> = match flags.get("generate") {
        Some(source_name) => {
            let n: usize = flags.parsed("n", 10_000)?;
            let source = match source_name {
                "taxi" => DataSource::Taxi,
                "movielens" => DataSource::MovieLens,
                "skewed" => DataSource::Skewed,
                other => {
                    return Err(format!(
                        "unknown --generate source {other:?}; expected taxi, movielens or skewed"
                    ))
                }
            };
            source.generate(d, n, seed).rows().to_vec()
        }
        None => {
            let input = flags.get("input").unwrap_or("-");
            ldp_data::csv::read_rows(open_input(input)?, d).map_err(|e| e.to_string())?
        }
    };

    let header = header_for(protocol, d, k, eps, sketch);
    // Build the client from the header (not the flags) so `encode`
    // exercises the exact rehydration path a remote peer would use.
    let client = Client::from_header(&header)?;

    let out = open_output(flags.get("output").unwrap_or("-"))?;
    let mut writer = FrameWriter::new(out);
    writer
        .write_frame(&header.to_bytes())
        .map_err(|e| e.to_string())?;
    let mut wire_bytes = 0usize;
    // With `--batch N`, reports are grouped into `REPORT_BATCH` frames
    // (wire v2) of up to N reports via the batched encode kernels — one
    // reusable frame buffer, no per-report allocation, byte-identical
    // to batching the serial loop's reports (tests/encode_kernels.rs).
    // `--batch 0` keeps the wire-v1 one-frame-per-report shape.
    if batch == 0 {
        for (i, &row) in rows.iter().enumerate() {
            let mut rng = user_rng(seed, first_user + i as u64);
            let report = client.encode_report(row, &mut rng);
            wire_bytes += report.len();
            writer.write_frame(&report).map_err(|e| e.to_string())?;
        }
    } else {
        let mut w = Writer::default();
        for (c, chunk) in rows.chunks(batch).enumerate() {
            client.encode_batch(chunk, seed, first_user + (c * batch) as u64, &mut w);
            wire_bytes += w.len();
            writer
                .write_frame(w.as_bytes())
                .map_err(|e| e.to_string())?;
        }
    }
    writer.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "encoded {} {} reports ({} wire bytes, users {}..{})",
        rows.len(),
        protocol.name(),
        wire_bytes,
        first_user,
        first_user + rows.len() as u64
    );
    Ok(())
}

/// How many reports `ingest` decodes into its reusable scratch before
/// each `absorb_batch` call. Large enough to amortize the batch
/// kernels' setup (dispatch hoisting, the InpEM dense scratch), small
/// enough that the scratch stays cache-resident.
const INGEST_BATCH: usize = 1024;

/// `ingest`: fold a report stream into a snapshot.
///
/// The read loop is the zero-allocation ingest path: one reusable frame
/// buffer, a bounded scratch of [`INGEST_BATCH`] decoded reports whose
/// slots (and heap capacity) are reused across batches via
/// `PipelineReport::decode_into`, and one `absorb_batch` per filled
/// scratch — steady state performs no per-report allocation.
pub fn ingest(flags: &Flags) -> Result<(), String> {
    let input = flags.get("input").unwrap_or("-");
    let mut reader = FrameReader::new(open_input(input)?);
    let header = read_stream_header(&mut reader, "report stream")?;
    let mut acc = PipelineAccumulator::empty(&header)?;
    let mut batch: Vec<PipelineReport> = Vec::with_capacity(INGEST_BATCH);
    // Separate slot-reusing scratch for `REPORT_BATCH` envelope frames
    // (wire v2), which carry their own batch of reports.
    let mut envelope: Vec<PipelineReport> = Vec::new();
    let mut frame = Vec::new();
    let mut eof = false;
    while !eof {
        let mut filled = 0usize;
        while filled < INGEST_BATCH {
            if !reader
                .next_frame_into(&mut frame)
                .map_err(|e| format!("report stream: {e}"))?
            {
                eof = true;
                break;
            }
            if frame.first() == Some(&tag::REPORT_BATCH) {
                // Settle pending single reports first, then the whole
                // envelope (absorption order is immaterial by the
                // partition-invariance law, but this keeps counts easy
                // to follow).
                acc.absorb_batch(&batch[..filled])?;
                filled = 0;
                let n = decode_report_batch_into(&frame, &mut envelope)?;
                acc.absorb_batch(&envelope[..n])?;
                continue;
            }
            if filled < batch.len() {
                batch[filled].decode_into(&frame)?;
            } else {
                batch.push(PipelineReport::from_bytes(&frame)?);
            }
            filled += 1;
        }
        acc.absorb_batch(&batch[..filled])?;
    }
    let out = open_output(flags.get("output").unwrap_or("-"))?;
    let state = acc.to_bytes();
    write_snapshot(out, &header, &state).map_err(|e| e.to_string())?;
    eprintln!(
        "ingested {} reports into a {}-byte snapshot",
        acc.report_count(),
        state.len()
    );
    Ok(())
}

/// `merge`: combine N snapshots of the same pipeline into one.
pub fn merge(flags: &Flags) -> Result<(), String> {
    let inputs = flags.positional();
    // `--connect a:1,b:2`: pull the live merged snapshot from running
    // collectors over the control plane and fold them in alongside any
    // snapshot files — the offline half of federation (the online half
    // is `serve --upstream`).
    let remotes: Vec<&str> = flags
        .get("connect")
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .collect()
        })
        .unwrap_or_default();
    if inputs.is_empty() && remotes.is_empty() {
        return Err("merge needs at least one snapshot path or --connect address".to_string());
    }
    let mut sources: Vec<(String, StreamHeader, Vec<u8>)> = Vec::new();
    for path in inputs {
        let (header, state) =
            read_snapshot(open_input(path)?).map_err(|e| format!("{path}: {e}"))?;
        sources.push((path.clone(), header, state));
    }
    for addr in remotes {
        let mut control = Control::connect(addr)?;
        match control
            .request(&Request::Snapshot)
            .map_err(|e| format!("{addr}: {e}"))?
        {
            Response::Snapshot { header, state } => sources.push((addr.to_string(), header, state)),
            other => return Err(format!("{addr}: unexpected snapshot response: {other:?}")),
        }
    }
    let total = sources.len();
    let mut merged: Option<(String, StreamHeader, PipelineAccumulator)> = None;
    for (source, header, state) in sources {
        let acc = PipelineAccumulator::from_state(&header, &state)
            .map_err(|e| format!("{source}: {e}"))?;
        merged = Some(match merged {
            None => (source, header, acc),
            Some((first, base_header, mut base)) => {
                if header != base_header {
                    return Err(format!(
                        "{source}: snapshot header differs from {first} — refusing to merge \
                         partial aggregates of different pipelines"
                    ));
                }
                base.merge(acc).map_err(|e| format!("{source}: {e}"))?;
                (first, base_header, base)
            }
        });
    }
    let Some((_, header, acc)) = merged else {
        return Err("merge needs at least one snapshot".to_string());
    };
    let state = acc.to_bytes();
    let out = open_output(flags.get("output").unwrap_or("-"))?;
    write_snapshot(out, &header, &state).map_err(|e| e.to_string())?;
    eprintln!(
        "merged {total} snapshots: {} reports, {} state bytes",
        acc.report_count(),
        state.len()
    );
    Ok(())
}

/// Parse `--marginal 0,3` into a mask over `d` attributes.
fn parse_marginal(text: &str, d: u32) -> Result<Mask, String> {
    let mut attrs = Vec::new();
    for field in text.split(',') {
        let attr: u32 = field
            .trim()
            .parse()
            .map_err(|_| format!("bad attribute index {field:?} in --marginal"))?;
        if attr >= d {
            return Err(format!("attribute {attr} is outside the d = {d} domain"));
        }
        if attrs.contains(&attr) {
            return Err(format!("attribute {attr} repeats in --marginal"));
        }
        attrs.push(attr);
    }
    if attrs.is_empty() {
        return Err("--marginal needs at least one attribute".to_string());
    }
    attrs.sort_unstable();
    Ok(Mask::from_attrs(&attrs))
}

/// Attribute list of a mask, for output labels (`0+3`).
fn mask_label(mask: Mask) -> String {
    mask.attrs()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

/// Where `query` evaluates estimates: a finalized local snapshot, or a
/// live server reached over a control connection (`--connect`). Both
/// paths print identical output for the same absorbed reports — the
/// server computes with the exact code the local path uses.
enum QuerySource {
    /// A finalized snapshot read from a file or stdin.
    Local(PipelineEstimate),
    /// A control session against a running `ldp-cli serve`.
    Remote(Control),
}

impl QuerySource {
    /// One marginal table (mechanism pipelines).
    fn marginal(&mut self, mask: Mask, normalize: bool) -> Result<Vec<f64>, String> {
        match self {
            QuerySource::Local(PipelineEstimate::Mechanism(est)) => {
                let raw = est.marginal(mask);
                Ok(if normalize {
                    clamp_normalize(&raw)
                } else {
                    raw
                })
            }
            QuerySource::Local(PipelineEstimate::Oracle(_)) => {
                Err("oracle snapshots answer value queries, not marginals".to_string())
            }
            QuerySource::Remote(control) => {
                match control.request(&Request::Query(QueryRequest {
                    target: QueryTarget::Marginal(mask.0),
                    normalize,
                }))? {
                    Response::Query(table) => Ok(table),
                    other => Err(format!("unexpected query response: {other:?}")),
                }
            }
        }
    }

    /// One frequency estimate (oracle pipelines).
    fn value(&mut self, value: u64) -> Result<f64, String> {
        match self {
            QuerySource::Local(PipelineEstimate::Oracle(oracle)) => Ok(oracle.estimate(value)),
            QuerySource::Local(PipelineEstimate::Mechanism(_)) => {
                Err("mechanism snapshots answer marginal queries, not values".to_string())
            }
            QuerySource::Remote(control) => {
                match control.request(&Request::Query(QueryRequest {
                    target: QueryTarget::Value(value),
                    normalize: false,
                }))? {
                    Response::Query(table) => table
                        .first()
                        .copied()
                        .ok_or_else(|| "empty query response".to_string()),
                    other => Err(format!("unexpected query response: {other:?}")),
                }
            }
        }
    }

    /// The highest marginal order answerable (locally known from the
    /// estimate; remotely the header's k — the server re-validates).
    fn max_k(&self, header: &StreamHeader) -> u32 {
        match self {
            QuerySource::Local(PipelineEstimate::Mechanism(est)) => est.max_k(),
            _ => header.k,
        }
    }
}

/// `query`: finalize a snapshot — or interrogate a live server — into
/// estimates.
pub fn query(flags: &Flags) -> Result<(), String> {
    let format = flags.get("format").unwrap_or("csv");
    if format != "csv" && format != "json" {
        return Err(format!("--format must be csv or json, got {format:?}"));
    }
    let normalize = flags.has("normalize");
    // A single named target goes to the server's query endpoint; an
    // enumeration (all k-way marginals, or an oracle's full domain)
    // fetches one snapshot and finalizes locally instead — identical
    // output (proved by tests/serve.rs) for one round trip and one
    // collect+merge, rather than one per mask or domain value.
    let single_target = flags.get("marginal").is_some() || flags.get("value").is_some();
    let (header, reports, mut source) = match flags.get("connect") {
        Some(addr) => {
            let mut control = Control::connect(addr)?;
            if single_target {
                let stats = match control.request(&Request::Stats)? {
                    Response::Stats(stats) => stats,
                    other => return Err(format!("unexpected stats response: {other:?}")),
                };
                let header = stats
                    .header
                    .ok_or("server has not ingested any report stream yet")?;
                (header, stats.reports, QuerySource::Remote(control))
            } else {
                match control.request(&Request::Snapshot)? {
                    Response::Snapshot { header, state } => {
                        let acc = PipelineAccumulator::from_state(&header, &state)?;
                        let reports = acc.report_count();
                        (header, reports, QuerySource::Local(acc.finalize()))
                    }
                    other => return Err(format!("unexpected snapshot response: {other:?}")),
                }
            }
        }
        None => {
            let input = flags.get("input").unwrap_or("-");
            let (header, state) =
                read_snapshot(open_input(input)?).map_err(|e| format!("{input}: {e}"))?;
            let acc = PipelineAccumulator::from_state(&header, &state)?;
            let reports = acc.report_count();
            (header, reports, QuerySource::Local(acc.finalize()))
        }
    };
    if reports == 0 {
        return Err("no reports collected; nothing to estimate".to_string());
    }
    let protocol = Protocol::from_header(&header).map_or("?", Protocol::name);
    let mut out = open_output(flags.get("output").unwrap_or("-"))?;

    if header.mechanism_kind().is_some() {
        let max_k = source.max_k(&header);
        let k_query = header.k.min(max_k);
        let masks: Vec<Mask> = match flags.get("marginal") {
            Some(text) => {
                let mask = parse_marginal(text, header.d)?;
                if mask.weight() > max_k {
                    return Err(format!(
                        "marginal order {} exceeds the collected k = {max_k}",
                        mask.weight()
                    ));
                }
                vec![mask]
            }
            None => masks_of_weight(header.d, k_query).collect(),
        };
        match format {
            "csv" => {
                writeln!(out, "marginal,cell,estimate").map_err(|e| e.to_string())?;
                for &mask in &masks {
                    let label = mask_label(mask);
                    for (cell, v) in source.marginal(mask, normalize)?.iter().enumerate() {
                        writeln!(out, "{label},{cell},{v}").map_err(|e| e.to_string())?;
                    }
                }
            }
            _ => {
                writeln!(
                    out,
                    "{{\n  \"protocol\": \"{protocol}\", \"d\": {}, \"k\": {}, \
                     \"reports\": {reports}, \"normalized\": {normalize},",
                    header.d, header.k
                )
                .map_err(|e| e.to_string())?;
                writeln!(out, "  \"marginals\": [").map_err(|e| e.to_string())?;
                for (i, &mask) in masks.iter().enumerate() {
                    let attrs: Vec<String> = mask.attrs().map(|a| a.to_string()).collect();
                    let table: Vec<String> = source
                        .marginal(mask, normalize)?
                        .iter()
                        .map(|v| v.to_string())
                        .collect();
                    writeln!(
                        out,
                        "    {{\"attrs\": [{}], \"table\": [{}]}}{}",
                        attrs.join(", "),
                        table.join(", "),
                        if i + 1 == masks.len() { "" } else { "," }
                    )
                    .map_err(|e| e.to_string())?;
                }
                writeln!(out, "  ]\n}}").map_err(|e| e.to_string())?;
            }
        }
    } else {
        let values: Vec<u64> = match flags.get("value") {
            Some(text) => {
                let v: u64 = text.parse().map_err(|_| format!("bad --value {text:?}"))?;
                if header.d < 64 && v >> header.d != 0 {
                    return Err(format!("value {v} is outside the d = {} domain", header.d));
                }
                vec![v]
            }
            None => {
                if header.d > 24 {
                    return Err(format!(
                        "full-domain query over 2^{} values is too large; pass --value",
                        header.d
                    ));
                }
                (0..(1u64 << header.d)).collect()
            }
        };
        match format {
            "csv" => {
                writeln!(out, "value,estimate").map_err(|e| e.to_string())?;
                for &v in &values {
                    writeln!(out, "{v},{}", source.value(v)?).map_err(|e| e.to_string())?;
                }
            }
            _ => {
                writeln!(
                    out,
                    "{{\n  \"protocol\": \"{protocol}\", \"d\": {}, \"reports\": {reports},",
                    header.d
                )
                .map_err(|e| e.to_string())?;
                let cells: Vec<String> = values
                    .iter()
                    .map(|&v| {
                        source
                            .value(v)
                            .map(|est| format!("{{\"value\": {v}, \"estimate\": {est}}}"))
                    })
                    .collect::<Result<_, String>>()?;
                writeln!(out, "  \"frequencies\": [{}]\n}}", cells.join(", "))
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}

/// `bench`: run a named scenario, emit `BENCH.json`, optionally gate
/// against a committed baseline.
pub fn bench(flags: &Flags) -> Result<(), String> {
    if flags.has("list") {
        for name in Scenario::NAMES {
            println!("{name}");
        }
        return Ok(());
    }
    let name = flags.require("scenario")?;
    let scenario = Scenario::by_name(name).ok_or_else(|| {
        format!(
            "unknown scenario {name:?}; known scenarios: {}",
            Scenario::NAMES.join(", ")
        )
    })?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let max_regress: f64 = flags.parsed("max-regress", 0.30)?;
    if !(0.0..1.0).contains(&max_regress) {
        return Err(format!(
            "--max-regress must be in [0, 1), got {max_regress}"
        ));
    }

    eprintln!(
        "scenario {} ({} points, {} shards, best of {} reps)",
        scenario.name,
        scenario.points.len(),
        scenario.merge_shards,
        scenario.reps
    );
    let results = run_scenario(&scenario, seed, |r| {
        let batch = if r.point.batch > 0 {
            format!(" b={}", r.point.batch)
        } else {
            String::new()
        };
        eprintln!(
            "  {:>6}{batch} d={} k={} n={:>7}: {:>12.0} reports/s  {:>9.0} merges/s  \
             {:>7} snapshot B",
            r.point.mechanism.name(),
            r.point.d,
            r.point.k,
            r.point.n,
            r.reports_per_sec,
            r.merges_per_sec,
            r.snapshot_bytes
        );
    });

    let json = to_json(scenario.name, &results);
    let output = flags.get("output").unwrap_or("BENCH.json");
    let mut out = open_output(output)?;
    out.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    if output != "-" {
        eprintln!("wrote {output}");
    }

    if let Some(baseline_path) = flags.get("baseline") {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
        let (baseline_name, baseline) =
            parse_bench_json(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
        if baseline_name != scenario.name {
            return Err(format!(
                "baseline {baseline_path} is for scenario {baseline_name:?}, not {:?}",
                scenario.name
            ));
        }
        let problems = regressions(&results, &baseline, max_regress);
        if problems.is_empty() {
            eprintln!(
                "regression gate: all {} points within {:.0}% of {}",
                baseline.len(),
                max_regress * 100.0,
                baseline_path
            );
        } else {
            for p in &problems {
                eprintln!("regression: {p}");
            }
            return Err(format!(
                "bench regression gate failed: {} of {} points regressed more than {:.0}%",
                problems.len(),
                baseline.len(),
                max_regress * 100.0
            ));
        }
    }
    Ok(())
}

/// `rows`: generate a CSV population (helper for quickstarts and tests).
pub fn rows(flags: &Flags) -> Result<(), String> {
    let d: u32 = flags.parsed("d", 8)?;
    let n: usize = flags.parsed("n", 10_000)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let source = match flags.get("generate").unwrap_or("taxi") {
        "taxi" => DataSource::Taxi,
        "movielens" => DataSource::MovieLens,
        "skewed" => DataSource::Skewed,
        other => {
            return Err(format!(
                "unknown --generate source {other:?}; expected taxi, movielens or skewed"
            ))
        }
    };
    if !(1..=63).contains(&d) {
        return Err(format!("--d must be in 1..=63, got {d}"));
    }
    let data = source.generate(d, n, seed);
    let out = open_output(flags.get("output").unwrap_or("-"))?;
    data.write_csv(out, flags.has("bits"))
        .map_err(|e| e.to_string())?;
    Ok(())
}
