//! Fast Walsh–Hadamard transform.

/// In-place *unnormalized* Walsh–Hadamard transform.
///
/// Computes `y[α] = Σ_η (−1)^{⟨α,η⟩} x[η]` in `O(n log n)`. The transform
/// is an involution up to scale: applying it twice multiplies by `n`.
/// Panics unless `data.len()` is a power of two.
pub fn fwht(data: &mut [f64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT length must be a power of two");
    let mut h = 1;
    while h < n {
        for chunk in data.chunks_exact_mut(2 * h) {
            let (lo, hi) = chunk.split_at_mut(h);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = x + y;
                *b = x - y;
            }
        }
        h *= 2;
    }
}

/// In-place *orthonormal* Walsh–Hadamard transform (Definition 3.5):
/// multiplies by the symmetric orthogonal matrix `φ` with
/// `φ[i][j] = 2^{−d/2} (−1)^{⟨i,j⟩}`. Self-inverse.
pub fn fwht_normalized(data: &mut [f64]) {
    fwht(data);
    let scale = 1.0 / (data.len() as f64).sqrt();
    for v in data.iter_mut() {
        *v *= scale;
    }
}

/// Inverse of the unnormalized [`fwht`]: applies the transform and divides
/// by `n`.
pub fn fwht_inverse(data: &mut [f64]) {
    fwht(data);
    let scale = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v *= scale;
    }
}

/// The scaled Hadamard coefficients of a distribution:
/// `c_α = Σ_η (−1)^{⟨α,η⟩} t[η]`.
///
/// For a probability distribution `t`, `c_0 = 1` and `c_α ∈ [−1, 1]`; the
/// paper's orthonormal coefficients are `θ_α = 2^{−d/2} c_α`.
#[must_use]
pub fn scaled_coefficients(dist: &[f64]) -> Vec<f64> {
    let mut out = dist.to_vec();
    fwht(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_bits::pm_one;
    use proptest::prelude::*;

    fn naive_wht(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|e| pm_one(a as u64, e as u64) * x[e])
                    .sum::<f64>()
            })
            .collect()
    }

    #[test]
    fn matches_naive_small() {
        for d in 0..=6u32 {
            let n = 1usize << d;
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.3).collect();
            let mut fast = x.clone();
            fwht(&mut fast);
            let slow = naive_wht(&x);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "d={d}");
            }
        }
    }

    #[test]
    fn point_mass_gives_signs() {
        // One-hot input at position j: c_α = (−1)^{⟨α,j⟩}, exactly the
        // value a user computes locally in InpHT.
        let d = 4u32;
        let n = 1usize << d;
        for j in 0..n {
            let mut x = vec![0.0; n];
            x[j] = 1.0;
            fwht(&mut x);
            for (a, v) in x.iter().enumerate() {
                assert_eq!(*v, pm_one(a as u64, j as u64));
            }
        }
    }

    #[test]
    fn normalized_is_involution() {
        let x: Vec<f64> = (0..32).map(|i| (f64::from(i) * 0.7).cos()).collect();
        let mut y = x.clone();
        fwht_normalized(&mut y);
        fwht_normalized(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let x: Vec<f64> = (0..64).map(|i| 1.0 / (1.0 + f64::from(i))).collect();
        let mut y = x.clone();
        fwht(&mut y);
        fwht_inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn coefficient_zero_is_total_mass() {
        let dist = vec![0.1, 0.2, 0.3, 0.4];
        let c = scaled_coefficients(&dist);
        assert!((c[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![0.0; 3];
        fwht(&mut x);
    }

    proptest! {
        #[test]
        fn parseval(xs in proptest::collection::vec(-1.0f64..1.0, 16)) {
            // Orthonormal transform preserves the l2 norm.
            let mut y = xs.clone();
            fwht_normalized(&mut y);
            let n1: f64 = xs.iter().map(|v| v * v).sum();
            let n2: f64 = y.iter().map(|v| v * v).sum();
            prop_assert!((n1 - n2).abs() < 1e-9);
        }

        #[test]
        fn linearity(
            xs in proptest::collection::vec(-1.0f64..1.0, 8),
            ys in proptest::collection::vec(-1.0f64..1.0, 8),
        ) {
            let mut sum: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();
            fwht(&mut sum);
            let mut tx = xs.clone();
            let mut ty = ys.clone();
            fwht(&mut tx);
            fwht(&mut ty);
            for i in 0..8 {
                prop_assert!((sum[i] - tx[i] - ty[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn coefficients_bounded_for_distributions(
            raw in proptest::collection::vec(0.0f64..1.0, 16)
        ) {
            let total: f64 = raw.iter().sum::<f64>().max(1e-9);
            let dist: Vec<f64> = raw.iter().map(|v| v / total).collect();
            let c = scaled_coefficients(&dist);
            prop_assert!((c[0] - 1.0).abs() < 1e-9);
            for v in &c {
                prop_assert!(v.abs() <= 1.0 + 1e-9);
            }
        }
    }
}
