#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Orthogonal transforms and the marginal operator for contingency tables.
//!
//! A population of users, each holding a record `j ∈ {0,1}^d`, induces the
//! empirical distribution `t ∈ R^{2^d}` (the full contingency table,
//! normalized to sum to 1). This crate provides:
//!
//! * [`fwht`] — the in-place fast Walsh–Hadamard transform (Definition 3.5);
//! * [`scaled_coefficients`] — the *scaled* Hadamard coefficients
//!   `c_α = E[(−1)^{⟨α, j⟩}] = Σ_η (−1)^{⟨α,η⟩} t[η] ∈ [−1, 1]`, related to
//!   the paper's orthonormal coefficients by `θ_α = 2^{−d/2} c_α`. Scaled
//!   coefficients are what a user can report with one randomized-response
//!   bit, so every estimator in `ldp-core` works with them;
//! * [`marginalize`] — the marginal operator `C_β` (Definition 3.2) applied
//!   to a full distribution;
//! * [`marginal_from_coefficients`] — Lemma 3.7 (Barak et al.): any k-way
//!   marginal from the `2^k` scaled coefficients `{c_α : α ⪯ β}`;
//! * [`efron_stein`] — the Efron–Stein orthogonal decomposition for
//!   categorical (non-binary) domains, the extension the paper conjectures
//!   in §6.3.

pub mod efron_stein;
mod fwht;
mod marginal;

pub use fwht::{fwht, fwht_inverse, fwht_normalized, scaled_coefficients};
pub use marginal::{
    marginal_from_coefficients, marginal_l1_distance, marginalize, marginalize_table,
    total_variation_distance,
};
