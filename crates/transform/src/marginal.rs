//! The marginal operator `C_β` and marginal reconstruction from Hadamard
//! coefficients (Lemma 3.7).

use crate::fwht;
use ldp_bits::{compress, submasks, Mask};

/// Apply the marginal operator `C_β` (Definition 3.2) to a full
/// distribution over `{0,1}^d`.
///
/// Returns a table of length `2^|β|` indexed by the *local* cell index
/// `compress(γ, β)`; entry `g` holds `Σ_{η : η∧β = expand(g,β)} t[η]`
/// (equation (3) of the paper).
#[must_use]
pub fn marginalize(full: &[f64], d: u32, beta: Mask) -> Vec<f64> {
    assert_eq!(full.len(), 1usize << d, "distribution length must be 2^d");
    assert!(
        beta.is_subset_of(Mask::full(d)),
        "marginal mask outside domain"
    );
    let mut out = vec![0.0; beta.table_len()];
    for (eta, &v) in full.iter().enumerate() {
        out[compress(eta as u64, beta.bits()) as usize] += v;
    }
    out
}

/// Aggregate a marginal table over `beta` down to a sub-marginal over
/// `sub ⪯ beta`. Both tables use local indexing relative to their own mask.
#[must_use]
pub fn marginalize_table(table: &[f64], beta: Mask, sub: Mask) -> Vec<f64> {
    assert!(sub.is_subset_of(beta), "sub must satisfy sub ⪯ beta");
    assert_eq!(table.len(), beta.table_len());
    // Positions of `sub`'s attributes within `beta`'s local coordinates.
    let local_sub = compress(sub.bits(), beta.bits());
    let mut out = vec![0.0; sub.table_len()];
    for (g, &v) in table.iter().enumerate() {
        out[compress(g as u64, local_sub) as usize] += v;
    }
    out
}

/// Reconstruct the marginal `C_β` from scaled Hadamard coefficients
/// (Lemma 3.7, rewritten for scaled coefficients):
///
/// `C_β[γ] = 2^{−k} Σ_{α ⪯ β} c_α (−1)^{⟨α, γ⟩}`.
///
/// `coeff(α)` must return (an estimate of) `c_α = Σ_η (−1)^{⟨α,η⟩} t[η]`
/// for every `α ⪯ β` (including `c_0`, which is exactly 1 for a true
/// distribution). Returns a locally-indexed table of length `2^|β|`.
#[must_use]
pub fn marginal_from_coefficients(beta: Mask, mut coeff: impl FnMut(Mask) -> f64) -> Vec<f64> {
    let k = beta.weight();
    let len = beta.table_len();
    // Gather the 2^k relevant coefficients into local coordinates, then a
    // size-2^k WHT evaluates all cells at once: for α ⪯ β and γ ⪯ β,
    // ⟨α, γ⟩ = ⟨compress(α,β), compress(γ,β)⟩.
    let mut local = vec![0.0; len];
    for alpha in submasks(beta) {
        local[compress(alpha.bits(), beta.bits()) as usize] = coeff(alpha);
    }
    fwht(&mut local);
    let scale = 1.0 / (1u64 << k) as f64;
    for v in local.iter_mut() {
        *v *= scale;
    }
    local
}

/// `‖a − b‖₁` between two tables of equal length.
#[must_use]
pub fn marginal_l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Total variation distance `½‖a − b‖₁` (Definition 3.4).
#[must_use]
pub fn total_variation_distance(a: &[f64], b: &[f64]) -> f64 {
    0.5 * marginal_l1_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaled_coefficients;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// The worked Example 3.1 from the paper: d = 4, β = 0101.
    #[test]
    fn example_3_1() {
        let d = 4u32;
        let t: Vec<f64> = (0..16).map(|i| f64::from(i + 1)).collect();
        let beta = Mask::new(0b0101);
        let m = marginalize(&t, d, beta);
        // C[0000] = t[0000]+t[0010]+t[1000]+t[1010]
        assert_eq!(m[0b00], t[0b0000] + t[0b0010] + t[0b1000] + t[0b1010]);
        // C[0001] = t[0001]+t[0011]+t[1001]+t[1011]  (local index 01)
        assert_eq!(m[0b01], t[0b0001] + t[0b0011] + t[0b1001] + t[0b1011]);
        // C[0100] -> local 10
        assert_eq!(m[0b10], t[0b0100] + t[0b0110] + t[0b1100] + t[0b1110]);
        // C[0101] -> local 11
        assert_eq!(m[0b11], t[0b0101] + t[0b0111] + t[0b1101] + t[0b1111]);
        // Every input index contributes exactly once.
        let total: f64 = t.iter().sum();
        assert!((m.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn marginal_of_full_mask_is_identity() {
        let t = vec![0.1, 0.2, 0.3, 0.4];
        let m = marginalize(&t, 2, Mask::full(2));
        assert_eq!(m, t);
    }

    #[test]
    fn marginal_of_empty_mask_is_total() {
        let t = vec![0.1, 0.2, 0.3, 0.4];
        let m = marginalize(&t, 2, Mask::EMPTY);
        assert_eq!(m.len(), 1);
        assert!((m[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_aggregation_matches_direct() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = 6u32;
        let n = 1usize << d;
        let raw: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let total: f64 = raw.iter().sum();
        let t: Vec<f64> = raw.iter().map(|v| v / total).collect();

        let beta = Mask::new(0b101101);
        let big = marginalize(&t, d, beta);
        for sub_bits in [0b000001u64, 0b001100, 0b101000, 0b101101, 0] {
            let sub = Mask::new(sub_bits);
            let via_table = marginalize_table(&big, beta, sub);
            let direct = marginalize(&t, d, sub);
            for (a, b) in via_table.iter().zip(&direct) {
                assert!((a - b).abs() < 1e-12, "sub={sub}");
            }
        }
    }

    #[test]
    fn lemma_3_7_exact_reconstruction() {
        // With exact coefficients, marginal_from_coefficients must agree
        // with the direct marginal operator on every β.
        let mut rng = StdRng::seed_from_u64(42);
        let d = 5u32;
        let n = 1usize << d;
        let raw: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let total: f64 = raw.iter().sum();
        let t: Vec<f64> = raw.iter().map(|v| v / total).collect();
        let coeffs = scaled_coefficients(&t);

        for beta_bits in 0u64..(1 << d) {
            let beta = Mask::new(beta_bits);
            let direct = marginalize(&t, d, beta);
            let via = marginal_from_coefficients(beta, |a| coeffs[a.bits() as usize]);
            for (x, y) in direct.iter().zip(&via) {
                assert!((x - y).abs() < 1e-10, "beta={beta}");
            }
        }
    }

    #[test]
    fn tvd_basics() {
        let a = vec![0.5, 0.5];
        let b = vec![1.0, 0.0];
        assert!((total_variation_distance(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation_distance(&a, &a), 0.0);
    }

    proptest! {
        #[test]
        fn marginal_preserves_mass(
            raw in proptest::collection::vec(0.0f64..1.0, 16),
            beta_bits in 0u64..16,
        ) {
            let total: f64 = raw.iter().sum::<f64>().max(1e-9);
            let t: Vec<f64> = raw.iter().map(|v| v / total).collect();
            let m = marginalize(&t, 4, Mask::new(beta_bits));
            prop_assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn reconstruction_matches_direct_random(
            raw in proptest::collection::vec(0.01f64..1.0, 8),
            beta_bits in 0u64..8,
        ) {
            let total: f64 = raw.iter().sum();
            let t: Vec<f64> = raw.iter().map(|v| v / total).collect();
            let coeffs = scaled_coefficients(&t);
            let beta = Mask::new(beta_bits);
            let direct = marginalize(&t, 3, beta);
            let via = marginal_from_coefficients(beta, |a| coeffs[a.bits() as usize]);
            for (x, y) in direct.iter().zip(&via) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
