//! Efron–Stein orthogonal decomposition for categorical domains.
//!
//! §6.3 of the paper conjectures that a scheme based on the Efron–Stein
//! decomposition — the generalization of the Hadamard transform to
//! non-binary contingency tables — "will be among the best solutions" for
//! low-order marginals over categorical data. This module implements the
//! decomposition and the property that makes the conjecture work: *the
//! marginal over an attribute set `B` is a linear function of only the
//! components indexed by subsets `S ⊆ B`* (the categorical analog of
//! Lemma 3.7).
//!
//! For a table `p` over the product domain `∏_i [r_i]`, define the
//! conditional-expectation operator under the uniform measure,
//! `p^{⊆S}(x_S) = E_{x_∉S}[p(x)]`, and the Efron–Stein components
//! `p^{=S} = Σ_{T ⊆ S} (−1)^{|S∖T|} p^{⊆T}` (Möbius inversion). Then
//! `p = Σ_S p^{=S}` with the components mutually orthogonal, and the
//! marginal over `B` is `m_B(x_B) = (∏_{i∉B} r_i) · Σ_{S⊆B} p^{=S}(x_S)`.

use ldp_bits::{submasks, Mask};
use std::collections::HashMap;

/// A product domain of `d` categorical attributes with given arities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CategoricalDomain {
    arities: Vec<usize>,
    strides: Vec<usize>,
    len: usize,
}

impl CategoricalDomain {
    /// Build a domain from per-attribute arities (each ≥ 1). Panics if the
    /// total table size overflows or `d > 63`.
    #[must_use]
    pub fn new(arities: &[usize]) -> Self {
        assert!(arities.len() <= 63, "at most 63 attributes");
        assert!(arities.iter().all(|&r| r >= 1), "arities must be ≥ 1");
        let mut strides = Vec::with_capacity(arities.len());
        let mut len = 1usize;
        for &r in arities {
            strides.push(len);
            len = len.checked_mul(r).expect("domain too large");
        }
        CategoricalDomain {
            arities: arities.to_vec(),
            strides,
            len,
        }
    }

    /// Number of attributes.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.arities.len() as u32
    }

    /// Total number of cells `∏ r_i`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the domain has a single cell.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    /// Arity of one attribute.
    #[must_use]
    pub fn arity(&self, attr: u32) -> usize {
        self.arities[attr as usize]
    }

    /// All arities.
    #[must_use]
    pub fn arities(&self) -> &[usize] {
        &self.arities
    }

    /// Mixed-radix index of a full assignment (`values[i] < r_i`).
    #[must_use]
    pub fn index(&self, values: &[usize]) -> usize {
        assert_eq!(values.len(), self.arities.len());
        let mut idx = 0usize;
        for (i, &v) in values.iter().enumerate() {
            assert!(v < self.arities[i], "value out of range for attribute {i}");
            idx += v * self.strides[i];
        }
        idx
    }

    /// Inverse of [`CategoricalDomain::index`].
    #[must_use]
    pub fn unindex(&self, mut idx: usize) -> Vec<usize> {
        assert!(idx < self.len);
        let mut out = vec![0usize; self.arities.len()];
        for (i, &r) in self.arities.iter().enumerate() {
            out[i] = idx % r;
            idx /= r;
        }
        out
    }

    /// The sub-domain over the attributes selected by `subset`.
    #[must_use]
    pub fn subdomain(&self, subset: Mask) -> CategoricalDomain {
        let sub: Vec<usize> = subset.attrs().map(|a| self.arities[a as usize]).collect();
        CategoricalDomain::new(&sub)
    }

    /// Project a full-domain index onto the sub-domain over `subset`.
    #[must_use]
    pub fn project(&self, idx: usize, subset: Mask) -> usize {
        let values = self.unindex(idx);
        let mut out = 0usize;
        let mut stride = 1usize;
        for a in subset.attrs() {
            out += values[a as usize] * stride;
            stride *= self.arities[a as usize];
        }
        out
    }

    /// `∏_{i ∉ subset} r_i` — the number of full cells collapsing onto each
    /// sub-domain cell.
    #[must_use]
    pub fn complement_size(&self, subset: Mask) -> usize {
        self.len / self.subdomain(subset).len()
    }
}

/// Marginal of a categorical table over the attributes in `subset`,
/// indexed by the sub-domain of [`CategoricalDomain::subdomain`].
#[must_use]
pub fn marginalize_categorical(p: &[f64], domain: &CategoricalDomain, subset: Mask) -> Vec<f64> {
    assert_eq!(p.len(), domain.len());
    let sub = domain.subdomain(subset);
    let mut out = vec![0.0; sub.len()];
    for (idx, &v) in p.iter().enumerate() {
        out[domain.project(idx, subset)] += v;
    }
    out
}

/// The full Efron–Stein decomposition of a categorical table.
#[derive(Clone, Debug)]
pub struct EfronStein {
    domain: CategoricalDomain,
    /// `components[S]` is `p^{=S}` stored over the sub-domain of `S`.
    components: HashMap<Mask, Vec<f64>>,
}

impl EfronStein {
    /// Decompose `p` into its `2^d` Efron–Stein components. Exponential in
    /// `d`; intended for the moderate `d` of marginal workloads.
    #[must_use]
    pub fn decompose(p: &[f64], domain: &CategoricalDomain) -> Self {
        assert_eq!(p.len(), domain.len());
        let d = domain.d();
        // Conditional expectations p^{⊆S} for every S, from marginals:
        // p^{⊆S}(x_S) = m_S(x_S) / ∏_{i∉S} r_i.
        let mut cond: HashMap<Mask, Vec<f64>> = HashMap::new();
        for s_bits in submasks(Mask::full(d)) {
            let mut m = marginalize_categorical(p, domain, s_bits);
            let scale = 1.0 / domain.complement_size(s_bits) as f64;
            for v in m.iter_mut() {
                *v *= scale;
            }
            cond.insert(s_bits, m);
        }
        // Möbius inversion: p^{=S} = Σ_{T⊆S} (−1)^{|S∖T|} p^{⊆T}, with the
        // T-table lifted onto the S sub-domain.
        let mut components = HashMap::new();
        for s in submasks(Mask::full(d)) {
            let sub_s = domain.subdomain(s);
            let mut comp = vec![0.0; sub_s.len()];
            for t in submasks(s) {
                let sign = if (s.weight() - t.weight()) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                };
                let table_t = &cond[&t];
                // Lift: index of x_T within the S sub-domain coordinates.
                let t_in_s = Mask::new(ldp_bits::compress(t.bits(), s.bits()));
                for (i, c) in comp.iter_mut().enumerate() {
                    *c += sign * table_t[sub_s.project(i, t_in_s)];
                }
            }
            components.insert(s, comp);
        }
        EfronStein {
            domain: domain.clone(),
            components,
        }
    }

    /// The component `p^{=S}`, indexed over the `S` sub-domain.
    #[must_use]
    pub fn component(&self, s: Mask) -> &[f64] {
        &self.components[&s]
    }

    /// The domain this decomposition was taken over.
    #[must_use]
    pub fn domain(&self) -> &CategoricalDomain {
        &self.domain
    }

    /// Reconstruct the full table as `Σ_S p^{=S}` (sanity/inversion).
    #[must_use]
    pub fn reconstruct_full(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.domain.len()];
        for (s, comp) in &self.components {
            for (idx, o) in out.iter_mut().enumerate() {
                *o += comp[self.domain.project(idx, *s)];
            }
        }
        out
    }

    /// Reconstruct the marginal over `beta` using **only** the components
    /// `{p^{=S} : S ⊆ beta}` — the categorical analog of Lemma 3.7:
    ///
    /// `m_β(x_β) = (∏_{i∉β} r_i) · Σ_{S⊆β} p^{=S}(x_S)`.
    #[must_use]
    pub fn marginal(&self, beta: Mask) -> Vec<f64> {
        let sub = self.domain.subdomain(beta);
        let outside = self.domain.complement_size(beta) as f64;
        let mut out = vec![0.0; sub.len()];
        for s in submasks(beta) {
            let comp = &self.components[&s];
            let s_in_beta = Mask::new(ldp_bits::compress(s.bits(), beta.bits()));
            for (i, o) in out.iter_mut().enumerate() {
                *o += comp[sub.project(i, s_in_beta)];
            }
        }
        for o in out.iter_mut() {
            *o *= outside;
        }
        out
    }

    /// Inner product `Σ_x p^{=S}(x_S) q^{=T}(x_T)` over the full domain —
    /// zero for `S ≠ T` (orthogonality), used by tests.
    #[must_use]
    pub fn inner_product(&self, s: Mask, t: Mask) -> f64 {
        let cs = &self.components[&s];
        let ct = &self.components[&t];
        (0..self.domain.len())
            .map(|idx| cs[self.domain.project(idx, s)] * ct[self.domain.project(idx, t)])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_dist(domain: &CategoricalDomain, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw: Vec<f64> = (0..domain.len()).map(|_| rng.gen::<f64>() + 0.01).collect();
        let total: f64 = raw.iter().sum();
        raw.iter().map(|v| v / total).collect()
    }

    #[test]
    fn domain_indexing_roundtrip() {
        let dom = CategoricalDomain::new(&[3, 2, 4]);
        assert_eq!(dom.len(), 24);
        for idx in 0..dom.len() {
            assert_eq!(dom.index(&dom.unindex(idx)), idx);
        }
        assert_eq!(dom.index(&[2, 1, 3]), 2 + 3 + 3 * 6);
    }

    #[test]
    fn projection_consistency() {
        let dom = CategoricalDomain::new(&[3, 2, 4]);
        let subset = Mask::from_attrs(&[0, 2]);
        let sub = dom.subdomain(subset);
        assert_eq!(sub.arities(), &[3, 4]);
        for idx in 0..dom.len() {
            let vals = dom.unindex(idx);
            let p = dom.project(idx, subset);
            let sub_vals = sub.unindex(p);
            assert_eq!(sub_vals, vec![vals[0], vals[2]]);
        }
    }

    #[test]
    fn categorical_marginal_mass() {
        let dom = CategoricalDomain::new(&[3, 2, 2]);
        let p = random_dist(&dom, 1);
        for bits in 0u64..8 {
            let m = marginalize_categorical(&p, &dom, Mask::new(bits));
            assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn decomposition_sums_to_table() {
        let dom = CategoricalDomain::new(&[3, 2, 4]);
        let p = random_dist(&dom, 2);
        let es = EfronStein::decompose(&p, &dom);
        let rec = es.reconstruct_full();
        for (a, b) in p.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn components_are_orthogonal() {
        let dom = CategoricalDomain::new(&[3, 2, 2]);
        let p = random_dist(&dom, 3);
        let es = EfronStein::decompose(&p, &dom);
        let d = dom.d();
        for s in submasks(Mask::full(d)) {
            for t in submasks(Mask::full(d)) {
                if s != t {
                    assert!(
                        es.inner_product(s, t).abs() < 1e-9,
                        "components {s} and {t} not orthogonal"
                    );
                }
            }
        }
    }

    #[test]
    fn marginals_need_only_subset_components() {
        // The categorical Lemma 3.7: marginal over β from components S ⊆ β.
        let dom = CategoricalDomain::new(&[3, 2, 4, 2]);
        let p = random_dist(&dom, 4);
        let es = EfronStein::decompose(&p, &dom);
        for bits in 0u64..16 {
            let beta = Mask::new(bits);
            let direct = marginalize_categorical(&p, &dom, beta);
            let via = es.marginal(beta);
            for (a, b) in direct.iter().zip(&via) {
                assert!((a - b).abs() < 1e-9, "beta={beta}");
            }
        }
    }

    #[test]
    fn binary_domain_matches_hadamard_span() {
        // On an all-binary domain the weight-≤k ES components carry the
        // same information as the weight-≤k Hadamard coefficients: both
        // reconstruct every k-way marginal exactly.
        let dom = CategoricalDomain::new(&[2, 2, 2, 2]);
        let p = random_dist(&dom, 5);
        let es = EfronStein::decompose(&p, &dom);
        let coeffs = crate::scaled_coefficients(&p);
        for bits in 0u64..16 {
            let beta = Mask::new(bits);
            let via_es = es.marginal(beta);
            let via_ht = crate::marginal_from_coefficients(beta, |a| coeffs[a.bits() as usize]);
            for (a, b) in via_es.iter().zip(&via_ht) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn nonuniform_component_of_uniform_is_zero() {
        let dom = CategoricalDomain::new(&[3, 3]);
        let p = vec![1.0 / 9.0; 9];
        let es = EfronStein::decompose(&p, &dom);
        for bits in 1u64..4 {
            let comp = es.component(Mask::new(bits));
            assert!(comp.iter().all(|v| v.abs() < 1e-12));
        }
    }
}
