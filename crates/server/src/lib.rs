#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Concurrent TCP aggregation server for the framed report-stream
//! protocol — the serving half of the paper's deployment model: each
//! user ships one tiny constant-size report, a long-running collector
//! absorbs millions of them, and any k-way marginal is reconstructed on
//! demand from the compact accumulator state.
//!
//! Built on `std::net` + `std::thread` only (the workspace builds
//! offline). Three layers:
//!
//! * [`protocol`] — the control-plane request/response frames
//!   (`snapshot` / `query` / `stats` / `shutdown`) layered on the same
//!   length-prefixed frame format as report streams;
//! * [`server`] — [`server::Server`]: an accept loop that classifies
//!   each connection by its first frame (a `StreamHeader` opens an
//!   ingest stream, a request tag opens a control session) and shards
//!   ingestion across a worker pool of per-thread accumulators;
//! * [`client`] — blocking client helpers ([`client::push_reports`],
//!   [`client::Control`]) used by `ldp-cli load` / `snapshot` / `stats`
//!   / `query --connect` and by the `serve` bench scenario;
//! * [`relay`] — the collector checkpoint file (wire v3) behind
//!   `serve --checkpoint`, so a crashed collector resumes where its
//!   last checkpoint left it.
//!
//! Servers federate into aggregation trees (wire v3): a collector
//! started with an upstream address periodically pushes its merged
//! snapshot one hop up ([`protocol::PushRequest`]); the upstream keeps
//! the latest push per downstream collector and *replaces* it on every
//! re-push, so the at-least-once relay never double-counts. See
//! `docs/WIRE_FORMAT.md` §7.3 and the federation runbook in
//! `docs/OPERATIONS.md`.
//!
//! The server's correctness contract is the `Accumulator`
//! partition-invariance law: however concurrent connections interleave
//! and however reports land on workers, merging the worker states in
//! worker order yields accumulator state **byte-identical** to a serial
//! single-process ingest of the same reports (proved end-to-end against
//! the real binary by `tests/serve.rs`, and across whole process trees
//! by `tests/federation.rs`). The byte-level encoding of every frame is
//! specified in `docs/WIRE_FORMAT.md`; operational guidance lives in
//! `docs/OPERATIONS.md`.

pub mod client;
pub mod protocol;
pub mod relay;
pub mod server;

pub use client::{push_frame, push_report_batches, push_reports, push_with, Control, PushWriter};
pub use protocol::{PushRequest, QueryRequest, QueryTarget, Request, Response, ServerStats};
pub use relay::{read_checkpoint, write_checkpoint, Checkpoint, DownstreamEntry};
pub use server::{Recovery, ServeConfig, Server, ServerSummary};
