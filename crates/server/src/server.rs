//! The aggregation server: accept loop, connection classification, and
//! the sharded worker pool.
//!
//! One server aggregates one pipeline. The first ingest connection's
//! `StreamHeader` establishes it and spawns the worker pool — `shards`
//! threads, each owning a private `PipelineAccumulator`. Connection
//! handlers round-robin work across workers over `std::sync::mpsc`
//! channels: single-report frames are decoded on the handler and sent
//! typed; `REPORT_BATCH` frames (wire v2) are forwarded raw and
//! batch-decoded on the worker, keeping the socket thread on pure
//! frame I/O. A live snapshot collects every worker's serialized state
//! and merges them **in worker order**, so the `Accumulator`
//! partition-invariance law makes the result byte-identical to a
//! serial single-process ingest of the same reports, no matter how
//! connections, batches, and workers interleaved.

use crate::client::Control;
use crate::protocol::{PushRequest, QueryTarget, Request, Response, ServerStats};
use crate::relay::{read_checkpoint, write_checkpoint, Checkpoint, DownstreamEntry};
use ldp_bits::Mask;
use ldp_core::frame::{FrameError, FrameReader, FrameWriter, StreamHeader};
use ldp_core::wire::tag;
use ldp_core::{clamp_normalize, MarginalEstimator};
use ldp_oracles::pipeline::{
    decode_report_batch_into, PipelineAccumulator, PipelineEstimate, PipelineReport, Protocol,
};
use ldp_oracles::FrequencyOracle;
use std::collections::BTreeMap;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read timeout on every accepted socket: the upper bound on how long a
/// connection handler can go without noticing a shutdown (the
/// `keep_going` check of `FrameReader::next_frame_while`).
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// How often the relay thread wakes to check the push interval, the
/// shutdown flag, and backoff expiry.
const RELAY_POLL: Duration = Duration::from_millis(25);

/// Connect timeout for upstream pushes — tighter than the client
/// default so a dead upstream costs one backoff step, not seconds, per
/// attempt.
const RELAY_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// I/O timeout for upstream pushes.
const RELAY_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// First retry delay after a failed upstream push; doubles per failure
/// up to [`RELAY_BACKOFF_MAX`].
const RELAY_BACKOFF_MIN: Duration = Duration::from_millis(50);

/// Retry-delay ceiling for the at-least-once upstream push loop.
const RELAY_BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Bounded retry budget for the one final upstream push during a
/// graceful shutdown (a dead upstream must not wedge shutdown).
const FINAL_PUSH_ATTEMPTS: u32 = 4;

/// How often the (non-blocking) accept loop polls for the shutdown
/// flag while no connection is pending. Also the worst-case latency
/// before a new connection is accepted, so it is kept small: at 1 ms
/// the idle loop costs ~1000 no-op `accept` calls per second
/// (negligible), while connection setup stays off the critical path
/// of short ingest bursts.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// What a worker thread can be asked to do. Channel order is the
/// contract: a `Flush` or `Collect` answers only after every report the
/// same sender enqueued before it has been absorbed.
enum WorkerMsg {
    /// Absorb one decoded report.
    Report(PipelineReport),
    /// Decode one raw `REPORT_BATCH` frame payload and absorb every
    /// report in it, settling the outcome into the sender's
    /// [`IngestProgress`]. Decoding on the worker keeps the connection
    /// handler on pure frame I/O.
    Batch(Vec<u8>, Arc<IngestProgress>),
    /// Acknowledge that everything enqueued earlier is absorbed.
    Flush(mpsc::Sender<()>),
    /// Serialize the current accumulator state.
    Collect(mpsc::Sender<Vec<u8>>),
}

/// Per-connection outcome of batch frames settled on worker threads.
/// The connection handler reads it only after a flush round, when
/// channel order guarantees every batch it enqueued has been decoded
/// and absorbed (or rejected) — so the ack still means "absorbed",
/// never "enqueued".
#[derive(Default)]
struct IngestProgress {
    /// Reports absorbed out of this connection's batch frames.
    absorbed: AtomicU64,
    /// The first decode/absorb error, folded into the ack.
    error: Mutex<Option<String>>,
}

impl IngestProgress {
    fn record_error(&self, message: String) {
        let mut slot = self.error.lock().unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(message);
    }

    fn take_error(&self) -> Option<String> {
        self.error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

struct Worker {
    sender: mpsc::Sender<WorkerMsg>,
    handle: JoinHandle<()>,
}

/// The established pipeline: fixed header + the worker pool.
struct Pipeline {
    header: StreamHeader,
    workers: Vec<Worker>,
}

/// How the server participates in a federation tree (all optional:
/// a default-configured server is the standalone collector of PRs
/// 4–7). See `docs/WIRE_FORMAT.md` §7.3 and `docs/OPERATIONS.md`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (port `0` picks a free port).
    pub listen: String,
    /// Worker-pool size (must be ≥ 1).
    pub shards: usize,
    /// Push the merged snapshot to this collector periodically, on
    /// every snapshot request served, and on graceful shutdown.
    pub upstream: Option<String>,
    /// Interval between periodic upstream pushes.
    pub push_every: Duration,
    /// The identity pushed upstream. Defaults to the collector-id in
    /// the checkpoint being recovered, else the bound listen address.
    pub collector: Option<String>,
    /// Checkpoint file: recovered at startup if present, rewritten
    /// after acks per `checkpoint_every` and on graceful shutdown.
    pub checkpoint: Option<PathBuf>,
    /// Write a checkpoint once at least this many new reports have
    /// been absorbed since the last one (checked when an ingest
    /// stream is acknowledged).
    pub checkpoint_every: u64,
}

impl ServeConfig {
    /// A standalone (non-federated, non-checkpointing) configuration.
    #[must_use]
    pub fn new(listen: &str, shards: usize) -> ServeConfig {
        ServeConfig {
            listen: listen.to_string(),
            shards,
            upstream: None,
            push_every: Duration::from_secs(5),
            collector: None,
            checkpoint: None,
            checkpoint_every: 50_000,
        }
    }
}

/// What a checkpoint recovery restored, for startup logging.
#[derive(Clone, Copy, Debug)]
pub struct Recovery {
    /// Locally-absorbed reports restored into the worker pool.
    pub reports: u64,
    /// The push-epoch counter at the checkpoint.
    pub epoch: u64,
    /// Downstream collectors whose snapshots were restored.
    pub downstream: usize,
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    shards: usize,
    shutdown: AtomicBool,
    next_worker: AtomicUsize,
    reports: AtomicU64,
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    rejected_frames: AtomicU64,
    started: Instant,
    pipeline: Mutex<Option<Pipeline>>,
    /// Where this collector pushes its merged snapshot (`None`: root
    /// or standalone).
    upstream: Option<String>,
    /// Interval between periodic upstream pushes.
    push_every: Duration,
    /// The identity this collector pushes under.
    collector: String,
    /// The push-epoch counter; each push consumes the next epoch.
    epoch: AtomicU64,
    /// The latest `(epoch, state)` each downstream collector pushed,
    /// keyed — and therefore merged — in collector-id order.
    downstream: Mutex<BTreeMap<String, (u64, Vec<u8>)>>,
    /// Checkpoint file path (`None`: durability disabled).
    checkpoint: Option<PathBuf>,
    /// Threshold of newly absorbed reports that triggers a rewrite.
    checkpoint_every: u64,
    /// Locally-absorbed report count at the last checkpoint write;
    /// also serializes writers (held across the file write).
    checkpoint_mark: Mutex<u64>,
    /// Serializes upstream pushes so epochs leave in collect order.
    push_lock: Mutex<()>,
}

/// Upper bound on how many queued reports a worker drains into its
/// local batch before absorbing. Batching amortizes the accumulator's
/// protocol dispatch and kind checks over the whole drained run; the
/// bound caps the latency of a `Flush`/`Collect` queued behind a long
/// report run and the worker's transient memory. See
/// `docs/OPERATIONS.md` for sizing guidance.
pub const WORKER_BATCH: usize = 256;

/// Absorb a drained batch, keeping the buffer (and its capacity) for
/// the next drain — the worker's steady state performs no per-report
/// allocation of its own.
fn absorb_drained(acc: &mut PipelineAccumulator, batch: &mut Vec<PipelineReport>, shared: &Shared) {
    if batch.is_empty() {
        return;
    }
    // Handlers validate every report against the established header
    // before dispatching, so a rejected batch can only mean a logic
    // error upstream; account for it rather than crash the worker.
    match acc.absorb_batch(batch) {
        Ok(()) => {
            shared
                .reports
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        Err(_) => {
            shared
                .rejected_frames
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    }
    batch.clear();
}

/// Decode one raw `REPORT_BATCH` frame payload into the worker's
/// scratch and absorb it. A batch settles or fails as a unit: any
/// decode or protocol error rejects every report in the frame, records
/// the message for the connection's ack, and leaves the accumulator
/// untouched.
fn absorb_batch_frame(
    acc: &mut PipelineAccumulator,
    payload: &[u8],
    scratch: &mut Vec<PipelineReport>,
    progress: &IngestProgress,
    shared: &Shared,
) {
    let decoded = match decode_report_batch_into(payload, scratch) {
        // The decoder never reports more slots than it filled, so the
        // range is always in bounds; `get` degrades if that breaks.
        Ok(n) => scratch.get(..n),
        Err(message) => {
            shared.rejected_frames.fetch_add(1, Ordering::Relaxed);
            progress.record_error(message);
            return;
        }
    };
    let Some(decoded) = decoded else { return };
    match acc.absorb_batch(decoded) {
        Ok(()) => {
            let n = decoded.len() as u64;
            shared.reports.fetch_add(n, Ordering::Relaxed);
            progress.absorbed.fetch_add(n, Ordering::Relaxed);
        }
        Err(message) => {
            shared
                .rejected_frames
                .fetch_add(decoded.len() as u64, Ordering::Relaxed);
            progress.record_error(message);
        }
    }
}

fn worker_loop(mut acc: PipelineAccumulator, rx: mpsc::Receiver<WorkerMsg>, shared: Arc<Shared>) {
    let mut batch: Vec<PipelineReport> = Vec::with_capacity(WORKER_BATCH);
    // Decoded-slot scratch for batch frames. Slots persist across
    // batches (entries past the last decode are stale, never read), so
    // the steady state re-decodes into already-allocated reports.
    let mut scratch: Vec<PipelineReport> = Vec::new();
    while let Ok(msg) = rx.recv() {
        let mut pending = Some(msg);
        while let Some(msg) = pending.take() {
            match msg {
                WorkerMsg::Report(report) => {
                    batch.push(report);
                    // Drain whatever else is already queued (channel
                    // order is the contract: a control message stops
                    // the drain and is handled after the batch).
                    while batch.len() < WORKER_BATCH {
                        match rx.try_recv() {
                            Ok(WorkerMsg::Report(r)) => batch.push(r),
                            Ok(control) => {
                                pending = Some(control);
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    absorb_drained(&mut acc, &mut batch, &shared);
                }
                WorkerMsg::Batch(payload, progress) => {
                    absorb_batch_frame(&mut acc, &payload, &mut scratch, &progress, &shared);
                }
                WorkerMsg::Flush(ack) => {
                    let _ = ack.send(());
                }
                WorkerMsg::Collect(reply) => {
                    let _ = reply.send(acc.to_bytes());
                }
            }
        }
    }
}

impl Shared {
    fn keep_going(&self) -> bool {
        !self.shutdown.load(Ordering::SeqCst)
    }

    /// Lock the pipeline slot, recovering from poison: the lock is only
    /// poisoned if a holder panicked, and everything under it (the
    /// header and the worker handles) is valid at every instruction, so
    /// one crashed connection handler must not cascade a panic into
    /// every other handler that touches the pipeline afterwards.
    fn lock_pipeline(&self) -> MutexGuard<'_, Option<Pipeline>> {
        self.pipeline.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Establish the pipeline from the first stream's header (spawning
    /// the worker pool), or verify a later stream matches it exactly.
    fn establish(self: &Arc<Self>, header: StreamHeader) -> Result<(), String> {
        self.establish_seeded(header, None)
    }

    /// [`Shared::establish`], optionally seeding worker 0 with a
    /// recovered accumulator state (checkpoint recovery): merging in
    /// worker order then makes the live state `recovered ⊕ new`, which
    /// the partition-invariance law keeps byte-identical to a serial
    /// ingest of both report sets.
    fn establish_seeded(
        self: &Arc<Self>,
        header: StreamHeader,
        seed: Option<&[u8]>,
    ) -> Result<(), String> {
        let mut guard = self.lock_pipeline();
        if let Some(pipeline) = guard.as_ref() {
            if pipeline.header == header {
                return Ok(());
            }
            return Err(format!(
                "stream header does not match the established {} pipeline \
                 (one server aggregates one pipeline; start another server \
                 for a different protocol or parameter set)",
                Protocol::from_header(&pipeline.header).map_or("?", Protocol::name),
            ));
        }
        let mut seed = seed;
        let workers = (0..self.shards)
            .map(|_| {
                let acc = match seed.take() {
                    Some(state) => PipelineAccumulator::from_state(&header, state)?,
                    None => PipelineAccumulator::empty(&header)?,
                };
                let (sender, rx) = mpsc::channel();
                let shared = Arc::clone(self);
                let handle = std::thread::spawn(move || worker_loop(acc, rx, shared));
                Ok(Worker { sender, handle })
            })
            .collect::<Result<Vec<_>, String>>()?;
        *guard = Some(Pipeline { header, workers });
        Ok(())
    }

    /// Clone out the established header and worker senders, so report
    /// dispatch runs without touching the pipeline lock.
    fn senders(&self) -> Option<(StreamHeader, Vec<mpsc::Sender<WorkerMsg>>)> {
        let guard = self.lock_pipeline();
        guard.as_ref().map(|p| {
            (
                p.header,
                p.workers.iter().map(|w| w.sender.clone()).collect(),
            )
        })
    }

    /// Lock the downstream replacement table, recovering from poison
    /// (entries are whole `(epoch, state)` pairs, valid at every
    /// instruction).
    fn lock_downstream(&self) -> MutexGuard<'_, BTreeMap<String, (u64, Vec<u8>)>> {
        self.downstream
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock the checkpoint mark. Held across the checkpoint file write
    /// so concurrent ingest acks serialize their writes.
    fn lock_checkpoint_mark(&self) -> MutexGuard<'_, u64> {
        self.checkpoint_mark
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The live merged snapshot as serialized state (what snapshot
    /// responses and snapshot files carry).
    fn collect(&self) -> Result<(StreamHeader, Vec<u8>), String> {
        let (header, merged) = self.collect_merged()?;
        Ok((header, merged.to_bytes()))
    }

    /// The full live view: the local accumulator
    /// ([`Shared::collect_local`]), then every downstream collector's
    /// latest push merged in collector-id order. Both orders are
    /// deterministic, so the partition-invariance law keeps the result
    /// byte-identical to a serial single-process ingest of every report
    /// in the subtree.
    fn collect_merged(&self) -> Result<(StreamHeader, PipelineAccumulator), String> {
        let (header, mut merged) = self.collect_local()?;
        let downstream = self.lock_downstream();
        for (collector, (_, state)) in downstream.iter() {
            let acc = PipelineAccumulator::from_state(&header, state)
                .map_err(|e| format!("downstream snapshot from {collector}: {e}"))?;
            merged.merge(acc)?;
        }
        Ok((header, merged))
    }

    /// The locally-absorbed accumulator: every worker's state, merged
    /// in worker order. Excludes downstream pushes — this is what a
    /// checkpoint stores as `local_state`.
    fn collect_local(&self) -> Result<(StreamHeader, PipelineAccumulator), String> {
        let guard = self.lock_pipeline();
        let pipeline = guard
            .as_ref()
            .ok_or("no report stream has been ingested yet")?;
        let receivers: Vec<mpsc::Receiver<Vec<u8>>> = pipeline
            .workers
            .iter()
            .map(|w| {
                let (tx, rx) = mpsc::channel();
                w.sender
                    .send(WorkerMsg::Collect(tx))
                    .map(|()| rx)
                    .map_err(|_| "a worker thread exited unexpectedly".to_string())
            })
            .collect::<Result<_, String>>()?;
        let mut merged: Option<PipelineAccumulator> = None;
        for rx in receivers {
            let state = rx
                .recv()
                .map_err(|_| "a worker thread exited unexpectedly".to_string())?;
            let acc = PipelineAccumulator::from_state(&pipeline.header, &state)?;
            merged = Some(match merged {
                None => acc,
                Some(mut base) => {
                    base.merge(acc)?;
                    base
                }
            });
        }
        let merged = merged.ok_or("server has no workers")?;
        Ok((pipeline.header, merged))
    }

    fn stats(&self) -> ServerStats {
        let header = self.lock_pipeline().as_ref().map(|p| p.header);
        ServerStats {
            header,
            reports: self.reports.load(Ordering::Relaxed),
            workers: self.shards as u32,
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed) as u32,
            rejected_frames: self.rejected_frames.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }

    /// Answer one query against the live accumulator (collect, merge,
    /// finalize).
    fn query(&self, target: QueryTarget, normalize: bool) -> Result<Vec<f64>, String> {
        let (header, acc) = self.collect_merged()?;
        if acc.report_count() == 0 {
            return Err("accumulator holds no reports; nothing to estimate".to_string());
        }
        match (acc.finalize(), target) {
            (PipelineEstimate::Mechanism(est), QueryTarget::Marginal(bits)) => {
                if bits == 0 {
                    return Err("marginal mask selects no attributes".to_string());
                }
                if header.d < 64 && bits >> header.d != 0 {
                    return Err(format!(
                        "marginal mask {bits:#x} is outside the d = {} domain",
                        header.d
                    ));
                }
                let mask = Mask(bits);
                if mask.weight() > est.max_k() {
                    return Err(format!(
                        "marginal order {} exceeds the collected k = {}",
                        mask.weight(),
                        est.max_k()
                    ));
                }
                let table = est.marginal(mask);
                Ok(if normalize {
                    clamp_normalize(&table)
                } else {
                    table
                })
            }
            (PipelineEstimate::Oracle(oracle), QueryTarget::Value(value)) => {
                if header.d < 64 && value >> header.d != 0 {
                    return Err(format!(
                        "value {value} is outside the d = {} domain",
                        header.d
                    ));
                }
                Ok(vec![oracle.estimate(value)])
            }
            (PipelineEstimate::Mechanism(_), QueryTarget::Value(_)) => Err(
                "this server aggregates a mechanism pipeline; query a marginal mask".to_string(),
            ),
            (PipelineEstimate::Oracle(_), QueryTarget::Marginal(_)) => {
                Err("this server aggregates an oracle pipeline; query a value".to_string())
            }
        }
    }

    /// Apply one downstream push: validate it against the established
    /// pipeline (establishing from the push's header if no stream has
    /// arrived yet), then *replace* the pusher's previous snapshot —
    /// unless its epoch is stale, in which case the push is refused by
    /// name so a restarted child can fast-forward its counter.
    fn apply_push(self: &Arc<Self>, push: PushRequest) -> Response {
        if let Err(message) = self.establish_seeded(push.header, None) {
            self.rejected_frames.fetch_add(1, Ordering::Relaxed);
            return Response::Error(format!("snapshot push from {}: {message}", push.collector));
        }
        if let Err(e) = PipelineAccumulator::from_state(&push.header, &push.state) {
            self.rejected_frames.fetch_add(1, Ordering::Relaxed);
            return Response::Error(format!(
                "snapshot push from {} does not decode: {e}",
                push.collector
            ));
        }
        let mut downstream = self.lock_downstream();
        match downstream.get(&push.collector) {
            Some(&(held, _)) if push.epoch < held => Response::Push {
                applied: false,
                latest_epoch: held,
            },
            _ => {
                let epoch = push.epoch;
                downstream.insert(push.collector, (epoch, push.state));
                Response::Push {
                    applied: true,
                    latest_epoch: epoch,
                }
            }
        }
    }

    /// Write a checkpoint if at least `checkpoint_every` reports have
    /// been absorbed since the last one. Runs on the ingest-ack path
    /// after the flush round, so every report the checkpoint counts is
    /// already inside a worker accumulator — an acknowledged stream is
    /// durable (at `--checkpoint-every 1`) before its client sees the
    /// ack.
    fn maybe_checkpoint(&self) {
        let Some(path) = self.checkpoint.as_ref() else {
            return;
        };
        let mut mark = self.lock_checkpoint_mark();
        let absorbed = self.reports.load(Ordering::Relaxed);
        if absorbed.saturating_sub(*mark) < self.checkpoint_every {
            return;
        }
        match self.write_checkpoint_to(path) {
            Ok(reports) => *mark = reports,
            Err(e) => eprintln!("checkpoint: {e}"),
        }
    }

    /// Build and atomically write the checkpoint blob: local-only
    /// state plus the downstream replacement table, kept separate so a
    /// recovered collector never double-counts a child's re-push.
    /// Returns the local report count it recorded.
    fn write_checkpoint_to(&self, path: &std::path::Path) -> Result<u64, String> {
        let (header, local) = self.collect_local()?;
        let reports = local.report_count();
        let downstream = self
            .lock_downstream()
            .iter()
            .map(|(collector, &(epoch, ref state))| DownstreamEntry {
                collector: collector.clone(),
                epoch,
                state: state.clone(),
            })
            .collect();
        write_checkpoint(
            path,
            &Checkpoint {
                collector: self.collector.clone(),
                epoch: self.epoch.load(Ordering::SeqCst),
                reports,
                header,
                local_state: local.to_bytes(),
                downstream,
            },
        )?;
        Ok(reports)
    }

    /// Push the full merged view upstream under the next epoch.
    /// `Ok(true)` means the upstream replaced its entry; `Ok(false)`
    /// means there was nothing to push yet. Any failure is `Err` — the
    /// relay loop backs off and retries, and because every push
    /// carries the *cumulative* view, re-pushing a later snapshot
    /// under a later epoch is exactly the at-least-once contract.
    fn push_upstream(&self, upstream: &str) -> Result<bool, String> {
        let _serialize = self
            .push_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Ok((header, state)) = self.collect() else {
            // No stream has been ingested yet: nothing to push.
            return Ok(false);
        };
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut control =
            Control::connect_within(upstream, RELAY_CONNECT_TIMEOUT, RELAY_IO_TIMEOUT)?;
        let response = control.request(&Request::Push(PushRequest {
            collector: self.collector.clone(),
            epoch,
            header,
            state,
        }))?;
        match response {
            Response::Push { applied: true, .. } => Ok(true),
            Response::Push {
                applied: false,
                latest_epoch,
            } => {
                // The upstream holds a later epoch — this collector
                // restarted from an old checkpoint. Fast-forward past
                // it so the next push applies.
                self.epoch.fetch_max(latest_epoch, Ordering::SeqCst);
                Err(format!(
                    "upstream {upstream} holds epoch {latest_epoch}, ours was {epoch}; \
                     epoch fast-forwarded for the next push"
                ))
            }
            other => Err(format!("unexpected push response: {other:?}")),
        }
    }
}

/// The relay thread of a non-root collector: push the merged view
/// upstream every `push_every`, backing off (doubling, capped) while
/// the upstream is unreachable, until shutdown.
fn relay_loop(shared: &Arc<Shared>, upstream: &str) {
    let mut last_push = Instant::now();
    let mut backoff = RELAY_BACKOFF_MIN;
    let mut retry_at: Option<Instant> = None;
    while shared.keep_going() {
        std::thread::sleep(RELAY_POLL);
        let due = match retry_at {
            Some(at) => Instant::now() >= at,
            None => last_push.elapsed() >= shared.push_every,
        };
        if !due {
            continue;
        }
        match shared.push_upstream(upstream) {
            Ok(_) => {
                last_push = Instant::now();
                backoff = RELAY_BACKOFF_MIN;
                retry_at = None;
            }
            Err(e) => {
                eprintln!("relay: push to {upstream} failed: {e}");
                retry_at = Some(Instant::now() + backoff);
                backoff = (backoff * 2).min(RELAY_BACKOFF_MAX);
            }
        }
    }
}

/// What [`Server::run`] returns after a graceful shutdown.
#[derive(Debug)]
pub struct ServerSummary {
    /// The final snapshot (`None` if no stream was ever ingested).
    pub snapshot: Option<(StreamHeader, Vec<u8>)>,
    /// Reports absorbed in total.
    pub reports: u64,
    /// Connections accepted in total.
    pub connections: u64,
}

/// A bound (but not yet running) aggregation server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    recovery: Option<Recovery>,
}

impl Server {
    /// Bind to `listen` (e.g. `127.0.0.1:7878`; port `0` picks a free
    /// port — read it back with [`Server::local_addr`]) with a worker
    /// pool of `shards` accumulator threads.
    pub fn bind(listen: &str, shards: usize) -> Result<Server, String> {
        Server::bind_with(&ServeConfig::new(listen, shards))
    }

    /// [`Server::bind`] with federation and durability options. If the
    /// configured checkpoint file exists, it is recovered before
    /// serving: the local state seeds the worker pool, and the
    /// downstream table resumes replacement semantics, so children
    /// re-pushing after the restart replace rather than double-count.
    pub fn bind_with(config: &ServeConfig) -> Result<Server, String> {
        if config.shards == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if config.checkpoint.is_some() && config.checkpoint_every == 0 {
            return Err("checkpoint interval must be at least 1 report".to_string());
        }
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("cannot listen on {}: {e}", config.listen))?;
        let recovered = match config.checkpoint.as_ref() {
            Some(path) if path.exists() => Some(read_checkpoint(path)?),
            _ => None,
        };
        let collector = config
            .collector
            .clone()
            .or_else(|| recovered.as_ref().map(|cp| cp.collector.clone()))
            .or_else(|| listener.local_addr().ok().map(|a| a.to_string()))
            .unwrap_or_else(|| config.listen.clone());
        let shared = Arc::new(Shared {
            shards: config.shards,
            shutdown: AtomicBool::new(false),
            next_worker: AtomicUsize::new(0),
            reports: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            rejected_frames: AtomicU64::new(0),
            started: Instant::now(),
            pipeline: Mutex::new(None),
            upstream: config.upstream.clone(),
            push_every: config.push_every,
            collector,
            epoch: AtomicU64::new(0),
            downstream: Mutex::new(BTreeMap::new()),
            checkpoint: config.checkpoint.clone(),
            checkpoint_every: config.checkpoint_every,
            checkpoint_mark: Mutex::new(0),
            push_lock: Mutex::new(()),
        });
        let recovery = match recovered {
            None => None,
            Some(cp) => {
                shared
                    .establish_seeded(cp.header, Some(&cp.local_state))
                    .map_err(|e| format!("checkpoint recovery: {e}"))?;
                shared.reports.store(cp.reports, Ordering::SeqCst);
                shared.epoch.store(cp.epoch, Ordering::SeqCst);
                *shared.lock_checkpoint_mark() = cp.reports;
                let mut downstream = shared.lock_downstream();
                for entry in cp.downstream {
                    downstream.insert(entry.collector, (entry.epoch, entry.state));
                }
                let restored = downstream.len();
                drop(downstream);
                Some(Recovery {
                    reports: cp.reports,
                    epoch: cp.epoch,
                    downstream: restored,
                })
            }
        };
        Ok(Server {
            listener,
            shared,
            recovery,
        })
    }

    /// What checkpoint recovery restored at bind time (`None`: fresh
    /// start), for startup logging.
    #[must_use]
    pub fn recovery(&self) -> Option<Recovery> {
        self.recovery
    }

    /// The address actually bound (resolves a `:0` port request).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read the bound address: {e}"))
    }

    /// Serve until a graceful-shutdown request arrives, then drain
    /// connection handlers, take the final snapshot, and tear down the
    /// worker pool.
    pub fn run(self) -> Result<ServerSummary, String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll the listener: {e}"))?;
        let relay = self.shared.upstream.clone().map(|upstream| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || relay_loop(&shared, &upstream))
        });
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while self.shared.keep_going() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(shared, stream);
                    }));
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
        // Handlers notice the flag within one READ_TIMEOUT window; the
        // relay thread within one RELAY_POLL.
        for handle in handlers {
            let _ = handle.join();
        }
        if let Some(handle) = relay {
            let _ = handle.join();
        }
        // One final at-least-once push (bounded retries — a dead
        // upstream must not wedge shutdown) so reports absorbed since
        // the last periodic push survive in the parent.
        if let Some(upstream) = self.shared.upstream.as_deref() {
            let mut backoff = RELAY_BACKOFF_MIN;
            for attempt in 1..=FINAL_PUSH_ATTEMPTS {
                match self.shared.push_upstream(upstream) {
                    Ok(_) => break,
                    Err(e) => {
                        eprintln!(
                            "final push to {upstream} failed \
                             (attempt {attempt}/{FINAL_PUSH_ATTEMPTS}): {e}"
                        );
                        if attempt < FINAL_PUSH_ATTEMPTS {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(RELAY_BACKOFF_MAX);
                        }
                    }
                }
            }
        }
        // Final checkpoint, recording the post-push epoch, so a
        // restart resumes from the graceful shutdown point.
        if self.shared.checkpoint.is_some() && self.shared.lock_pipeline().is_some() {
            if let Some(path) = self.shared.checkpoint.as_ref() {
                let mut mark = self.shared.lock_checkpoint_mark();
                match self.shared.write_checkpoint_to(path) {
                    Ok(reports) => *mark = reports,
                    Err(e) => eprintln!("final checkpoint: {e}"),
                }
            }
        }
        let snapshot = self.shared.collect().ok();
        let pipeline = self.shared.lock_pipeline().take();
        if let Some(pipeline) = pipeline {
            for Worker { sender, handle } in pipeline.workers {
                drop(sender); // closes the channel; the worker loop ends
                let _ = handle.join();
            }
        }
        Ok(ServerSummary {
            snapshot,
            reports: self.shared.reports.load(Ordering::Relaxed),
            connections: self.shared.connections_accepted.load(Ordering::Relaxed),
        })
    }
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    shared.connections_active.fetch_add(1, Ordering::Relaxed);
    // Per-connection failures are answered on the wire (or the peer
    // vanished); either way the server itself keeps serving.
    let _ = serve_connection(&shared, stream);
    shared.connections_active.fetch_sub(1, Ordering::Relaxed);
}

// `FrameReader` buffers socket reads itself (slicing many frames out
// of one `read` call), so the read half needs no `BufReader`.
type ConnReader = FrameReader<TcpStream>;
type ConnWriter = FrameWriter<BufWriter<TcpStream>>;

fn reply(writer: &mut ConnWriter, response: &Response) -> Result<(), String> {
    writer
        .write_frame(&response.to_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot write response: {e}"))
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> Result<(), String> {
    stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_read_timeout(Some(READ_TIMEOUT)))
        .and_then(|()| stream.set_nodelay(true))
        .map_err(|e| format!("cannot configure the socket: {e}"))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone the socket: {e}"))?;
    let mut reader = FrameReader::new(read_half);
    let mut writer = FrameWriter::new(BufWriter::new(stream));

    let first = match reader.next_frame_while(|| shared.keep_going()) {
        Ok(Some(frame)) => frame,
        Ok(None) | Err(FrameError::Interrupted) => return Ok(()),
        Err(e) => return Err(format!("bad first frame: {e}")),
    };
    match first.first() {
        Some(&tag::STREAM_HEADER) => handle_ingest(shared, &first, &mut reader, &mut writer),
        Some(&(tag::REQ_SNAPSHOT..=tag::REQ_PUSH)) => {
            handle_control(shared, first, &mut reader, &mut writer)
        }
        _ => {
            let message = format!(
                "expected a stream header or request frame, got tag {:?}",
                first.first()
            );
            reply(&mut writer, &Response::Error(message.clone()))?;
            Err(message)
        }
    }
}

/// An ingest connection: header frame, then report frames until a clean
/// end-of-stream, answered with one `Ingested` acknowledgement after
/// every absorbed report is flushed through the workers.
fn handle_ingest(
    shared: &Arc<Shared>,
    header_frame: &[u8],
    reader: &mut ConnReader,
    writer: &mut ConnWriter,
) -> Result<(), String> {
    let header = match StreamHeader::from_bytes(header_frame) {
        Ok(header) => header,
        Err(e) => {
            let message = format!("bad header frame: {e}");
            shared.rejected_frames.fetch_add(1, Ordering::Relaxed);
            reply(writer, &Response::Error(message.clone()))?;
            return Err(message);
        }
    };
    if let Err(message) = shared.establish(header) {
        shared.rejected_frames.fetch_add(1, Ordering::Relaxed);
        reply(writer, &Response::Error(message.clone()))?;
        return Err(message);
    }
    // `establish` just succeeded, so the pipeline can only be absent if
    // shutdown tore it down concurrently — degrade, don't panic.
    let Some((_, senders)) = shared.senders() else {
        return Ok(());
    };

    let mut accepted = 0u64;
    // Outcome of batch frames, settled by whichever workers decode
    // them; folded into the ack after the end-of-stream flush round.
    let progress = Arc::new(IngestProgress::default());
    // One reusable frame buffer per connection: after it has grown to
    // the stream's largest frame, the read loop performs no per-frame
    // allocation for single-report frames (batch frames hand the
    // buffer itself to a worker and start fresh).
    let mut frame = Vec::new();
    loop {
        match reader.next_frame_while_into(&mut frame, || shared.keep_going()) {
            Ok(true) if frame.first() == Some(&tag::REPORT_BATCH) => {
                // Envelope decode and absorption run on the worker;
                // the handler only routes the raw payload, keeping the
                // socket thread on pure frame I/O.
                let payload = std::mem::take(&mut frame);
                let slot = shared.next_worker.fetch_add(1, Ordering::Relaxed) % senders.len();
                match senders.get(slot) {
                    Some(sender)
                        if sender
                            .send(WorkerMsg::Batch(payload, Arc::clone(&progress)))
                            .is_ok() => {}
                    _ => return Ok(()), // workers torn down: shutting down
                }
            }
            Ok(true) => {
                let report = match PipelineReport::from_bytes(&frame) {
                    Ok(report) if report.protocol_tag() == header.protocol => report,
                    Ok(report) => {
                        let message = format!(
                            "stream mixes protocols: header names tag {:#04x}, report is {}",
                            header.protocol,
                            report.protocol_name()
                        );
                        shared.rejected_frames.fetch_add(1, Ordering::Relaxed);
                        reply(writer, &Response::Error(message.clone()))?;
                        return Err(message);
                    }
                    Err(message) => {
                        shared.rejected_frames.fetch_add(1, Ordering::Relaxed);
                        reply(writer, &Response::Error(message.clone()))?;
                        return Err(message);
                    }
                };
                let slot = shared.next_worker.fetch_add(1, Ordering::Relaxed) % senders.len();
                // The modulo keeps `slot` in range (shards ≥ 1); `get`
                // keeps the dispatch index-panic-free regardless.
                match senders.get(slot) {
                    Some(sender) if sender.send(WorkerMsg::Report(report)).is_ok() => {
                        accepted += 1;
                    }
                    _ => return Ok(()), // workers torn down: shutting down
                }
            }
            Ok(false) => {
                // Clean end-of-stream: flush every worker so the ack
                // means "absorbed", not "enqueued". The flush round
                // also settles every batch frame this connection
                // enqueued, so `progress` is complete below.
                for sender in &senders {
                    let (tx, rx) = mpsc::channel();
                    if sender.send(WorkerMsg::Flush(tx)).is_ok() {
                        let _ = rx.recv();
                    }
                }
                if let Some(message) = progress.take_error() {
                    reply(writer, &Response::Error(message.clone()))?;
                    return Err(message);
                }
                let absorbed = accepted + progress.absorbed.load(Ordering::Relaxed);
                // Durability before the ack: at `--checkpoint-every 1`
                // a client that saw its ack knows the reports survive
                // a crash (coarser cadences trade that for less I/O).
                shared.maybe_checkpoint();
                return reply(writer, &Response::Ingested(absorbed));
            }
            Err(FrameError::Interrupted) => return Ok(()), // shutdown mid-stream
            Err(e) => {
                // Disconnect or corruption mid-stream: everything
                // complete up to here stays absorbed; the partial frame
                // is dropped.
                let _ = reply(writer, &Response::Error(format!("report stream: {e}")));
                return Err(format!("report stream: {e}"));
            }
        }
    }
}

/// A control connection: request frames until the peer closes, each
/// answered by exactly one response frame.
fn handle_control(
    shared: &Arc<Shared>,
    first: Vec<u8>,
    reader: &mut ConnReader,
    writer: &mut ConnWriter,
) -> Result<(), String> {
    let mut frame = first;
    loop {
        let (response, stop) = match Request::from_bytes(&frame) {
            Ok(Request::Snapshot) => {
                // A federated collector pushes upstream before
                // answering, so walking a tree leaf-to-root with
                // snapshot requests deterministically propagates every
                // absorbed report to the root (the fleet tests depend
                // on this; a failed push is logged and the snapshot is
                // still served).
                if let Some(upstream) = shared.upstream.as_deref() {
                    if let Err(e) = shared.push_upstream(upstream) {
                        eprintln!("relay: push to {upstream} failed: {e}");
                    }
                }
                (
                    match shared.collect() {
                        Ok((header, state)) => Response::Snapshot { header, state },
                        Err(e) => Response::Error(e),
                    },
                    false,
                )
            }
            Ok(Request::Push(push)) => (shared.apply_push(push), false),
            Ok(Request::Query(q)) => (
                match shared.query(q.target, q.normalize) {
                    Ok(table) => Response::Query(table),
                    Err(e) => Response::Error(e),
                },
                false,
            ),
            Ok(Request::Stats) => (Response::Stats(shared.stats()), false),
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                (
                    Response::Shutdown(shared.reports.load(Ordering::Relaxed)),
                    true,
                )
            }
            Err(e) => (Response::Error(format!("bad request frame: {e}")), false),
        };
        reply(writer, &response)?;
        if stop {
            return Ok(());
        }
        frame = match reader.next_frame_while(|| shared.keep_going()) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(FrameError::Interrupted) => return Ok(()),
            Err(e) => return Err(format!("control connection: {e}")),
        };
    }
}
