//! Federation durability: the collector checkpoint file.
//!
//! A checkpoint is one frame whose payload is a `CHECKPOINT` wire blob
//! (`docs/WIRE_FORMAT.md` §6.1): the collector's push identity and
//! epoch counter, its locally-absorbed accumulator state, and the
//! latest snapshot each downstream collector pushed. `ldp-cli serve
//! --checkpoint PATH` writes one after every ingest acknowledgement
//! that crosses the `--checkpoint-every` threshold (and on graceful
//! shutdown); on restart the file seeds the worker pool and the
//! downstream replacement table, so the collector resumes exactly
//! where the last checkpoint left it — reports absorbed after it are
//! lost with the crash and covered by the clients' at-least-once
//! resend contract.
//!
//! Local state deliberately **excludes** downstream contributions: they
//! recover into the replacement table instead, so a child's next
//! cumulative push replaces (never double-counts) what the checkpoint
//! already held.

use ldp_core::frame::{FrameError, FrameReader, FrameWriter, StreamHeader};
use ldp_core::wire::{tag, Reader, WireError, Writer};
use std::fs;
use std::path::{Path, PathBuf};

/// The smallest possible encoded downstream entry: a `u32` length
/// prefix for an empty collector id, the `u64` epoch, and a `u32`
/// length prefix for an empty state blob. Guards the entry-count
/// prefix against allocation attacks before any entry is decoded.
const MIN_DOWNSTREAM_ENTRY: u64 = 16;

/// The latest snapshot one downstream collector pushed (the upstream's
/// replacement-table entry for that collector id).
#[derive(Clone, Debug, PartialEq)]
pub struct DownstreamEntry {
    /// The pushing collector's identity.
    pub collector: String,
    /// The latest epoch it pushed under.
    pub epoch: u64,
    /// Its latest cumulative accumulator state.
    pub state: Vec<u8>,
}

/// Everything a restarted collector needs to resume: the
/// [`tag::CHECKPOINT`] blob.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The identity this collector pushes upstream under.
    pub collector: String,
    /// The push-epoch counter at write time.
    pub epoch: u64,
    /// Locally-absorbed reports at write time.
    pub reports: u64,
    /// The established pipeline header.
    pub header: StreamHeader,
    /// Worker states merged in worker order — local reports only.
    pub local_state: Vec<u8>,
    /// The downstream replacement table, in collector-id order.
    pub downstream: Vec<DownstreamEntry>,
}

impl Checkpoint {
    /// Serialize into a `CHECKPOINT` wire blob.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::CHECKPOINT);
        w.put_bytes(self.collector.as_bytes());
        w.put_u64(self.epoch);
        w.put_u64(self.reports);
        w.put_bytes(&self.header.to_bytes());
        w.put_bytes(&self.local_state);
        w.put_u64(self.downstream.len() as u64);
        for entry in &self.downstream {
            w.put_bytes(entry.collector.as_bytes());
            w.put_u64(entry.epoch);
            w.put_bytes(&entry.state);
        }
        w.into_bytes()
    }

    /// Decode a `CHECKPOINT` wire blob.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::CHECKPOINT)?;
        let collector = utf8(r.get_bytes()?)?;
        let epoch = r.get_u64()?;
        let reports = r.get_u64()?;
        let header_bytes = r.get_bytes()?;
        let local_state = r.get_bytes()?;
        let count = r.get_u64()?;
        // Every entry costs at least MIN_DOWNSTREAM_ENTRY bytes, so a
        // count the remaining payload cannot possibly hold is
        // corruption, not an allocation request.
        if count > (r.remaining() as u64) / MIN_DOWNSTREAM_ENTRY {
            return Err(WireError::Truncated);
        }
        let mut downstream = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
        for _ in 0..count {
            let entry_collector = utf8(r.get_bytes()?)?;
            let entry_epoch = r.get_u64()?;
            let state = r.get_bytes()?;
            downstream.push(DownstreamEntry {
                collector: entry_collector,
                epoch: entry_epoch,
                state,
            });
        }
        r.finish()?;
        let header = StreamHeader::from_bytes(&header_bytes)?;
        Ok(Checkpoint {
            collector,
            epoch,
            reports,
            header,
            local_state,
            downstream,
        })
    }
}

fn utf8(bytes: Vec<u8>) -> Result<String, WireError> {
    String::from_utf8(bytes).map_err(|_| WireError::Invalid("checkpoint collector id is not UTF-8"))
}

/// Write `checkpoint` to `path` atomically: the blob goes to
/// `path.tmp` first and is renamed over `path`, so a crash mid-write
/// leaves the previous checkpoint intact.
pub fn write_checkpoint(path: &Path, checkpoint: &Checkpoint) -> Result<(), String> {
    let tmp = tmp_path(path);
    let write = (|| -> Result<(), FrameError> {
        let file = fs::File::create(&tmp)?;
        let mut writer = FrameWriter::new(std::io::BufWriter::new(file));
        writer.write_frame(&checkpoint.to_bytes())?;
        writer.flush()
    })();
    if let Err(e) = write {
        let _ = fs::remove_file(&tmp);
        return Err(format!("cannot write checkpoint {}: {e}", tmp.display()));
    }
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        format!(
            "cannot move checkpoint {} into place at {}: {e}",
            tmp.display(),
            path.display()
        )
    })
}

/// Read a checkpoint file: exactly one `CHECKPOINT` frame, nothing
/// after it.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, String> {
    let file = fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut reader = FrameReader::new(file);
    let frame = reader
        .next_frame()
        .map_err(|e| format!("{}: {e}", path.display()))?
        .ok_or_else(|| format!("{}: empty checkpoint file", path.display()))?;
    let checkpoint =
        Checkpoint::from_bytes(&frame).map_err(|e| format!("{}: {e}", path.display()))?;
    match reader.next_frame() {
        Ok(None) => Ok(checkpoint),
        Ok(Some(_)) => Err(format!(
            "{}: trailing frame after the checkpoint blob",
            path.display()
        )),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::MechanismKind;

    fn sample() -> Checkpoint {
        Checkpoint {
            collector: "edge-1".to_string(),
            epoch: 9,
            reports: 1234,
            header: StreamHeader::mechanism(MechanismKind::MargPs, 8, 2, 1.1),
            local_state: vec![5, 1, 2, 3, 4],
            downstream: vec![
                DownstreamEntry {
                    collector: "leaf-a".to_string(),
                    epoch: 3,
                    state: vec![5, 1],
                },
                DownstreamEntry {
                    collector: "leaf-b".to_string(),
                    epoch: 7,
                    state: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let cp = sample();
        assert_eq!(Checkpoint::from_bytes(&cp.to_bytes()).unwrap(), cp);
        let empty = Checkpoint {
            downstream: Vec::new(),
            ..sample()
        };
        assert_eq!(Checkpoint::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn checkpoint_rejects_truncation_everywhere() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(bytes.get(..cut).unwrap()).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Checkpoint::from_bytes(&trailing).is_err());
    }

    #[test]
    fn checkpoint_rejects_forged_entry_count() {
        let mut cp = sample();
        cp.downstream.clear();
        let mut bytes = cp.to_bytes();
        // The downstream count is the last 8 bytes of an entry-less
        // blob; forge it to promise ~2^61 entries.
        let len = bytes.len();
        let Some(count_bytes) = bytes.get_mut(len - 8..) else {
            panic!("blob shorter than its count field");
        };
        count_bytes.copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Checkpoint::from_bytes(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn checkpoint_file_round_trips_and_rejects_trailing_frames() {
        let dir = std::env::temp_dir().join(format!("ldp_ckpt_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let cp = sample();
        write_checkpoint(&path, &cp).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), cp);
        // Overwrite is atomic: a second write replaces the first.
        let cp2 = Checkpoint {
            epoch: 10,
            ..sample()
        };
        write_checkpoint(&path, &cp2).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), cp2);
        // A trailing frame is rejected.
        let mut raw = fs::read(&path).unwrap();
        raw.extend_from_slice(&4u32.to_le_bytes());
        raw.extend_from_slice(&[0; 4]);
        fs::write(&path, &raw).unwrap();
        assert!(read_checkpoint(&path).unwrap_err().contains("trailing"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
