//! Control-plane request/response frames (tags `0x50`–`0x5F`).
//!
//! A control connection carries a sequence of request frames, each
//! answered by exactly one response frame; an ingest connection carries
//! a `StreamHeader` frame, report frames, and (after a clean
//! end-of-stream) one [`Response::Ingested`] acknowledgement. Every
//! payload is a standard wire blob — leading type tag, format version,
//! then little-endian fields — so the control plane rides the exact
//! byte conventions of `docs/WIRE_FORMAT.md`.

use ldp_core::frame::StreamHeader;
use ldp_core::wire::{tag, Reader, WireError, Writer};

/// What a [`Request::Query`] asks the live accumulator for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryTarget {
    /// A k-way marginal table over the attribute set named by these
    /// mask bits (mechanism pipelines).
    Marginal(u64),
    /// The frequency estimate of one domain value (oracle pipelines).
    Value(u64),
}

/// A [`Request::Query`] body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// What to estimate.
    pub target: QueryTarget,
    /// Clamp-normalize marginal tables into a distribution
    /// (mechanisms only; ignored for value queries).
    pub normalize: bool,
}

/// A [`Request::Push`] body: a downstream collector's cumulative
/// snapshot, pushed up the aggregation tree (wire v3; semantics in
/// `docs/WIRE_FORMAT.md` §7.3).
#[derive(Clone, Debug, PartialEq)]
pub struct PushRequest {
    /// The pushing collector's stable identity (UTF-8). The upstream
    /// keeps one snapshot per collector id and replaces it on re-push.
    pub collector: String,
    /// Monotonic push epoch: a push with an epoch below the upstream's
    /// latest for this collector is stale and ignored.
    pub epoch: u64,
    /// The pushing collector's established pipeline header.
    pub header: StreamHeader,
    /// Its full merged accumulator state (`Accumulator::to_bytes`).
    pub state: Vec<u8>,
}

/// One control-plane request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// The live merged snapshot ([`tag::REQ_SNAPSHOT`]).
    Snapshot,
    /// One finalized estimate ([`tag::REQ_QUERY`]).
    Query(QueryRequest),
    /// Server counters ([`tag::REQ_STATS`]).
    Stats,
    /// Graceful shutdown ([`tag::REQ_SHUTDOWN`]).
    Shutdown,
    /// A downstream collector pushes its merged snapshot
    /// ([`tag::REQ_PUSH`], wire v3).
    Push(PushRequest),
}

impl Request {
    /// Serialize into a request frame payload.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Request::Snapshot => Writer::with_tag(tag::REQ_SNAPSHOT).into_bytes(),
            Request::Query(q) => {
                let mut w = Writer::with_tag(tag::REQ_QUERY);
                let (kind, arg) = match q.target {
                    QueryTarget::Marginal(mask) => (0u8, mask),
                    QueryTarget::Value(v) => (1u8, v),
                };
                w.put_u8(kind);
                w.put_u64(arg);
                w.put_u8(u8::from(q.normalize));
                w.into_bytes()
            }
            Request::Stats => Writer::with_tag(tag::REQ_STATS).into_bytes(),
            Request::Shutdown => Writer::with_tag(tag::REQ_SHUTDOWN).into_bytes(),
            Request::Push(p) => {
                let mut w = Writer::with_tag(tag::REQ_PUSH);
                w.put_bytes(p.collector.as_bytes());
                w.put_u64(p.epoch);
                w.put_bytes(&p.header.to_bytes());
                w.put_bytes(&p.state);
                w.into_bytes()
            }
        }
    }

    /// Decode a request frame payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        match Reader::peek_tag(bytes) {
            Some(tag::REQ_SNAPSHOT) => {
                Reader::with_tag(bytes, tag::REQ_SNAPSHOT)?.finish()?;
                Ok(Request::Snapshot)
            }
            Some(tag::REQ_QUERY) => {
                let mut r = Reader::with_tag(bytes, tag::REQ_QUERY)?;
                let kind = r.get_u8()?;
                let arg = r.get_u64()?;
                let normalize = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Invalid("query normalize flag")),
                };
                r.finish()?;
                let target = match kind {
                    0 => QueryTarget::Marginal(arg),
                    1 => QueryTarget::Value(arg),
                    _ => return Err(WireError::Invalid("query target kind")),
                };
                Ok(Request::Query(QueryRequest { target, normalize }))
            }
            Some(tag::REQ_STATS) => {
                Reader::with_tag(bytes, tag::REQ_STATS)?.finish()?;
                Ok(Request::Stats)
            }
            Some(tag::REQ_SHUTDOWN) => {
                Reader::with_tag(bytes, tag::REQ_SHUTDOWN)?.finish()?;
                Ok(Request::Shutdown)
            }
            Some(tag::REQ_PUSH) => {
                let mut r = Reader::with_tag(bytes, tag::REQ_PUSH)?;
                let collector = String::from_utf8(r.get_bytes()?)
                    .map_err(|_| WireError::Invalid("push collector id is not UTF-8"))?;
                let epoch = r.get_u64()?;
                let header_bytes = r.get_bytes()?;
                let state = r.get_bytes()?;
                r.finish()?;
                let header = StreamHeader::from_bytes(&header_bytes)?;
                Ok(Request::Push(PushRequest {
                    collector,
                    epoch,
                    header,
                    state,
                }))
            }
            _ => Err(WireError::Invalid("unknown request tag")),
        }
    }
}

/// The counters a [`Request::Stats`] reply carries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerStats {
    /// The established pipeline's header (`None` until the first
    /// report stream arrives).
    pub header: Option<StreamHeader>,
    /// Reports absorbed across all workers.
    pub reports: u64,
    /// Worker (shard) count.
    pub workers: u32,
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u32,
    /// Report frames rejected (malformed or cross-protocol).
    pub rejected_frames: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

/// One response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The live merged snapshot: the pipeline header plus serialized
    /// accumulator state ([`tag::RESP_SNAPSHOT`]).
    Snapshot {
        /// The established pipeline's header.
        header: StreamHeader,
        /// Merged accumulator state (`Accumulator::to_bytes`).
        state: Vec<u8>,
    },
    /// A finalized estimate: a marginal table, or a single-element
    /// frequency ([`tag::RESP_QUERY`]).
    Query(Vec<f64>),
    /// Server counters ([`tag::RESP_STATS`]).
    Stats(ServerStats),
    /// Shutdown acknowledged; `reports` absorbed in total
    /// ([`tag::RESP_SHUTDOWN`]).
    Shutdown(u64),
    /// Ingest stream acknowledged; `reports` absorbed from this
    /// connection ([`tag::RESP_INGEST`]).
    Ingested(u64),
    /// Verdict on a snapshot push ([`tag::RESP_PUSH`], wire v3).
    Push {
        /// Whether the pushed snapshot replaced the held one (`false`:
        /// the epoch was stale and nothing changed).
        applied: bool,
        /// The latest epoch the upstream now holds for this collector
        /// (the pushed epoch when `applied`; on a stale push, the
        /// value to fast-forward past).
        latest_epoch: u64,
    },
    /// The request (or stream) was rejected ([`tag::RESP_ERROR`]).
    Error(String),
}

impl Response {
    /// Serialize into a response frame payload.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Response::Snapshot { header, state } => {
                let mut w = Writer::with_tag(tag::RESP_SNAPSHOT);
                w.put_bytes(&header.to_bytes());
                w.put_bytes(state);
                w.into_bytes()
            }
            Response::Query(table) => {
                let mut w = Writer::with_tag(tag::RESP_QUERY);
                w.put_f64_slice(table);
                w.into_bytes()
            }
            Response::Stats(s) => {
                let mut w = Writer::with_tag(tag::RESP_STATS);
                match &s.header {
                    Some(h) => w.put_bytes(&h.to_bytes()),
                    None => w.put_bytes(&[]),
                }
                w.put_u64(s.reports);
                w.put_u32(s.workers);
                w.put_u64(s.connections_accepted);
                w.put_u32(s.connections_active);
                w.put_u64(s.rejected_frames);
                w.put_u64(s.uptime_ms);
                w.into_bytes()
            }
            Response::Shutdown(reports) => {
                let mut w = Writer::with_tag(tag::RESP_SHUTDOWN);
                w.put_u64(*reports);
                w.into_bytes()
            }
            Response::Ingested(reports) => {
                let mut w = Writer::with_tag(tag::RESP_INGEST);
                w.put_u64(*reports);
                w.into_bytes()
            }
            Response::Push {
                applied,
                latest_epoch,
            } => {
                let mut w = Writer::with_tag(tag::RESP_PUSH);
                w.put_u8(u8::from(*applied));
                w.put_u64(*latest_epoch);
                w.into_bytes()
            }
            Response::Error(message) => {
                let mut w = Writer::with_tag(tag::RESP_ERROR);
                w.put_bytes(message.as_bytes());
                w.into_bytes()
            }
        }
    }

    /// Decode a response frame payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        match Reader::peek_tag(bytes) {
            Some(tag::RESP_SNAPSHOT) => {
                let mut r = Reader::with_tag(bytes, tag::RESP_SNAPSHOT)?;
                let header_bytes = r.get_bytes()?;
                let state = r.get_bytes()?;
                r.finish()?;
                let header = StreamHeader::from_bytes(&header_bytes)?;
                Ok(Response::Snapshot { header, state })
            }
            Some(tag::RESP_QUERY) => {
                let mut r = Reader::with_tag(bytes, tag::RESP_QUERY)?;
                let table = r.get_f64_vec()?;
                r.finish()?;
                Ok(Response::Query(table))
            }
            Some(tag::RESP_STATS) => {
                let mut r = Reader::with_tag(bytes, tag::RESP_STATS)?;
                let header_bytes = r.get_bytes()?;
                let header = if header_bytes.is_empty() {
                    None
                } else {
                    Some(StreamHeader::from_bytes(&header_bytes)?)
                };
                let stats = ServerStats {
                    header,
                    reports: r.get_u64()?,
                    workers: r.get_u32()?,
                    connections_accepted: r.get_u64()?,
                    connections_active: r.get_u32()?,
                    rejected_frames: r.get_u64()?,
                    uptime_ms: r.get_u64()?,
                };
                r.finish()?;
                Ok(Response::Stats(stats))
            }
            Some(tag::RESP_SHUTDOWN) => {
                let mut r = Reader::with_tag(bytes, tag::RESP_SHUTDOWN)?;
                let reports = r.get_u64()?;
                r.finish()?;
                Ok(Response::Shutdown(reports))
            }
            Some(tag::RESP_INGEST) => {
                let mut r = Reader::with_tag(bytes, tag::RESP_INGEST)?;
                let reports = r.get_u64()?;
                r.finish()?;
                Ok(Response::Ingested(reports))
            }
            Some(tag::RESP_PUSH) => {
                let mut r = Reader::with_tag(bytes, tag::RESP_PUSH)?;
                let applied = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Invalid("push applied flag")),
                };
                let latest_epoch = r.get_u64()?;
                r.finish()?;
                Ok(Response::Push {
                    applied,
                    latest_epoch,
                })
            }
            Some(tag::RESP_ERROR) => {
                let mut r = Reader::with_tag(bytes, tag::RESP_ERROR)?;
                let message = r.get_bytes()?;
                r.finish()?;
                Ok(Response::Error(
                    String::from_utf8_lossy(&message).into_owned(),
                ))
            }
            _ => Err(WireError::Invalid("unknown response tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::MechanismKind;

    #[test]
    fn requests_round_trip() {
        let all = [
            Request::Snapshot,
            Request::Query(QueryRequest {
                target: QueryTarget::Marginal(0b1001),
                normalize: true,
            }),
            Request::Query(QueryRequest {
                target: QueryTarget::Value(200),
                normalize: false,
            }),
            Request::Stats,
            Request::Shutdown,
            Request::Push(PushRequest {
                collector: "edge-1".to_string(),
                epoch: 7,
                header: StreamHeader::mechanism(MechanismKind::MargPs, 8, 2, 1.1),
                state: vec![5, 1, 2, 3],
            }),
            Request::Push(PushRequest {
                collector: String::new(),
                epoch: 0,
                header: StreamHeader::mechanism(MechanismKind::MargPs, 8, 2, 1.1),
                state: Vec::new(),
            }),
        ];
        for req in all {
            assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
        }
        assert!(Request::from_bytes(&[0x7E, 1]).is_err());
        assert!(Request::from_bytes(&[]).is_err());
        // Trailing bytes after a fixed-size request are rejected.
        let mut long = Request::Stats.to_bytes();
        long.push(0);
        assert_eq!(Request::from_bytes(&long), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn responses_round_trip() {
        let header = StreamHeader::mechanism(MechanismKind::MargPs, 8, 2, 1.1);
        let all = [
            Response::Snapshot {
                header,
                state: vec![5, 1, 2, 3],
            },
            Response::Query(vec![0.25, 0.75]),
            Response::Stats(ServerStats {
                header: Some(header),
                reports: 1000,
                workers: 4,
                connections_accepted: 9,
                connections_active: 2,
                rejected_frames: 1,
                uptime_ms: 1234,
            }),
            Response::Stats(ServerStats {
                header: None,
                reports: 0,
                workers: 4,
                connections_accepted: 0,
                connections_active: 1,
                rejected_frames: 0,
                uptime_ms: 7,
            }),
            Response::Shutdown(1000),
            Response::Ingested(250),
            Response::Push {
                applied: true,
                latest_epoch: 7,
            },
            Response::Push {
                applied: false,
                latest_epoch: u64::MAX,
            },
            Response::Error("no report stream has been ingested yet".to_string()),
        ];
        for resp in all {
            assert_eq!(Response::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
        assert!(Response::from_bytes(&[0x7E, 1]).is_err());
    }

    #[test]
    fn push_frames_reject_malformed_bodies() {
        let good = Request::Push(PushRequest {
            collector: "edge".to_string(),
            epoch: 3,
            header: StreamHeader::mechanism(MechanismKind::MargPs, 8, 2, 1.1),
            state: vec![5, 1],
        });
        let bytes = good.to_bytes();
        // Truncation anywhere in the body is rejected.
        for cut in 2..bytes.len() {
            assert!(Request::from_bytes(bytes.get(..cut).unwrap()).is_err());
        }
        // A push ack with an out-of-range applied flag is rejected.
        let mut bad = Response::Push {
            applied: true,
            latest_epoch: 1,
        }
        .to_bytes();
        if let Some(flag) = bad.get_mut(2) {
            *flag = 2;
        }
        assert_eq!(
            Response::from_bytes(&bad),
            Err(WireError::Invalid("push applied flag"))
        );
    }
}
