//! Blocking client helpers for the aggregation server: push a report
//! stream (single-report or batched frames), or hold a control session.

use crate::protocol::{Request, Response};
use ldp_core::frame::{FrameError, FrameReader, FrameWriter, StreamHeader};
use ldp_oracles::pipeline::encode_report_batch;
use std::io::BufWriter;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default bound on establishing a TCP connection. A dead or
/// unroutable peer (a crashed upstream collector, a typo'd `--connect`)
/// fails fast with a named error instead of hanging for the OS default
/// (minutes on most platforms) — fleet tests and CI depend on this.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Default bound on any single socket read/write making no progress.
/// Generous enough for a snapshot of any realistic state size over
/// loopback or LAN; a peer that goes silent mid-response surfaces as a
/// timed-out I/O error rather than a hung client.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Connect with [`CONNECT_TIMEOUT`] and arm both socket directions
/// with `io_timeout`. `TcpStream::connect_timeout` needs a resolved
/// address, so resolution errors and per-address failures are folded
/// into one named error.
fn connect_within(
    addr: &str,
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<TcpStream, String> {
    let addrs = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?;
    let mut last_error = None;
    for resolved in addrs {
        match TcpStream::connect_timeout(&resolved, connect_timeout) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(io_timeout))
                    .and_then(|()| stream.set_write_timeout(Some(io_timeout)))
                    .map_err(|e| format!("cannot configure the socket: {e}"))?;
                return Ok(stream);
            }
            Err(e) => last_error = Some(e),
        }
    }
    Err(match last_error {
        Some(e) => format!("cannot connect to {addr}: {e}"),
        None => format!("cannot connect to {addr}: address resolved to nothing"),
    })
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    connect_within(addr, CONNECT_TIMEOUT, IO_TIMEOUT)
}

/// The frame writer handed to [`push_with`] callbacks.
pub type PushWriter = FrameWriter<BufWriter<TcpStream>>;

/// Push one report stream — header frame, then every report frame — and
/// wait for the server's `Ingested` acknowledgement, which confirms the
/// reports were *absorbed* (not merely received). Returns the absorbed
/// count.
pub fn push_reports(addr: &str, header: &StreamHeader, frames: &[Vec<u8>]) -> Result<u64, String> {
    push_with(addr, header, |writer| {
        for frame in frames {
            writer.write_frame(frame)?;
        }
        Ok(())
    })
}

/// Push one report stream as `REPORT_BATCH` frames (wire v2) of up to
/// `batch` reports each, and wait for the ingest acknowledgement.
/// `frames` holds pre-encoded single-report payloads, exactly as for
/// [`push_reports`]; a `batch` of `0` falls back to one frame per
/// report (the wire-v1 shape). See `docs/OPERATIONS.md` for sizing.
pub fn push_report_batches(
    addr: &str,
    header: &StreamHeader,
    frames: &[Vec<u8>],
    batch: usize,
) -> Result<u64, String> {
    if batch == 0 {
        return push_reports(addr, header, frames);
    }
    push_with(addr, header, |writer| {
        for chunk in frames.chunks(batch) {
            writer.write_frame(&encode_report_batch(chunk))?;
        }
        Ok(())
    })
}

/// Push exactly one report frame (typically a `REPORT_BATCH` payload
/// built by the batched encode kernels) as its own stream — header,
/// frame, half-close, acknowledgement. One connection per call: this is
/// the open-loop load generator's send primitive, where each scheduled
/// batch's ack latency is measured over its own connection.
pub fn push_frame(addr: &str, header: &StreamHeader, frame: &[u8]) -> Result<u64, String> {
    push_with(addr, header, |writer| writer.write_frame(frame))
}

/// The shared push path: connect, write the header frame and whatever
/// report frames `write_reports` produces, half-close, and decode the
/// server's verdict. Public so callers (the `load` traffic generator)
/// can stream frames as they are encoded instead of materializing the
/// whole stream first.
pub fn push_with<F>(addr: &str, header: &StreamHeader, write_reports: F) -> Result<u64, String>
where
    F: FnOnce(&mut PushWriter) -> Result<(), FrameError>,
{
    let stream = connect(addr)?;
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone the socket: {e}"))?;
    let mut reader = FrameReader::new(read_half);
    let mut writer = FrameWriter::new(BufWriter::new(stream));

    let wrote = (|| {
        writer.write_frame(&header.to_bytes())?;
        write_reports(&mut writer)?;
        writer.flush()
    })();
    if wrote.is_ok() {
        // Half-close the write side so the server sees a clean
        // end-of-stream and answers with the ingest acknowledgement.
        if let Ok(stream) = writer.into_inner().into_inner() {
            let _ = stream.shutdown(Shutdown::Write);
        }
    }
    // Read the server's verdict even if our writes died on a broken
    // pipe — the server rejects streams by replying and closing, and
    // its error message beats "connection reset".
    let response = reader
        .next_frame()
        .map_err(|e| format!("no ingest acknowledgement: {e}"))
        .and_then(|frame| {
            frame.ok_or_else(|| "server closed the stream without acknowledging".to_string())
        })
        .and_then(|frame| {
            Response::from_bytes(&frame).map_err(|e| format!("bad acknowledgement frame: {e}"))
        });
    match response {
        Ok(Response::Ingested(reports)) => Ok(reports),
        Ok(Response::Error(message)) => Err(format!("server rejected the stream: {message}")),
        Ok(other) => Err(format!("unexpected ingest acknowledgement: {other:?}")),
        Err(e) => match wrote {
            Err(write_error) => Err(format!("cannot push reports: {write_error}")),
            Ok(()) => Err(e),
        },
    }
}

/// A control session: one connection carrying any number of sequential
/// request/response exchanges.
pub struct Control {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<BufWriter<TcpStream>>,
}

impl Control {
    /// Open a control connection to a running server, bounded by the
    /// default [`CONNECT_TIMEOUT`] and [`IO_TIMEOUT`] — a dead peer
    /// fails fast instead of hanging the caller.
    pub fn connect(addr: &str) -> Result<Control, String> {
        Control::connect_within(addr, CONNECT_TIMEOUT, IO_TIMEOUT)
    }

    /// Open a control connection with explicit connect and I/O
    /// timeouts (the relay loop uses tighter bounds than the default
    /// so a dead upstream costs one backoff step, not half a minute).
    pub fn connect_within(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<Control, String> {
        let stream = connect_within(addr, connect_timeout, io_timeout)?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("cannot configure the socket: {e}"))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone the socket: {e}"))?;
        Ok(Control {
            reader: FrameReader::new(read_half),
            writer: FrameWriter::new(BufWriter::new(stream)),
        })
    }

    /// Send one request and wait for its response frame. A
    /// [`Response::Error`] is surfaced as `Err`.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.writer
            .write_frame(&request.to_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send the request: {e}"))?;
        let frame = self
            .reader
            .next_frame()
            .map_err(|e| format!("no response: {e}"))?
            .ok_or_else(|| "server closed the connection without responding".to_string())?;
        match Response::from_bytes(&frame).map_err(|e| format!("bad response frame: {e}"))? {
            Response::Error(message) => Err(message),
            response => Ok(response),
        }
    }
}
