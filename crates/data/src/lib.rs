#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Dataset substrate: binary record collections, exact (non-private)
//! marginals, and synthetic generators standing in for the paper's two
//! evaluation datasets.
//!
//! The mechanisms only ever see the empirical distribution of `d`-bit user
//! records, so the generators are calibrated to match the *structure* the
//! paper's evaluation depends on (see `DESIGN.md` §2):
//!
//! * [`taxi`] — NYC-taxi-like generator: 8 binary attributes of Table 1,
//!   the Figure 2 ⟨M_pick, M_drop⟩ joint, and the Figure 3 correlation
//!   pattern (three strongly-positive pairs, weak/negative elsewhere);
//! * [`movielens`] — MovieLens-like genre preferences: latent per-user
//!   activity × per-genre popularity, all pairs positively correlated;
//! * [`synthetic`] — product-Bernoulli and lightly-skewed full-domain
//!   distributions (Figure 10);
//! * [`categorical`] — categorical schemas and the §6.3 binary encoding;
//! * [`csv`] — the CSV row format shared by [`BinaryDataset::from_csv`]
//!   and the `ldp-cli encode` subcommand.

pub mod categorical;
mod correlation;
pub mod csv;
mod dataset;
pub mod movielens;
pub mod synthetic;
pub mod taxi;

pub use correlation::{pearson, pearson_matrix};
pub use dataset::BinaryDataset;
