//! Product-Bernoulli and skewed full-domain synthetic distributions
//! (the "lightly skewed" data of Figure 10, plus workloads for tests).

use crate::BinaryDataset;
use ldp_sampling::AliasTable;
use rand::Rng;

/// A dataset whose attributes are independent Bernoulli variables with the
/// given means.
pub fn product_bernoulli<R: Rng + ?Sized>(probs: &[f64], n: usize, rng: &mut R) -> BinaryDataset {
    assert!(!probs.is_empty() && probs.len() <= 63);
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    let d = probs.len() as u32;
    let rows = (0..n)
        .map(|_| {
            let mut row = 0u64;
            for (j, &p) in probs.iter().enumerate() {
                if rng.gen_bool(p) {
                    row |= 1u64 << j;
                }
            }
            row
        })
        .collect();
    BinaryDataset::new(d, rows)
}

/// A uniform dataset over `{0,1}^d`.
pub fn uniform<R: Rng + ?Sized>(d: u32, n: usize, rng: &mut R) -> BinaryDataset {
    assert!(d <= 63);
    let mask = if d == 63 {
        (1u64 << 63) - 1
    } else {
        (1u64 << d) - 1
    };
    let rows = (0..n).map(|_| rng.gen::<u64>() & mask).collect();
    BinaryDataset::new(d, rows)
}

/// A full-domain distribution with Zipf-like cell weights
/// `w_r ∝ 1/(r+1)^s` assigned to cells in a pseudo-random order, then a
/// dataset of `n` i.i.d. draws from it. `s ≈ 0.5` gives the "lightly
/// skewed" input of Figure 10; larger `s` gives the "more skewed" variant
/// the paper mentions favors the sketch.
pub fn zipf_skewed<R: Rng + ?Sized>(d: u32, s: f64, n: usize, rng: &mut R) -> BinaryDataset {
    let sampler = ZipfSkewed::new(d, s, rng);
    let rows = (0..n).map(|_| sampler.sample_row(rng)).collect();
    BinaryDataset::new(d, rows)
}

/// The reusable half of [`zipf_skewed`]: the shuffled-weight alias table,
/// split out so callers can draw rows one at a time (a load generator
/// streaming millions of rows should not materialize them all).
/// `ZipfSkewed::new` consumes exactly the RNG draws of the [`zipf_skewed`]
/// setup and `sample_row` exactly one draw schedule per row, so
/// `new` + `n × sample_row` on one RNG reproduces `zipf_skewed(d, s, n)`
/// bit for bit.
#[derive(Clone, Debug)]
pub struct ZipfSkewed {
    table: AliasTable,
}

impl ZipfSkewed {
    /// Build the shuffled Zipf weight table over `{0,1}^d` (`d ≤ 24`).
    pub fn new<R: Rng + ?Sized>(d: u32, s: f64, rng: &mut R) -> Self {
        assert!(d <= 24, "full-domain skewed generator supports d ≤ 24");
        let cells = 1usize << d;
        let mut weights: Vec<f64> = (0..cells).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        // Shuffle which cell gets which weight so skew is not aligned with the
        // numeric order of the domain (Fisher–Yates).
        for i in (1..cells).rev() {
            let j = rng.gen_range(0..=i);
            weights.swap(i, j);
        }
        ZipfSkewed {
            table: AliasTable::new(&weights),
        }
    }

    /// Draw one row.
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.table.sample(rng) as u64
    }
}

/// A point-mass-plus-noise dataset: fraction `heavy` of the records take
/// the single value `mode`; the rest are uniform. Useful for testing
/// frequency-oracle heavy-hitter behavior.
pub fn point_mass<R: Rng + ?Sized>(
    d: u32,
    mode: u64,
    heavy: f64,
    n: usize,
    rng: &mut R,
) -> BinaryDataset {
    assert!((0.0..=1.0).contains(&heavy));
    assert!(d <= 63 && mode < (1u64 << d));
    let mask = (1u64 << d) - 1;
    let rows = (0..n)
        .map(|_| {
            if rng.gen_bool(heavy) {
                mode
            } else {
                rng.gen::<u64>() & mask
            }
        })
        .collect();
    BinaryDataset::new(d, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_bits::Mask;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn product_means_match() {
        let mut rng = StdRng::seed_from_u64(0);
        let probs = [0.1, 0.5, 0.9];
        let ds = product_bernoulli(&probs, 100_000, &mut rng);
        for (j, &p) in probs.iter().enumerate() {
            assert!((ds.attribute_mean(j as u32) - p).abs() < 0.01);
        }
    }

    #[test]
    fn product_attrs_independent() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = product_bernoulli(&[0.3, 0.6], 200_000, &mut rng);
        let joint = ds.true_marginal(Mask::full(2));
        let expect_11 = 0.3 * 0.6;
        assert!((joint[0b11] - expect_11).abs() < 0.01);
    }

    #[test]
    fn uniform_is_flat() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = uniform(4, 200_000, &mut rng);
        let t = ds.full_distribution();
        for v in &t {
            assert!((v - 1.0 / 16.0).abs() < 0.01);
        }
    }

    #[test]
    fn zipf_is_skewed_but_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = zipf_skewed(6, 1.0, 200_000, &mut rng);
        let t = ds.full_distribution();
        let max = t.iter().cloned().fold(0.0, f64::max);
        let min = t.iter().cloned().fold(1.0, f64::min);
        assert!(max > 3.0 * (1.0 / 64.0), "max cell {max}");
        assert!(min < 1.0 / 64.0, "min cell {min}");
        assert!(max < 0.5, "should be lightly skewed, not a point mass");
    }

    #[test]
    fn point_mass_has_heavy_mode() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = point_mass(8, 42, 0.3, 100_000, &mut rng);
        let t = ds.full_distribution();
        assert!(t[42] > 0.29);
    }
}
