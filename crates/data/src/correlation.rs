//! Pearson correlation between binary attributes (the Figure 3 heatmap).

use crate::BinaryDataset;

/// Pearson correlation coefficient between two binary attributes.
///
/// For bits `A`, `B` this is `(E[AB] − E[A]E[B]) / (σ_A σ_B)`; returns 0
/// when either attribute is constant.
#[must_use]
pub fn pearson(ds: &BinaryDataset, a: u32, b: u32) -> f64 {
    assert!(a < ds.d() && b < ds.d());
    let n = ds.n() as f64;
    assert!(n > 0.0);
    let (mut ca, mut cb, mut cab) = (0u64, 0u64, 0u64);
    for &r in ds.rows() {
        let ba = (r >> a) & 1;
        let bb = (r >> b) & 1;
        ca += ba;
        cb += bb;
        cab += ba & bb;
    }
    let (ma, mb, mab) = (ca as f64 / n, cb as f64 / n, cab as f64 / n);
    let va = ma * (1.0 - ma);
    let vb = mb * (1.0 - mb);
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    (mab - ma * mb) / (va * vb).sqrt()
}

/// The full `d × d` Pearson correlation matrix (Figure 3).
#[must_use]
pub fn pearson_matrix(ds: &BinaryDataset) -> Vec<Vec<f64>> {
    let d = ds.d() as usize;
    let mut m = vec![vec![0.0; d]; d];
    #[allow(clippy::needless_range_loop)]
    for a in 0..d {
        m[a][a] = 1.0;
        for b in (a + 1)..d {
            let r = pearson(ds, a as u32, b as u32);
            m[a][b] = r;
            m[b][a] = r;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_correlated_bits() {
        let ds = BinaryDataset::new(2, vec![0b00, 0b11, 0b00, 0b11]);
        assert!((pearson(&ds, 0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfectly_anticorrelated_bits() {
        let ds = BinaryDataset::new(2, vec![0b01, 0b10, 0b01, 0b10]);
        assert!((pearson(&ds, 0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_bits_near_zero() {
        // All four combinations equally often → exactly zero.
        let ds = BinaryDataset::new(2, vec![0b00, 0b01, 0b10, 0b11]);
        assert!(pearson(&ds, 0, 1).abs() < 1e-12);
    }

    #[test]
    fn constant_attribute_yields_zero() {
        let ds = BinaryDataset::new(2, vec![0b01, 0b01, 0b00]);
        // attribute 1 is... not constant here; use attribute that is.
        let ds2 = BinaryDataset::new(2, vec![0b01, 0b01, 0b01]);
        assert_eq!(pearson(&ds2, 0, 1), 0.0);
        // Symmetry on the non-degenerate one.
        assert!((pearson(&ds, 0, 1) - pearson(&ds, 1, 0)).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let ds = BinaryDataset::new(3, vec![0b000, 0b011, 0b101, 0b110, 0b111]);
        let m = pearson_matrix(&ds);
        for a in 0..3 {
            assert_eq!(m[a][a], 1.0);
            for b in 0..3 {
                assert_eq!(m[a][b], m[b][a]);
            }
        }
    }
}
