//! In-memory collections of binary records.

use ldp_bits::{compress, Mask};
use rand::Rng;

/// A dataset of `N` records over `d` binary attributes; record `i` is the
/// `d`-bit index `j_i ∈ {0,1}^d` of the paper's one-hot view `t_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinaryDataset {
    d: u32,
    rows: Vec<u64>,
}

impl BinaryDataset {
    /// Wrap rows over a `d`-attribute domain. Panics if any row uses bits
    /// outside the domain or `d > 63`.
    #[must_use]
    pub fn new(d: u32, rows: Vec<u64>) -> Self {
        assert!(d <= 63, "at most 63 binary attributes");
        let full = Mask::full(d).bits();
        assert!(
            rows.iter().all(|&r| r & !full == 0),
            "row uses attributes outside the domain"
        );
        BinaryDataset { d, rows }
    }

    /// Number of attributes `d`.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Number of records `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the dataset has no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw records.
    #[must_use]
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// The empirical full distribution `t ∈ R^{2^d}` (sums to 1).
    /// Materializes `2^d` cells — intended for `d ≲ 26`.
    #[must_use]
    pub fn full_distribution(&self) -> Vec<f64> {
        assert!(
            self.d <= 26,
            "full distribution too large for d = {}",
            self.d
        );
        assert!(!self.rows.is_empty(), "empty dataset has no distribution");
        let mut counts = vec![0.0f64; 1usize << self.d];
        for &r in &self.rows {
            counts[r as usize] += 1.0;
        }
        let inv = 1.0 / self.rows.len() as f64;
        for c in counts.iter_mut() {
            *c *= inv;
        }
        counts
    }

    /// The exact (non-private) marginal `C_β(t)` as a locally-indexed
    /// table of length `2^|β|`, computed in `O(N)` without materializing
    /// the full distribution.
    #[must_use]
    pub fn true_marginal(&self, beta: Mask) -> Vec<f64> {
        assert!(beta.is_subset_of(Mask::full(self.d)), "mask outside domain");
        assert!(!self.rows.is_empty(), "empty dataset has no marginal");
        let mut table = vec![0.0f64; beta.table_len()];
        for &r in &self.rows {
            table[compress(r, beta.bits()) as usize] += 1.0;
        }
        let inv = 1.0 / self.rows.len() as f64;
        for c in table.iter_mut() {
            *c *= inv;
        }
        table
    }

    /// Load a dataset from the CSV row format of [`crate::csv`] (row
    /// indices or 0/1 attribute columns, one record per line).
    pub fn from_csv<R: std::io::BufRead>(d: u32, reader: R) -> Result<Self, crate::csv::CsvError> {
        Ok(BinaryDataset::new(d, crate::csv::read_rows(reader, d)?))
    }

    /// Write the records in the CSV row format of [`crate::csv`] (bit
    /// columns when `bits` is set, row indices otherwise).
    pub fn write_csv<W: std::io::Write>(&self, writer: W, bits: bool) -> std::io::Result<()> {
        crate::csv::write_rows(writer, self.d, &self.rows, bits)
    }

    /// Empirical mean of one attribute (fraction of records with the bit
    /// set).
    #[must_use]
    pub fn attribute_mean(&self, attr: u32) -> f64 {
        assert!(attr < self.d);
        let ones = self.rows.iter().filter(|&&r| (r >> attr) & 1 == 1).count();
        ones as f64 / self.rows.len() as f64
    }

    /// Sample `n` records uniformly **with replacement** (the paper's
    /// per-experiment resampling of the population).
    #[must_use]
    pub fn sample_with_replacement<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Self {
        assert!(!self.rows.is_empty());
        let rows = (0..n)
            .map(|_| self.rows[rng.gen_range(0..self.rows.len())])
            .collect();
        BinaryDataset { d: self.d, rows }
    }

    /// Extend the dimensionality to `target_d` by duplicating existing
    /// columns round-robin — exactly how the paper scales the taxi data to
    /// larger `d` for Figure 6 ("achieved by duplicating columns").
    #[must_use]
    pub fn duplicate_columns(&self, target_d: u32) -> Self {
        assert!(target_d >= self.d && target_d <= 63);
        let rows = self
            .rows
            .iter()
            .map(|&r| {
                let mut out = r;
                for b in self.d..target_d {
                    let src = b % self.d;
                    out |= ((r >> src) & 1) << b;
                }
                out
            })
            .collect();
        BinaryDataset { d: target_d, rows }
    }

    /// Project the dataset onto a subset of attributes (re-indexed to the
    /// low bits) — used to subsample dimensions as in §5.1.
    #[must_use]
    pub fn project(&self, attrs: Mask) -> Self {
        assert!(attrs.is_subset_of(Mask::full(self.d)));
        let rows = self
            .rows
            .iter()
            .map(|&r| compress(r, attrs.bits()))
            .collect();
        BinaryDataset {
            d: attrs.weight(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_transform::marginalize;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn csv_round_trip_preserves_records() {
        let ds = BinaryDataset::new(3, vec![0, 5, 7, 2, 2]);
        for bits in [false, true] {
            let mut buf = Vec::new();
            ds.write_csv(&mut buf, bits).unwrap();
            let back = BinaryDataset::from_csv(3, buf.as_slice()).unwrap();
            assert_eq!(back, ds);
        }
    }

    fn toy() -> BinaryDataset {
        // d = 3; rows chosen so every marginal is easy to verify.
        BinaryDataset::new(
            3,
            vec![0b000, 0b001, 0b001, 0b111, 0b101, 0b101, 0b011, 0b000],
        )
    }

    #[test]
    fn full_distribution_sums_to_one() {
        let t = toy().full_distribution();
        assert_eq!(t.len(), 8);
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((t[0b001] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn marginal_matches_full_distribution_path() {
        let ds = toy();
        let full = ds.full_distribution();
        for beta_bits in 0u64..8 {
            let beta = Mask::new(beta_bits);
            let direct = ds.true_marginal(beta);
            let via_full = marginalize(&full, 3, beta);
            for (a, b) in direct.iter().zip(&via_full) {
                assert!((a - b).abs() < 1e-12, "beta={beta}");
            }
        }
    }

    #[test]
    fn attribute_means() {
        let ds = toy();
        assert!((ds.attribute_mean(0) - 6.0 / 8.0).abs() < 1e-12);
        assert!((ds.attribute_mean(2) - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_columns_copies_bits() {
        let ds = BinaryDataset::new(2, vec![0b01, 0b10, 0b11]);
        let big = ds.duplicate_columns(5);
        assert_eq!(big.d(), 5);
        // bit 2 copies bit 0, bit 3 copies bit 1, bit 4 copies bit 0.
        assert_eq!(big.rows()[0], 0b10101);
        assert_eq!(big.rows()[1], 0b01010);
        assert_eq!(big.rows()[2], 0b11111);
        // Duplicated column is perfectly correlated with its source.
        let m = big.true_marginal(Mask::from_attrs(&[0, 2]));
        assert_eq!(m[0b01], 0.0);
        assert_eq!(m[0b10], 0.0);
    }

    #[test]
    fn projection_reindexes() {
        let ds = toy();
        let proj = ds.project(Mask::from_attrs(&[0, 2]));
        assert_eq!(proj.d(), 2);
        let m2 = proj.true_marginal(Mask::full(2));
        let m3 = ds.true_marginal(Mask::from_attrs(&[0, 2]));
        assert_eq!(m2, m3);
    }

    #[test]
    fn resampling_preserves_domain() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let s = ds.sample_with_replacement(1000, &mut rng);
        assert_eq!(s.n(), 1000);
        assert_eq!(s.d(), 3);
        // Resampled frequencies close to originals.
        let a = ds.true_marginal(Mask::full(3));
        let b = s.true_marginal(Mask::full(3));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.06);
        }
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn rejects_out_of_domain_rows() {
        let _ = BinaryDataset::new(2, vec![0b100]);
    }
}
