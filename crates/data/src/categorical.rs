//! Categorical attributes and the §6.3 binary encoding.
//!
//! An attribute with `r` possible values is encoded as the conjunction of
//! `⌈log₂ r⌉` binary attributes; a schema of `d` categorical attributes
//! becomes `d₂ = Σᵢ ⌈log₂ rᵢ⌉` binary attributes, and a k-way categorical
//! marginal becomes a `k₂`-way binary marginal (Corollary 6.1).

use crate::BinaryDataset;
use ldp_bits::Mask;
use ldp_sampling::AliasTable;
use rand::Rng;

/// A schema of categorical attributes with fixed arities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CategoricalSchema {
    arities: Vec<usize>,
    /// Number of encoding bits per attribute: `⌈log₂ rᵢ⌉` (min 1).
    bits: Vec<u32>,
    /// Starting bit offset of each attribute in the binary encoding.
    offsets: Vec<u32>,
}

impl CategoricalSchema {
    /// Build a schema; each arity must be ≥ 2. Panics if the binary
    /// encoding exceeds 63 bits.
    #[must_use]
    pub fn new(arities: &[usize]) -> Self {
        assert!(!arities.is_empty());
        assert!(arities.iter().all(|&r| r >= 2), "arities must be ≥ 2");
        let bits: Vec<u32> = arities
            .iter()
            .map(|&r| (usize::BITS - (r - 1).leading_zeros()).max(1))
            .collect();
        let mut offsets = Vec::with_capacity(arities.len());
        let mut off = 0u32;
        for &b in &bits {
            offsets.push(off);
            off += b;
        }
        assert!(off <= 63, "binary encoding exceeds 63 bits");
        CategoricalSchema {
            arities: arities.to_vec(),
            bits,
            offsets,
        }
    }

    /// Number of categorical attributes.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.arities.len() as u32
    }

    /// The effective binary dimension `d₂ = Σᵢ ⌈log₂ rᵢ⌉` (§6.3).
    #[must_use]
    pub fn d2(&self) -> u32 {
        self.bits.iter().sum()
    }

    /// Arity of attribute `i`.
    #[must_use]
    pub fn arity(&self, i: u32) -> usize {
        self.arities[i as usize]
    }

    /// Binary encoding width of attribute `i`.
    #[must_use]
    pub fn attr_bits(&self, i: u32) -> u32 {
        self.bits[i as usize]
    }

    /// The binary dimension `k₂` of a marginal over a categorical
    /// attribute subset.
    #[must_use]
    pub fn k2(&self, attrs: &[u32]) -> u32 {
        attrs.iter().map(|&a| self.bits[a as usize]).sum()
    }

    /// Encode one record (a value per attribute) as a binary row.
    #[must_use]
    pub fn encode(&self, values: &[usize]) -> u64 {
        assert_eq!(values.len(), self.arities.len());
        let mut row = 0u64;
        for (i, &v) in values.iter().enumerate() {
            assert!(v < self.arities[i], "value out of range for attribute {i}");
            row |= (v as u64) << self.offsets[i];
        }
        row
    }

    /// Decode a binary row back into categorical values.
    ///
    /// Rows containing out-of-range codes (possible since `2^bits ≥ r`)
    /// return `None` for that attribute — callers reconstructing noisy
    /// marginals should instead work with marginal *tables*, where
    /// out-of-range cells simply receive (near-zero) estimated mass.
    #[must_use]
    pub fn decode(&self, row: u64) -> Vec<Option<usize>> {
        self.arities
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let v = ((row >> self.offsets[i]) & ((1u64 << self.bits[i]) - 1)) as usize;
                (v < r).then_some(v)
            })
            .collect()
    }

    /// The binary mask covering a set of categorical attributes — the `β`
    /// to hand to a binary marginal mechanism to answer a categorical
    /// marginal over those attributes.
    #[must_use]
    pub fn binary_mask(&self, attrs: &[u32]) -> Mask {
        let mut bits = 0u64;
        for &a in attrs {
            assert!((a as usize) < self.arities.len());
            let w = self.bits[a as usize];
            bits |= ((1u64 << w) - 1) << self.offsets[a as usize];
        }
        Mask::new(bits)
    }

    /// Generate `n` records where each attribute is drawn independently
    /// from its own distribution (`dists[i].len() == arities[i]`), and
    /// encode them as a binary dataset.
    pub fn generate_independent<R: Rng + ?Sized>(
        &self,
        dists: &[Vec<f64>],
        n: usize,
        rng: &mut R,
    ) -> BinaryDataset {
        assert_eq!(dists.len(), self.arities.len());
        let tables: Vec<AliasTable> = dists
            .iter()
            .zip(&self.arities)
            .map(|(w, &r)| {
                assert_eq!(w.len(), r, "distribution length must match arity");
                AliasTable::new(w)
            })
            .collect();
        let rows = (0..n)
            .map(|_| {
                let values: Vec<usize> = tables.iter().map(|t| t.sample(rng)).collect();
                self.encode(&values)
            })
            .collect();
        BinaryDataset::new(self.d2(), rows)
    }

    /// Convert a binary marginal table over `binary_mask(attrs)` (locally
    /// indexed, length `2^{k₂}`) to a categorical marginal table over the
    /// product of the attribute arities. Cells whose binary code is out of
    /// range for any attribute are dropped (their mass is noise).
    #[must_use]
    pub fn categorical_marginal(&self, attrs: &[u32], binary_table: &[f64]) -> Vec<f64> {
        let k2 = self.k2(attrs);
        assert_eq!(binary_table.len(), 1usize << k2);
        let sizes: Vec<usize> = attrs.iter().map(|&a| self.arities[a as usize]).collect();
        let widths: Vec<u32> = attrs.iter().map(|&a| self.bits[a as usize]).collect();
        let out_len: usize = sizes.iter().product();
        let mut out = vec![0.0; out_len];
        for (cell, &v) in binary_table.iter().enumerate() {
            // Split the k₂-bit local index into per-attribute codes
            // (attributes appear in `attrs` order, low bits first — the
            // same order `binary_mask` produces after compression when
            // `attrs` is sorted ascending).
            let mut rest = cell as u64;
            let mut idx = 0usize;
            let mut stride = 1usize;
            let mut ok = true;
            for (w, &r) in widths.iter().zip(&sizes) {
                let code = (rest & ((1u64 << w) - 1)) as usize;
                rest >>= w;
                if code >= r {
                    ok = false;
                    break;
                }
                idx += code * stride;
                stride *= r;
            }
            if ok {
                out[idx] += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn bit_widths() {
        let s = CategoricalSchema::new(&[2, 3, 4, 5, 17]);
        assert_eq!(s.attr_bits(0), 1);
        assert_eq!(s.attr_bits(1), 2);
        assert_eq!(s.attr_bits(2), 2);
        assert_eq!(s.attr_bits(3), 3);
        assert_eq!(s.attr_bits(4), 5);
        assert_eq!(s.d2(), 13);
        assert_eq!(s.k2(&[1, 3]), 5);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = CategoricalSchema::new(&[3, 4, 2]);
        for a in 0..3 {
            for b in 0..4 {
                for c in 0..2 {
                    let row = s.encode(&[a, b, c]);
                    let dec = s.decode(row);
                    assert_eq!(dec, vec![Some(a), Some(b), Some(c)]);
                }
            }
        }
    }

    #[test]
    fn out_of_range_decodes_to_none() {
        let s = CategoricalSchema::new(&[3]);
        // Code 3 is representable in 2 bits but invalid for arity 3.
        assert_eq!(s.decode(0b11), vec![None]);
    }

    #[test]
    fn binary_mask_covers_attr_bits() {
        let s = CategoricalSchema::new(&[3, 4, 2]);
        // Attribute 0 occupies bits 0..2, attr 1 bits 2..4, attr 2 bit 4.
        assert_eq!(s.binary_mask(&[0]).bits(), 0b00011);
        assert_eq!(s.binary_mask(&[1]).bits(), 0b01100);
        assert_eq!(s.binary_mask(&[2]).bits(), 0b10000);
        assert_eq!(s.binary_mask(&[0, 2]).bits(), 0b10011);
    }

    #[test]
    fn categorical_marginal_from_binary_table() {
        let s = CategoricalSchema::new(&[3, 2]);
        let mut rng = StdRng::seed_from_u64(7);
        let dists = vec![vec![0.5, 0.3, 0.2], vec![0.4, 0.6]];
        let ds = s.generate_independent(&dists, 200_000, &mut rng);
        let mask = s.binary_mask(&[0, 1]);
        let bin_table = ds.true_marginal(mask);
        let cat = s.categorical_marginal(&[0, 1], &bin_table);
        assert_eq!(cat.len(), 6);
        for a in 0..3 {
            for b in 0..2 {
                let expect = dists[0][a] * dists[1][b];
                let got = cat[a + 3 * b];
                assert!(
                    (got - expect).abs() < 0.01,
                    "cell ({a},{b}): {got} vs {expect}"
                );
            }
        }
        // No mass lost: codes 3 (invalid for arity 3) never generated.
        assert!((cat.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_attribute_marginal() {
        let s = CategoricalSchema::new(&[4]);
        let mut rng = StdRng::seed_from_u64(8);
        let dists = vec![vec![0.1, 0.2, 0.3, 0.4]];
        let ds = s.generate_independent(&dists, 100_000, &mut rng);
        let table = ds.true_marginal(s.binary_mask(&[0]));
        let cat = s.categorical_marginal(&[0], &table);
        for (v, &e) in cat.iter().zip(&dists[0]) {
            assert!((v - e).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "arities must be ≥ 2")]
    fn rejects_unary_attribute() {
        let _ = CategoricalSchema::new(&[1]);
    }
}
