//! NYC-taxi-like synthetic generator (substitute for the paper's 3M
//! Manhattan trip records; see `DESIGN.md` §2).
//!
//! Eight binary attributes (Table 1 of the paper), generated from a small
//! Bayesian network calibrated so that:
//!
//! * the ⟨M_pick, M_drop⟩ 2-way marginal matches Figure 2
//!   (YY = 0.55, YN = 0.15, NY = 0.10, NN = 0.20);
//! * ⟨Night_pick, Night_drop⟩, ⟨Toll, Far⟩ and ⟨CC, Tip⟩ are strongly
//!   positively correlated (the pairs the paper's χ² test must declare
//!   dependent);
//! * ⟨M_drop, CC⟩, ⟨Far, Night_pick⟩ and ⟨Toll, Night_pick⟩ are
//!   independent by construction (the pairs the χ² test must not reject);
//! * remaining cross-pairs are weak or negative, as in the Figure 3
//!   heatmap.

use crate::BinaryDataset;
use rand::Rng;

/// Bit positions of the eight attributes (Table 1).
pub mod attr {
    /// Paid by credit card?
    pub const CC: u32 = 0;
    /// Paid a toll?
    pub const TOLL: u32 = 1;
    /// Journey distance ≥ 10 miles?
    pub const FAR: u32 = 2;
    /// Pickup time ≥ 8 PM?
    pub const NIGHT_PICK: u32 = 3;
    /// Drop-off time ≤ 3 AM?
    pub const NIGHT_DROP: u32 = 4;
    /// Origin within Manhattan?
    pub const M_PICK: u32 = 5;
    /// Destination within Manhattan?
    pub const M_DROP: u32 = 6;
    /// Tip ≥ 25% of fare?
    pub const TIP: u32 = 7;
}

/// Human-readable attribute names, indexed by bit position.
pub const ATTRIBUTE_NAMES: [&str; 8] = [
    "CC",
    "Toll",
    "Far",
    "Night_pick",
    "Night_drop",
    "M_pick",
    "M_drop",
    "Tip",
];

/// The Figure 2 joint distribution of (M_pick, M_drop), indexed
/// `[m_pick][m_drop]` with 1 = "Y".
pub const MPICK_MDROP_JOINT: [[f64; 2]; 2] = [
    // m_pick = N:        m_drop = N, m_drop = Y
    [0.20, 0.10],
    // m_pick = Y:
    [0.15, 0.55],
];

/// Parameters of the taxi Bayesian network. The defaults reproduce the
/// paper's correlation structure; fields are public so experiments can
/// perturb the network.
#[derive(Clone, Debug)]
pub struct TaxiGenerator {
    /// P(Far = 1 | both endpoints in Manhattan).
    pub p_far_within: f64,
    /// P(Far = 1 | at least one endpoint outside Manhattan).
    pub p_far_outside: f64,
    /// P(Toll = 1 | Far).
    pub p_toll_far: f64,
    /// P(Toll = 1 | ¬Far).
    pub p_toll_near: f64,
    /// P(Night_pick = 1).
    pub p_night_pick: f64,
    /// P(Night_drop = 1 | Night_pick).
    pub p_nd_np: f64,
    /// P(Night_drop = 1 | ¬Night_pick).
    pub p_nd_day: f64,
    /// P(CC = 1).
    pub p_cc: f64,
    /// P(Tip = 1 | CC).
    pub p_tip_cc: f64,
    /// P(Tip = 1 | ¬CC) — cash tips are rarely recorded.
    pub p_tip_cash: f64,
}

impl Default for TaxiGenerator {
    fn default() -> Self {
        TaxiGenerator {
            p_far_within: 0.04,
            p_far_outside: 0.42,
            p_toll_far: 0.78,
            p_toll_near: 0.07,
            p_night_pick: 0.25,
            p_nd_np: 0.82,
            p_nd_day: 0.06,
            p_cc: 0.55,
            p_tip_cc: 0.68,
            p_tip_cash: 0.07,
        }
    }
}

impl TaxiGenerator {
    /// Generate one trip record as an 8-bit row.
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // (M_pick, M_drop) drawn jointly from the Figure 2 table.
        let u: f64 = rng.gen();
        let (m_pick, m_drop) = if u < MPICK_MDROP_JOINT[1][1] {
            (1u64, 1u64)
        } else if u < MPICK_MDROP_JOINT[1][1] + MPICK_MDROP_JOINT[1][0] {
            (1, 0)
        } else if u < MPICK_MDROP_JOINT[1][1] + MPICK_MDROP_JOINT[1][0] + MPICK_MDROP_JOINT[0][1] {
            (0, 1)
        } else {
            (0, 0)
        };
        let within = m_pick == 1 && m_drop == 1;
        let far = u64::from(rng.gen_bool(if within {
            self.p_far_within
        } else {
            self.p_far_outside
        }));
        let toll = u64::from(rng.gen_bool(if far == 1 {
            self.p_toll_far
        } else {
            self.p_toll_near
        }));
        let night_pick = u64::from(rng.gen_bool(self.p_night_pick));
        let night_drop = u64::from(rng.gen_bool(if night_pick == 1 {
            self.p_nd_np
        } else {
            self.p_nd_day
        }));
        let cc = u64::from(rng.gen_bool(self.p_cc));
        let tip = u64::from(rng.gen_bool(if cc == 1 {
            self.p_tip_cc
        } else {
            self.p_tip_cash
        }));

        cc << attr::CC
            | toll << attr::TOLL
            | far << attr::FAR
            | night_pick << attr::NIGHT_PICK
            | night_drop << attr::NIGHT_DROP
            | m_pick << attr::M_PICK
            | m_drop << attr::M_DROP
            | tip << attr::TIP
    }

    /// Generate a dataset of `n` trips (`d = 8`).
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> BinaryDataset {
        let rows = (0..n).map(|_| self.sample_row(rng)).collect();
        BinaryDataset::new(8, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson_matrix;
    use ldp_bits::Mask;
    use rand::{rngs::StdRng, SeedableRng};

    fn big_sample() -> BinaryDataset {
        let mut rng = StdRng::seed_from_u64(2018);
        TaxiGenerator::default().generate(200_000, &mut rng)
    }

    #[test]
    fn matches_figure_2_joint() {
        let ds = big_sample();
        let beta = Mask::from_attrs(&[attr::M_PICK, attr::M_DROP]);
        let m = ds.true_marginal(beta);
        // Local bit 0 = M_pick, local bit 1 = M_drop.
        assert!((m[0b11] - 0.55).abs() < 0.01, "YY {}", m[0b11]);
        assert!((m[0b01] - 0.15).abs() < 0.01, "YN {}", m[0b01]);
        assert!((m[0b10] - 0.10).abs() < 0.01, "NY {}", m[0b10]);
        assert!((m[0b00] - 0.20).abs() < 0.01, "NN {}", m[0b00]);
    }

    #[test]
    fn strong_positive_pairs() {
        let ds = big_sample();
        let corr = pearson_matrix(&ds);
        for (a, b) in [
            (attr::NIGHT_PICK, attr::NIGHT_DROP),
            (attr::TOLL, attr::FAR),
            (attr::CC, attr::TIP),
            (attr::M_PICK, attr::M_DROP),
        ] {
            assert!(
                corr[a as usize][b as usize] > 0.4,
                "{} vs {}: {}",
                ATTRIBUTE_NAMES[a as usize],
                ATTRIBUTE_NAMES[b as usize],
                corr[a as usize][b as usize]
            );
        }
    }

    #[test]
    fn independent_pairs_have_tiny_correlation() {
        let ds = big_sample();
        let corr = pearson_matrix(&ds);
        for (a, b) in [
            (attr::M_DROP, attr::CC),
            (attr::FAR, attr::NIGHT_PICK),
            (attr::TOLL, attr::NIGHT_PICK),
        ] {
            assert!(
                corr[a as usize][b as usize].abs() < 0.02,
                "{} vs {}: {}",
                ATTRIBUTE_NAMES[a as usize],
                ATTRIBUTE_NAMES[b as usize],
                corr[a as usize][b as usize]
            );
        }
    }

    #[test]
    fn manhattan_trips_are_negatively_correlated_with_far() {
        let ds = big_sample();
        let corr = pearson_matrix(&ds);
        assert!(corr[attr::FAR as usize][attr::M_PICK as usize] < -0.1);
        assert!(corr[attr::FAR as usize][attr::M_DROP as usize] < -0.1);
    }
}
