//! CSV row reader shared by the `ldp-cli encode` subcommand and the
//! dataset loaders ([`crate::BinaryDataset::from_csv`]).
//!
//! Two line formats are accepted, and may be mixed within one file:
//!
//! * **row index** — a single decimal integer `j ∈ [0, 2^d)`, the
//!   paper's view of a record as a `d`-bit index (`13` for `d = 4` is
//!   the record `1101₂`);
//! * **bit columns** — exactly `d` comma-separated `0`/`1` values,
//!   attribute 0 first (`1,0,1,1` is the same record: attribute `i` is
//!   bit `i`).
//!
//! Blank lines and lines starting with `#` are skipped.

use std::io::BufRead;

/// Why a CSV row stream failed to load.
#[derive(Debug)]
pub enum CsvError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A line failed to parse (1-based line number and reason).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "CSV I/O error: {e}"),
            CsvError::Parse { line, reason } => write!(f, "CSV line {line}: {reason}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse one non-blank, non-comment line into a `d`-bit record.
pub fn parse_row(line: &str, d: u32) -> Result<u64, String> {
    let line = line.trim();
    let full = if d >= 64 { u64::MAX } else { (1u64 << d) - 1 };
    if line.contains(',') {
        let mut row = 0u64;
        let mut count = 0u32;
        for (i, field) in line.split(',').enumerate() {
            if i as u32 >= d {
                // Bail before shifting past the domain (a 65th column
                // would overflow the shift below).
                return Err(format!(
                    "expected {d} attribute columns, got {}",
                    line.split(',').count()
                ));
            }
            match field.trim() {
                "0" => {}
                "1" => row |= 1u64 << i,
                other => return Err(format!("expected a 0/1 attribute value, got {other:?}")),
            }
            count = i as u32 + 1;
        }
        if count != d {
            return Err(format!("expected {d} attribute columns, got {count}"));
        }
        Ok(row)
    } else {
        let row: u64 = line
            .parse()
            .map_err(|_| format!("expected a row index or 0/1 columns, got {line:?}"))?;
        if row & !full != 0 {
            return Err(format!("row index {row} uses attributes outside d = {d}"));
        }
        Ok(row)
    }
}

/// Read every record from a CSV stream over a `d`-attribute domain.
pub fn read_rows<R: BufRead>(reader: R, d: u32) -> Result<Vec<u64>, CsvError> {
    assert!((1..=63).contains(&d), "need 1 ≤ d ≤ 63");
    let mut rows = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row = parse_row(trimmed, d).map_err(|reason| CsvError::Parse {
            line: i + 1,
            reason,
        })?;
        rows.push(row);
    }
    Ok(rows)
}

/// Write records as CSV (one line per record). With `bits` set, each
/// record is written as `d` 0/1 columns; otherwise as its row index.
pub fn write_rows<W: std::io::Write>(
    mut writer: W,
    d: u32,
    rows: &[u64],
    bits: bool,
) -> std::io::Result<()> {
    for &row in rows {
        if bits {
            let cols: Vec<&str> = (0..d)
                .map(|i| if row >> i & 1 == 1 { "1" } else { "0" })
                .collect();
            writeln!(writer, "{}", cols.join(","))?;
        } else {
            writeln!(writer, "{row}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_formats() {
        assert_eq!(parse_row("13", 4).unwrap(), 13);
        assert_eq!(parse_row("1,0,1,1", 4).unwrap(), 0b1101);
        assert_eq!(parse_row(" 1 , 0 , 1 , 1 ", 4).unwrap(), 0b1101);
        assert_eq!(parse_row("0", 1).unwrap(), 0);
    }

    #[test]
    fn rejects_bad_rows() {
        assert!(parse_row("16", 4).is_err()); // out of domain
        assert!(parse_row("1,0,1", 4).is_err()); // short column count
        assert!(parse_row("1,0,1,1,0", 4).is_err()); // long column count
        assert!(parse_row("1,0,2,1", 4).is_err()); // non-binary value
        assert!(parse_row("abc", 4).is_err());
        assert!(parse_row("-3", 4).is_err());
        // 70 columns must be a parse error, not a shift overflow.
        let wide = vec!["1"; 70].join(",");
        assert!(parse_row(&wide, 4).unwrap_err().contains("got 70"));
    }

    #[test]
    fn reads_mixed_stream_with_comments() {
        let text = "# header comment\n13\n\n1,0,1,1\n   \n0\n";
        let rows = read_rows(text.as_bytes(), 4).unwrap();
        assert_eq!(rows, vec![13, 0b1101, 0]);
    }

    #[test]
    fn reports_offending_line_number() {
        let text = "3\n7\nbogus\n";
        match read_rows(text.as_bytes(), 4) {
            Err(CsvError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn write_read_round_trip_both_formats() {
        let rows = vec![0u64, 5, 15, 9];
        for bits in [false, true] {
            let mut buf = Vec::new();
            write_rows(&mut buf, 4, &rows, bits).unwrap();
            assert_eq!(read_rows(buf.as_slice(), 4).unwrap(), rows);
        }
    }
}
