//! MovieLens-like synthetic generator (substitute for the paper's derived
//! "video viewing preference" bit vectors; see `DESIGN.md` §2).
//!
//! Each user has a latent activity level `a ∈ (0, 1)`; attribute `j`
//! ("rated at least one top movie of genre `j`") fires with probability
//! `clamp(a · pop_j)`, where `pop_j` is the genre's popularity. The shared
//! latent factor makes **all pairs positively correlated**, the property
//! the paper highlights for this dataset.

use crate::BinaryDataset;
use rand::Rng;

/// Generator for `d` positively-correlated preference bits.
#[derive(Clone, Debug)]
pub struct MovieLensGenerator {
    /// Per-genre popularity weights in `(0, 1]`, length `d`.
    pub popularity: Vec<f64>,
    /// Exponent shaping the activity distribution (`a = u^shape` for
    /// uniform `u`); larger values → more light users → stronger
    /// correlation heterogeneity.
    pub activity_shape: f64,
}

impl MovieLensGenerator {
    /// Default generator for `d` genres: popularity decays geometrically
    /// from ~0.95 with a floor at 0.15, matching "top-1000 per genre" bits
    /// where even niche genres have substantial coverage.
    #[must_use]
    pub fn new(d: u32) -> Self {
        assert!((1..=30).contains(&d), "supported range 1 ≤ d ≤ 30");
        let popularity = (0..d)
            .map(|j| (0.95 * 0.88f64.powi(j as i32)).max(0.15))
            .collect();
        MovieLensGenerator {
            popularity,
            activity_shape: 1.6,
        }
    }

    /// Number of attributes.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.popularity.len() as u32
    }

    /// Generate one user's preference row.
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let activity: f64 = rng.gen::<f64>().powf(self.activity_shape) * 0.95 + 0.05;
        let mut row = 0u64;
        for (j, &pop) in self.popularity.iter().enumerate() {
            let p = (activity * (pop + 0.35)).clamp(0.0, 1.0);
            if rng.gen_bool(p) {
                row |= 1u64 << j;
            }
        }
        row
    }

    /// Generate a dataset of `n` users.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> BinaryDataset {
        let d = self.d();
        let rows = (0..n).map(|_| self.sample_row(rng)).collect();
        BinaryDataset::new(d, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson_matrix;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_pairs_positively_correlated() {
        let mut rng = StdRng::seed_from_u64(20);
        let gen = MovieLensGenerator::new(10);
        let ds = gen.generate(100_000, &mut rng);
        let corr = pearson_matrix(&ds);
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert!(corr[a][b] > 0.03, "pair ({a},{b}): {}", corr[a][b]);
            }
        }
    }

    #[test]
    fn popularity_ordering_respected() {
        let mut rng = StdRng::seed_from_u64(21);
        let gen = MovieLensGenerator::new(8);
        let ds = gen.generate(100_000, &mut rng);
        // Genre 0 is most popular, genre 7 least (allow small sampling slack).
        let first = ds.attribute_mean(0);
        let last = ds.attribute_mean(7);
        assert!(first > last + 0.05, "{first} vs {last}");
    }

    #[test]
    fn means_are_interior() {
        // No attribute should be degenerate (all 0 / all 1).
        let mut rng = StdRng::seed_from_u64(22);
        let ds = MovieLensGenerator::new(16).generate(50_000, &mut rng);
        for j in 0..16 {
            let m = ds.attribute_mean(j);
            assert!((0.02..=0.98).contains(&m), "attr {j}: {m}");
        }
    }

    #[test]
    fn dimension_range_enforced() {
        assert_eq!(MovieLensGenerator::new(4).d(), 4);
    }

    #[test]
    #[should_panic(expected = "supported range")]
    fn rejects_oversized_d() {
        let _ = MovieLensGenerator::new(31);
    }
}
