//! The frequency-oracle abstraction and the oracle→marginal adaptor.

use ldp_bits::{compress, Mask};

/// An LDP frequency oracle over the domain `{0,1}^d`.
///
/// Build one by streaming reports into the matching aggregator (an
/// [`ldp_core::Accumulator`]) and finalizing:
///
/// ```
/// use ldp_core::Accumulator;
/// use ldp_oracles::{FrequencyOracle, HadamardCms};
/// use rand::{rngs::StdRng, Rng, SeedableRng};
///
/// let sketch = HadamardCms::new(10, 1.1, 5, 256, 42);
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut agg = sketch.aggregator();
/// for _ in 0..60_000 {
///     // 60% of users hold value 123.
///     let value = if rng.gen_bool(0.6) { 123 } else { rng.gen_range(0..1024) };
///     agg.absorb(sketch.encode(value, &mut rng));
/// }
/// let oracle = agg.finalize();
/// assert!((oracle.estimate(123) - 0.6).abs() < 0.1);
/// ```
pub trait FrequencyOracle {
    /// Domain dimensionality.
    fn d(&self) -> u32;

    /// Unbiased estimate of the population frequency of `value`.
    fn estimate(&self, value: u64) -> f64;
}

/// Estimate the full `2^d` distribution by querying the oracle on every
/// cell (the generic marginal route of Appendix B.2).
#[must_use]
pub fn oracle_full_distribution<O: FrequencyOracle + ?Sized>(oracle: &O) -> Vec<f64> {
    let cells = 1u64 << oracle.d();
    (0..cells).map(|v| oracle.estimate(v)).collect()
}

/// Estimate a marginal by aggregating per-cell oracle estimates.
#[must_use]
pub fn oracle_marginal<O: FrequencyOracle + ?Sized>(oracle: &O, beta: Mask) -> Vec<f64> {
    assert!(beta.is_subset_of(Mask::full(oracle.d())));
    let mut out = vec![0.0; beta.table_len()];
    for v in 0..(1u64 << oracle.d()) {
        out[compress(v, beta.bits()) as usize] += oracle.estimate(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake exact oracle for adaptor testing.
    struct Exact {
        d: u32,
        dist: Vec<f64>,
    }

    impl FrequencyOracle for Exact {
        fn d(&self) -> u32 {
            self.d
        }
        fn estimate(&self, v: u64) -> f64 {
            self.dist[v as usize]
        }
    }

    #[test]
    fn adaptor_aggregates_cells() {
        let oracle = Exact {
            d: 2,
            dist: vec![0.1, 0.2, 0.3, 0.4],
        };
        assert_eq!(oracle_full_distribution(&oracle), vec![0.1, 0.2, 0.3, 0.4]);
        let m = oracle_marginal(&oracle, Mask::new(0b01));
        assert!((m[0] - 0.4).abs() < 1e-12);
        assert!((m[1] - 0.6).abs() < 1e-12);
    }
}
