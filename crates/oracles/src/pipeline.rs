//! Protocol plumbing shared by every process that speaks the framed
//! pipeline — the `ldp-cli` subcommands, the `ldp_server` aggregation
//! server, and the bench harness: one client type and one accumulator
//! type spanning the seven marginal mechanisms *and* the three
//! frequency oracles, keyed by the [`StreamHeader`] that travels as
//! frame 0 of every stream and snapshot.
//!
//! This crate hosts the module because it is the lowest layer that can
//! see both protocol families (`ldp_oracles` depends on `ldp_core`).

use crate::streaming::{
    build_oracle, Oracle, OracleAccumulator, OracleEstimate, OracleKind, OracleReport,
};
use ldp_core::frame::StreamHeader;
use ldp_core::{
    Accumulator, Estimate, Mechanism, MechanismAccumulator, MechanismKind, MechanismReport,
};
use rand::Rng;

/// A protocol named on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// One of the seven marginal mechanisms.
    Mechanism(MechanismKind),
    /// One of the three frequency oracles.
    Oracle(OracleKind),
}

impl Protocol {
    /// Parse a command-line protocol name (case-insensitive).
    pub fn parse(name: &str) -> Result<Protocol, String> {
        let lower = name.to_ascii_lowercase();
        for kind in MechanismKind::ALL {
            if kind.name().to_ascii_lowercase() == lower {
                return Ok(Protocol::Mechanism(kind));
            }
        }
        for kind in OracleKind::ALL {
            if kind.name().to_ascii_lowercase() == lower {
                return Ok(Protocol::Oracle(kind));
            }
        }
        Err(format!(
            "unknown protocol {name:?}; expected one of {}",
            Protocol::names().join(", ")
        ))
    }

    /// Every accepted protocol name, in display form.
    pub fn names() -> Vec<&'static str> {
        MechanismKind::ALL
            .iter()
            .map(|k| k.name())
            .chain(OracleKind::ALL.iter().map(|k| k.name()))
            .collect()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Mechanism(k) => k.name(),
            Protocol::Oracle(k) => k.name(),
        }
    }

    /// The protocol a header names, if its tag is known.
    #[must_use]
    pub fn from_header(header: &StreamHeader) -> Option<Protocol> {
        if let Some(kind) = header.mechanism_kind() {
            return Some(Protocol::Mechanism(kind));
        }
        OracleKind::from_wire_tag(header.protocol).map(Protocol::Oracle)
    }
}

/// The sketch shape flags (`--hashes`, `--width`, `--family-seed`) an
/// oracle pipeline carries in its header; ignored by mechanisms.
#[derive(Clone, Copy, Debug)]
pub struct SketchShape {
    /// Hash count `g` (sketch rows).
    pub hashes: u32,
    /// Row width `w`.
    pub width: u32,
    /// Seed of the public hash family.
    pub family_seed: u64,
}

/// Build the stream header for a protocol at concrete parameters.
pub fn header_for(
    protocol: Protocol,
    d: u32,
    k: u32,
    eps: f64,
    sketch: SketchShape,
) -> StreamHeader {
    match protocol {
        Protocol::Mechanism(kind) => StreamHeader::mechanism(kind, d, k, eps),
        Protocol::Oracle(kind) => StreamHeader::oracle(
            kind.wire_tag(),
            d,
            eps,
            sketch.hashes,
            sketch.width,
            sketch.family_seed,
        ),
    }
}

/// The client half of a pipeline: encodes rows into report frames.
pub enum Client {
    /// A mechanism client.
    Mechanism(Mechanism),
    /// A frequency-oracle client.
    Oracle(Oracle),
}

/// Reject parameter combinations the protocol constructors would panic
/// on, with a message naming the offending flag/field. Applied to
/// headers from the command line *and* from incoming streams, so a
/// corrupt or hostile header degrades to an error instead of crashing
/// the collector process.
fn validate_header(header: &StreamHeader) -> Result<(), String> {
    match header.mechanism_kind() {
        Some(MechanismKind::InpRr) => {
            if !(1..=24).contains(&header.d) {
                return Err(format!(
                    "InpRR materializes 2^d cells; need d ≤ 24, got {}",
                    header.d
                ));
            }
        }
        Some(kind @ (MechanismKind::InpPs | MechanismKind::InpEm)) => {
            if !(1..=26).contains(&header.d) {
                return Err(format!(
                    "{} materializes 2^d cells; need d ≤ 26, got {}",
                    kind.name(),
                    header.d
                ));
            }
        }
        Some(kind @ (MechanismKind::MargRr | MechanismKind::MargPs | MechanismKind::MargHt)) => {
            if header.k > 16 {
                return Err(format!(
                    "{} materializes 2^k marginal tables; need k ≤ 16, got {}",
                    kind.name(),
                    header.k
                ));
            }
        }
        Some(MechanismKind::InpHt) => {}
        None => match OracleKind::from_wire_tag(header.protocol) {
            Some(OracleKind::Olh) => {
                if !(1..=40).contains(&header.d) {
                    return Err(format!("OLH needs d ≤ 40, got {}", header.d));
                }
                // g = ⌈e^ε⌉ + 1 must fit the u8 bucket in OlhReport.
                if header.eps > 255f64.ln() {
                    return Err(format!(
                        "OLH buckets are reported as one byte; need eps ≤ ln(255) ≈ 5.54, got {}",
                        header.eps
                    ));
                }
            }
            Some(OracleKind::Cms) | Some(OracleKind::Hcms) => {
                if !(1..=255).contains(&header.hashes) {
                    return Err(format!(
                        "sketch needs 1 ≤ hashes ≤ 255, got {}",
                        header.hashes
                    ));
                }
                if header.width < 2 || header.width > 1 << 16 {
                    return Err(format!(
                        "sketch needs 2 ≤ width ≤ 65536, got {}",
                        header.width
                    ));
                }
                if OracleKind::from_wire_tag(header.protocol) == Some(OracleKind::Hcms)
                    && !header.width.is_power_of_two()
                {
                    return Err(format!(
                        "HCMS width must be a power of two, got {}",
                        header.width
                    ));
                }
            }
            None => {}
        },
    }
    Ok(())
}

impl Client {
    /// Rebuild the client a header describes.
    pub fn from_header(header: &StreamHeader) -> Result<Client, String> {
        validate_header(header)?;
        if let Some(mech) = header.build_mechanism() {
            return Ok(Client::Mechanism(mech));
        }
        if let Some(oracle) = build_oracle(header) {
            return Ok(Client::Oracle(oracle));
        }
        Err(format!(
            "header names unknown protocol tag {:#04x}",
            header.protocol
        ))
    }

    /// Encode one user's record into a typed report.
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> PipelineReport {
        match self {
            Client::Mechanism(m) => PipelineReport::Mechanism(m.encode(row, rng)),
            Client::Oracle(o) => PipelineReport::Oracle(o.encode(row, rng)),
        }
    }

    /// Encode one user's record into a report frame payload.
    pub fn encode_report<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> Vec<u8> {
        self.encode(row, rng).to_bytes()
    }
}

/// One user's report, for either protocol family — what a report frame
/// payload decodes into.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineReport {
    /// A marginal-mechanism report (frame tags `0x21`–`0x27`).
    Mechanism(MechanismReport),
    /// A frequency-oracle report (frame tags `0x31`–`0x33`).
    Oracle(OracleReport),
}

impl PipelineReport {
    /// Serialize into a report frame payload.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PipelineReport::Mechanism(r) => r.to_bytes(),
            PipelineReport::Oracle(r) => r.to_bytes(),
        }
    }

    /// Decode a report frame payload (self-describing by its leading
    /// tag byte).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        match bytes.first() {
            Some(0x21..=0x2F) => MechanismReport::from_bytes(bytes)
                .map(PipelineReport::Mechanism)
                .map_err(|e| format!("bad report frame: {e}")),
            Some(0x31..=0x3F) => OracleReport::from_bytes(bytes)
                .map(PipelineReport::Oracle)
                .map_err(|e| format!("bad report frame: {e}")),
            Some(t) => Err(format!("bad report frame: unknown report tag {t:#04x}")),
            None => Err("bad report frame: empty payload".to_string()),
        }
    }

    /// Decode a report frame payload into `self`, reusing any heap
    /// capacity the current value already owns — the zero-allocation
    /// decode path of the batched ingest scratch (see
    /// `MechanismReport::decode_into` and `OracleReport::decode_into`).
    /// Accepts and rejects exactly what [`PipelineReport::from_bytes`]
    /// does; on error `self` is left as some valid (but unspecified)
    /// report and must not be absorbed.
    pub fn decode_into(&mut self, bytes: &[u8]) -> Result<(), String> {
        match (bytes.first(), &mut *self) {
            (Some(0x21..=0x2F), PipelineReport::Mechanism(r)) => r
                .decode_into(bytes)
                .map_err(|e| format!("bad report frame: {e}")),
            (Some(0x31..=0x3F), PipelineReport::Oracle(r)) => r
                .decode_into(bytes)
                .map_err(|e| format!("bad report frame: {e}")),
            _ => {
                *self = PipelineReport::from_bytes(bytes)?;
                Ok(())
            }
        }
    }

    /// Display name of the protocol this report belongs to.
    #[must_use]
    pub fn protocol_name(&self) -> &'static str {
        match self {
            PipelineReport::Mechanism(r) => r.kind().name(),
            PipelineReport::Oracle(r) => r.kind().name(),
        }
    }

    /// The accumulator type tag (`StreamHeader::protocol`) of the
    /// protocol this report belongs to — the cheap way for a stream
    /// consumer to check a report against an established header.
    #[must_use]
    pub fn protocol_tag(&self) -> u8 {
        match self {
            PipelineReport::Mechanism(r) => r.kind().wire_tag(),
            PipelineReport::Oracle(r) => r.kind().wire_tag(),
        }
    }
}

/// The server half: a type-erased accumulator for either protocol
/// family.
pub enum PipelineAccumulator {
    /// Accumulator for a marginal mechanism.
    Mechanism(MechanismAccumulator),
    /// Accumulator for a frequency oracle.
    Oracle(OracleAccumulator),
}

impl PipelineAccumulator {
    /// A fresh, empty accumulator matching a header.
    pub fn empty(header: &StreamHeader) -> Result<Self, String> {
        match Client::from_header(header)? {
            Client::Mechanism(m) => Ok(PipelineAccumulator::Mechanism(m.accumulator())),
            Client::Oracle(o) => Ok(PipelineAccumulator::Oracle(o.accumulator())),
        }
    }

    /// Rehydrate serialized accumulator state, verifying it matches the
    /// snapshot's header.
    pub fn from_state(header: &StreamHeader, state: &[u8]) -> Result<Self, String> {
        if state.first() != Some(&header.protocol) {
            return Err(format!(
                "snapshot state tag {:?} does not match header protocol {:#04x}",
                state.first(),
                header.protocol
            ));
        }
        if header.mechanism_kind().is_some() {
            MechanismAccumulator::from_bytes(state)
                .map(PipelineAccumulator::Mechanism)
                .map_err(|e| format!("bad mechanism snapshot state: {e}"))
        } else if OracleKind::from_wire_tag(header.protocol).is_some() {
            OracleAccumulator::from_bytes(state)
                .map(PipelineAccumulator::Oracle)
                .map_err(|e| format!("bad oracle snapshot state: {e}"))
        } else {
            Err(format!(
                "header names unknown protocol tag {:#04x}",
                header.protocol
            ))
        }
    }

    /// Absorb one decoded report, rejecting cross-protocol mixes.
    pub fn absorb(&mut self, report: &PipelineReport) -> Result<(), String> {
        match (self, report) {
            (PipelineAccumulator::Mechanism(acc), PipelineReport::Mechanism(report)) => {
                if report.kind() != acc.kind() {
                    return Err(format!(
                        "stream mixes protocols: {} accumulator got a {} report",
                        acc.kind().name(),
                        report.kind().name()
                    ));
                }
                acc.absorb(report);
                Ok(())
            }
            (PipelineAccumulator::Oracle(acc), PipelineReport::Oracle(report)) => {
                if report.kind() != acc.kind() {
                    return Err(format!(
                        "stream mixes protocols: {} accumulator got a {} report",
                        acc.kind().name(),
                        report.kind().name()
                    ));
                }
                acc.absorb(report);
                Ok(())
            }
            (acc, report) => Err(format!(
                "stream mixes protocols: {} accumulator got a {} report",
                acc.protocol_name(),
                report.protocol_name()
            )),
        }
    }

    /// Absorb one report frame payload.
    pub fn absorb_report(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.absorb(&PipelineReport::from_bytes(bytes)?)
    }

    /// Whether [`PipelineAccumulator::absorb`] would accept this report.
    fn accepts(&self, report: &PipelineReport) -> bool {
        match (self, report) {
            (PipelineAccumulator::Mechanism(a), PipelineReport::Mechanism(r)) => {
                a.kind() == r.kind()
            }
            (PipelineAccumulator::Oracle(a), PipelineReport::Oracle(r)) => a.kind() == r.kind(),
            _ => false,
        }
    }

    /// Absorb a buffer of decoded reports with the protocol dispatch
    /// and kind check hoisted out of the hot loop: one validation pass,
    /// then the type-erased batch kernels (`InpEM` routes through its
    /// group-by-value kernel). Rejects the whole batch — absorbing
    /// nothing — if any report mixes protocols, where the serial loop
    /// would have absorbed the prefix before the offending report.
    pub fn absorb_batch(&mut self, reports: &[PipelineReport]) -> Result<(), String> {
        if let Some(bad) = reports.iter().find(|r| !self.accepts(r)) {
            return Err(format!(
                "stream mixes protocols: {} accumulator got a {} report",
                self.protocol_name(),
                bad.protocol_name()
            ));
        }
        match self {
            PipelineAccumulator::Mechanism(MechanismAccumulator::InpEm(a)) => {
                a.absorb_batch_iter(reports.iter().map(|r| match r {
                    PipelineReport::Mechanism(MechanismReport::InpEm(row)) => *row,
                    _ => unreachable!("batch verified homogeneous"),
                }));
            }
            PipelineAccumulator::Mechanism(acc) => {
                for report in reports {
                    if let PipelineReport::Mechanism(r) = report {
                        Accumulator::absorb(acc, r);
                    }
                }
            }
            PipelineAccumulator::Oracle(acc) => {
                for report in reports {
                    if let PipelineReport::Oracle(r) = report {
                        Accumulator::absorb(acc, r);
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold another partial aggregate of the same protocol into this
    /// one.
    pub fn merge(&mut self, other: PipelineAccumulator) -> Result<(), String> {
        match (self, other) {
            (PipelineAccumulator::Mechanism(a), PipelineAccumulator::Mechanism(b)) => {
                if a.kind() != b.kind() {
                    return Err(format!(
                        "cannot merge a {} snapshot into a {} snapshot",
                        b.kind().name(),
                        a.kind().name()
                    ));
                }
                a.merge(b);
                Ok(())
            }
            (PipelineAccumulator::Oracle(a), PipelineAccumulator::Oracle(b)) => {
                if a.kind() != b.kind() {
                    return Err(format!(
                        "cannot merge a {} snapshot into a {} snapshot",
                        b.kind().name(),
                        a.kind().name()
                    ));
                }
                a.merge(b);
                Ok(())
            }
            _ => Err("cannot merge a mechanism snapshot with an oracle snapshot".to_string()),
        }
    }

    /// Display name of the protocol this accumulator serves.
    #[must_use]
    pub fn protocol_name(&self) -> &'static str {
        match self {
            PipelineAccumulator::Mechanism(a) => a.kind().name(),
            PipelineAccumulator::Oracle(a) => a.kind().name(),
        }
    }

    /// Reports absorbed so far (summed across merges).
    pub fn report_count(&self) -> u64 {
        match self {
            PipelineAccumulator::Mechanism(a) => a.report_count(),
            PipelineAccumulator::Oracle(a) => a.report_count(),
        }
    }

    /// Serialized state for the snapshot's state frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PipelineAccumulator::Mechanism(a) => a.to_bytes(),
            PipelineAccumulator::Oracle(a) => a.to_bytes(),
        }
    }

    /// Finalize into the queryable estimate.
    pub fn finalize(self) -> PipelineEstimate {
        match self {
            PipelineAccumulator::Mechanism(a) => PipelineEstimate::Mechanism(a.finalize()),
            PipelineAccumulator::Oracle(a) => PipelineEstimate::Oracle(a.finalize()),
        }
    }
}

/// What a finalized snapshot answers queries through.
pub enum PipelineEstimate {
    /// Marginal tables (see `ldp_core::MarginalEstimator`).
    Mechanism(Estimate),
    /// Per-value frequencies (see [`crate::FrequencyOracle`]).
    Oracle(OracleEstimate),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn typed_reports_round_trip_for_both_families() {
        let mut rng = StdRng::seed_from_u64(11);
        for header in [
            StreamHeader::mechanism(MechanismKind::MargPs, 6, 2, 1.1),
            crate::streaming::oracle_header(OracleKind::Hcms, 6, 1.1, 3, 16, 9),
        ] {
            let client = Client::from_header(&header).unwrap();
            let mut acc = PipelineAccumulator::empty(&header).unwrap();
            for u in 0..50u64 {
                let report = client.encode(u % 64, &mut rng);
                let back = PipelineReport::from_bytes(&report.to_bytes()).unwrap();
                assert_eq!(back, report);
                acc.absorb(&back).unwrap();
            }
            assert_eq!(acc.report_count(), 50);
        }
    }

    #[test]
    fn absorb_rejects_cross_family_and_garbage_reports() {
        let mech_header = StreamHeader::mechanism(MechanismKind::MargPs, 6, 2, 1.1);
        let oracle_header = crate::streaming::oracle_header(OracleKind::Olh, 6, 1.1, 3, 16, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let oracle_report = Client::from_header(&oracle_header)
            .unwrap()
            .encode(1, &mut rng);
        let mut acc = PipelineAccumulator::empty(&mech_header).unwrap();
        let err = acc.absorb(&oracle_report).unwrap_err();
        assert!(err.contains("mixes protocols"), "{err}");
        assert!(PipelineReport::from_bytes(&[0x7F, 1]).is_err());
        assert!(PipelineReport::from_bytes(&[]).is_err());
        assert_eq!(acc.report_count(), 0);
    }
}
