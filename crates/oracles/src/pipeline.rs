//! Protocol plumbing shared by every process that speaks the framed
//! pipeline — the `ldp-cli` subcommands, the `ldp_server` aggregation
//! server, and the bench harness: one client type and one accumulator
//! type spanning the seven marginal mechanisms *and* the three
//! frequency oracles, keyed by the [`StreamHeader`] that travels as
//! frame 0 of every stream and snapshot.
//!
//! This crate hosts the module because it is the lowest layer that can
//! see both protocol families (`ldp_oracles` depends on `ldp_core`).

use crate::streaming::{
    build_oracle, Oracle, OracleAccumulator, OracleEstimate, OracleKind, OracleReport,
};
use ldp_core::frame::StreamHeader;
use ldp_core::wire::{tag, Reader, Writer};
use ldp_core::{
    Accumulator, Estimate, Mechanism, MechanismAccumulator, MechanismKind, MechanismReport,
};
use rand::Rng;

/// A protocol named on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// One of the seven marginal mechanisms.
    Mechanism(MechanismKind),
    /// One of the three frequency oracles.
    Oracle(OracleKind),
}

impl Protocol {
    /// Parse a command-line protocol name (case-insensitive).
    pub fn parse(name: &str) -> Result<Protocol, String> {
        let lower = name.to_ascii_lowercase();
        for kind in MechanismKind::ALL {
            if kind.name().to_ascii_lowercase() == lower {
                return Ok(Protocol::Mechanism(kind));
            }
        }
        for kind in OracleKind::ALL {
            if kind.name().to_ascii_lowercase() == lower {
                return Ok(Protocol::Oracle(kind));
            }
        }
        Err(format!(
            "unknown protocol {name:?}; expected one of {}",
            Protocol::names().join(", ")
        ))
    }

    /// Every accepted protocol name, in display form.
    pub fn names() -> Vec<&'static str> {
        MechanismKind::ALL
            .iter()
            .map(|k| k.name())
            .chain(OracleKind::ALL.iter().map(|k| k.name()))
            .collect()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Mechanism(k) => k.name(),
            Protocol::Oracle(k) => k.name(),
        }
    }

    /// The protocol a header names, if its tag is known.
    #[must_use]
    pub fn from_header(header: &StreamHeader) -> Option<Protocol> {
        if let Some(kind) = header.mechanism_kind() {
            return Some(Protocol::Mechanism(kind));
        }
        OracleKind::from_wire_tag(header.protocol).map(Protocol::Oracle)
    }
}

/// The sketch shape flags (`--hashes`, `--width`, `--family-seed`) an
/// oracle pipeline carries in its header; ignored by mechanisms.
#[derive(Clone, Copy, Debug)]
pub struct SketchShape {
    /// Hash count `g` (sketch rows).
    pub hashes: u32,
    /// Row width `w`.
    pub width: u32,
    /// Seed of the public hash family.
    pub family_seed: u64,
}

/// Build the stream header for a protocol at concrete parameters.
pub fn header_for(
    protocol: Protocol,
    d: u32,
    k: u32,
    eps: f64,
    sketch: SketchShape,
) -> StreamHeader {
    match protocol {
        Protocol::Mechanism(kind) => StreamHeader::mechanism(kind, d, k, eps),
        Protocol::Oracle(kind) => StreamHeader::oracle(
            kind.wire_tag(),
            d,
            eps,
            sketch.hashes,
            sketch.width,
            sketch.family_seed,
        ),
    }
}

/// The client half of a pipeline: encodes rows into report frames.
pub enum Client {
    /// A mechanism client.
    Mechanism(Mechanism),
    /// A frequency-oracle client.
    Oracle(Oracle),
}

/// Reject parameter combinations the protocol constructors would panic
/// on, with a message naming the offending flag/field. Applied to
/// headers from the command line *and* from incoming streams, so a
/// corrupt or hostile header degrades to an error instead of crashing
/// the collector process.
fn validate_header(header: &StreamHeader) -> Result<(), String> {
    match header.mechanism_kind() {
        Some(MechanismKind::InpRr) => {
            if !(1..=24).contains(&header.d) {
                return Err(format!(
                    "InpRR materializes 2^d cells; need d ≤ 24, got {}",
                    header.d
                ));
            }
        }
        Some(kind @ (MechanismKind::InpPs | MechanismKind::InpEm)) => {
            if !(1..=26).contains(&header.d) {
                return Err(format!(
                    "{} materializes 2^d cells; need d ≤ 26, got {}",
                    kind.name(),
                    header.d
                ));
            }
        }
        Some(kind @ (MechanismKind::MargRr | MechanismKind::MargPs | MechanismKind::MargHt)) => {
            if header.k > 16 {
                return Err(format!(
                    "{} materializes 2^k marginal tables; need k ≤ 16, got {}",
                    kind.name(),
                    header.k
                ));
            }
        }
        Some(MechanismKind::InpHt) => {}
        None => match OracleKind::from_wire_tag(header.protocol) {
            Some(OracleKind::Olh) => {
                if !(1..=40).contains(&header.d) {
                    return Err(format!("OLH needs d ≤ 40, got {}", header.d));
                }
                // g = ⌈e^ε⌉ + 1 must fit the u8 bucket in OlhReport.
                if header.eps > 255f64.ln() {
                    return Err(format!(
                        "OLH buckets are reported as one byte; need eps ≤ ln(255) ≈ 5.54, got {}",
                        header.eps
                    ));
                }
            }
            Some(OracleKind::Cms) | Some(OracleKind::Hcms) => {
                if !(1..=255).contains(&header.hashes) {
                    return Err(format!(
                        "sketch needs 1 ≤ hashes ≤ 255, got {}",
                        header.hashes
                    ));
                }
                if header.width < 2 || header.width > 1 << 16 {
                    return Err(format!(
                        "sketch needs 2 ≤ width ≤ 65536, got {}",
                        header.width
                    ));
                }
                if OracleKind::from_wire_tag(header.protocol) == Some(OracleKind::Hcms)
                    && !header.width.is_power_of_two()
                {
                    return Err(format!(
                        "HCMS width must be a power of two, got {}",
                        header.width
                    ));
                }
            }
            None => {}
        },
    }
    Ok(())
}

impl Client {
    /// Rebuild the client a header describes.
    pub fn from_header(header: &StreamHeader) -> Result<Client, String> {
        validate_header(header)?;
        if let Some(mech) = header.build_mechanism() {
            return Ok(Client::Mechanism(mech));
        }
        if let Some(oracle) = build_oracle(header) {
            return Ok(Client::Oracle(oracle));
        }
        Err(format!(
            "header names unknown protocol tag {:#04x}",
            header.protocol
        ))
    }

    /// Encode one user's record into a typed report.
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> PipelineReport {
        match self {
            Client::Mechanism(m) => PipelineReport::Mechanism(m.encode(row, rng)),
            Client::Oracle(o) => PipelineReport::Oracle(o.encode(row, rng)),
        }
    }

    /// Encode one user's record into a report frame payload.
    pub fn encode_report<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> Vec<u8> {
        self.encode(row, rng).to_bytes()
    }
}

/// One user's report, for either protocol family — what a report frame
/// payload decodes into.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineReport {
    /// A marginal-mechanism report (frame tags `0x21`–`0x27`).
    Mechanism(MechanismReport),
    /// A frequency-oracle report (frame tags `0x31`–`0x33`).
    Oracle(OracleReport),
}

impl PipelineReport {
    /// Serialize into a report frame payload.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PipelineReport::Mechanism(r) => r.to_bytes(),
            PipelineReport::Oracle(r) => r.to_bytes(),
        }
    }

    /// Decode one report starting at the cursor of `r` (self-describing
    /// by its tag byte) and leave the cursor on the byte after it — the
    /// walk step used by [`decode_report_batch_into`]. No
    /// trailing-bytes check; callers that decode a standalone payload
    /// should use [`PipelineReport::from_bytes`] instead.
    pub fn decode_next(r: &mut Reader<'_>) -> Result<Self, String> {
        match r.peek() {
            Some(0x21..=0x2F) => MechanismReport::decode_next(r)
                .map(PipelineReport::Mechanism)
                .map_err(|e| format!("bad report frame: {e}")),
            Some(0x31..=0x3F) => OracleReport::decode_next(r)
                .map(PipelineReport::Oracle)
                .map_err(|e| format!("bad report frame: {e}")),
            Some(t) => Err(format!("bad report frame: unknown report tag {t:#04x}")),
            None => Err("bad report frame: empty payload".to_string()),
        }
    }

    /// Decode a report frame payload (self-describing by its leading
    /// tag byte).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        let report = Self::decode_next(&mut r)?;
        r.finish().map_err(|e| format!("bad report frame: {e}"))?;
        Ok(report)
    }

    /// Cursor form of [`PipelineReport::decode_into`]: decode the next
    /// report out of `r` into `self`, reusing heap capacity when the
    /// report family matches. On error the cursor position is
    /// unspecified and `self` is some valid (but unspecified) report
    /// that must not be absorbed.
    pub fn decode_next_into(&mut self, r: &mut Reader<'_>) -> Result<(), String> {
        match (r.peek(), &mut *self) {
            (Some(0x21..=0x2F), PipelineReport::Mechanism(m)) => m
                .decode_next_into(r)
                .map_err(|e| format!("bad report frame: {e}")),
            (Some(0x31..=0x3F), PipelineReport::Oracle(o)) => o
                .decode_next_into(r)
                .map_err(|e| format!("bad report frame: {e}")),
            _ => {
                *self = PipelineReport::decode_next(r)?;
                Ok(())
            }
        }
    }

    /// Decode a report frame payload into `self`, reusing any heap
    /// capacity the current value already owns — the zero-allocation
    /// decode path of the batched ingest scratch (see
    /// `MechanismReport::decode_into` and `OracleReport::decode_into`).
    /// Accepts and rejects exactly what [`PipelineReport::from_bytes`]
    /// does; on error `self` is left as some valid (but unspecified)
    /// report and must not be absorbed.
    pub fn decode_into(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = Reader::new(bytes);
        self.decode_next_into(&mut r)?;
        r.finish().map_err(|e| format!("bad report frame: {e}"))
    }

    /// Display name of the protocol this report belongs to.
    #[must_use]
    pub fn protocol_name(&self) -> &'static str {
        match self {
            PipelineReport::Mechanism(r) => r.kind().name(),
            PipelineReport::Oracle(r) => r.kind().name(),
        }
    }

    /// The accumulator type tag (`StreamHeader::protocol`) of the
    /// protocol this report belongs to — the cheap way for a stream
    /// consumer to check a report against an established header.
    #[must_use]
    pub fn protocol_tag(&self) -> u8 {
        match self {
            PipelineReport::Mechanism(r) => r.kind().wire_tag(),
            PipelineReport::Oracle(r) => r.kind().wire_tag(),
        }
    }
}

/// The smallest encodable report blob: tag + version + a 4-byte field
/// (`REPORT_RR` with an empty ones-vector). Used to reject batch
/// frames whose count prefix claims more reports than the payload
/// could possibly hold, before any decode work happens.
const MIN_REPORT_BLOB_BYTES: u64 = 6;

/// Build one [`tag::REPORT_BATCH`] frame payload (wire v2) out of
/// pre-encoded report frame payloads: a `u32` count followed by the
/// blobs back to back, each self-describing via its own tag byte.
///
/// The count prefix saturates at `u32::MAX`, which no encodable batch
/// can reach: the 1 GiB frame cap holds fewer than `2^28` copies of
/// even the smallest report blob.
#[must_use]
pub fn encode_report_batch<B: AsRef<[u8]>>(reports: &[B]) -> Vec<u8> {
    let mut w = Writer::with_tag(tag::REPORT_BATCH);
    w.put_u32(u32::try_from(reports.len()).unwrap_or(u32::MAX));
    for report in reports {
        w.put_raw(report.as_ref());
    }
    w.into_bytes()
}

/// Decode a [`tag::REPORT_BATCH`] frame payload into a reusable
/// scratch vector, returning the number of reports decoded. Existing
/// `scratch` slots are refilled in place (reusing their heap capacity)
/// and the vector grows only when the batch is larger than any seen
/// before; entries past the returned count are stale leftovers that
/// must not be absorbed.
///
/// Rejects, without panicking: a non-batch tag, an unsupported
/// version, a count that cannot fit in the payload, a payload that
/// ends mid-report, and trailing bytes after the final report.
pub fn decode_report_batch_into(
    payload: &[u8],
    scratch: &mut Vec<PipelineReport>,
) -> Result<usize, String> {
    let mut r = Reader::new(payload);
    r.expect_tag(tag::REPORT_BATCH)
        .map_err(|e| format!("bad report batch frame: {e}"))?;
    let count = r
        .get_u32()
        .map_err(|e| format!("bad report batch frame: {e}"))?;
    if u64::from(count) * MIN_REPORT_BLOB_BYTES > r.remaining() as u64 {
        return Err(format!(
            "bad report batch frame: count {count} cannot fit in {} payload bytes",
            r.remaining()
        ));
    }
    let want = usize::try_from(count).unwrap_or(usize::MAX);
    let mut filled = 0usize;
    while filled < want {
        if r.remaining() == 0 {
            return Err(format!(
                "bad report batch frame: payload ends after {filled} of {count} reports"
            ));
        }
        if let Some(slot) = scratch.get_mut(filled) {
            slot.decode_next_into(&mut r)?;
        } else {
            scratch.push(PipelineReport::decode_next(&mut r)?);
        }
        filled += 1;
    }
    r.finish()
        .map_err(|e| format!("bad report batch frame: {e}"))?;
    Ok(filled)
}

/// The server half: a type-erased accumulator for either protocol
/// family.
pub enum PipelineAccumulator {
    /// Accumulator for a marginal mechanism.
    Mechanism(MechanismAccumulator),
    /// Accumulator for a frequency oracle.
    Oracle(OracleAccumulator),
}

impl PipelineAccumulator {
    /// A fresh, empty accumulator matching a header.
    pub fn empty(header: &StreamHeader) -> Result<Self, String> {
        match Client::from_header(header)? {
            Client::Mechanism(m) => Ok(PipelineAccumulator::Mechanism(m.accumulator())),
            Client::Oracle(o) => Ok(PipelineAccumulator::Oracle(o.accumulator())),
        }
    }

    /// Rehydrate serialized accumulator state, verifying it matches the
    /// snapshot's header.
    pub fn from_state(header: &StreamHeader, state: &[u8]) -> Result<Self, String> {
        if state.first() != Some(&header.protocol) {
            return Err(format!(
                "snapshot state tag {:?} does not match header protocol {:#04x}",
                state.first(),
                header.protocol
            ));
        }
        if header.mechanism_kind().is_some() {
            MechanismAccumulator::from_bytes(state)
                .map(PipelineAccumulator::Mechanism)
                .map_err(|e| format!("bad mechanism snapshot state: {e}"))
        } else if OracleKind::from_wire_tag(header.protocol).is_some() {
            OracleAccumulator::from_bytes(state)
                .map(PipelineAccumulator::Oracle)
                .map_err(|e| format!("bad oracle snapshot state: {e}"))
        } else {
            Err(format!(
                "header names unknown protocol tag {:#04x}",
                header.protocol
            ))
        }
    }

    /// Absorb one decoded report, rejecting cross-protocol mixes.
    pub fn absorb(&mut self, report: &PipelineReport) -> Result<(), String> {
        match (self, report) {
            (PipelineAccumulator::Mechanism(acc), PipelineReport::Mechanism(report)) => {
                if report.kind() != acc.kind() {
                    return Err(format!(
                        "stream mixes protocols: {} accumulator got a {} report",
                        acc.kind().name(),
                        report.kind().name()
                    ));
                }
                acc.absorb(report);
                Ok(())
            }
            (PipelineAccumulator::Oracle(acc), PipelineReport::Oracle(report)) => {
                if report.kind() != acc.kind() {
                    return Err(format!(
                        "stream mixes protocols: {} accumulator got a {} report",
                        acc.kind().name(),
                        report.kind().name()
                    ));
                }
                acc.absorb(report);
                Ok(())
            }
            (acc, report) => Err(format!(
                "stream mixes protocols: {} accumulator got a {} report",
                acc.protocol_name(),
                report.protocol_name()
            )),
        }
    }

    /// Absorb one report frame payload.
    pub fn absorb_report(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.absorb(&PipelineReport::from_bytes(bytes)?)
    }

    /// Whether [`PipelineAccumulator::absorb`] would accept this report.
    fn accepts(&self, report: &PipelineReport) -> bool {
        match (self, report) {
            (PipelineAccumulator::Mechanism(a), PipelineReport::Mechanism(r)) => {
                a.kind() == r.kind()
            }
            (PipelineAccumulator::Oracle(a), PipelineReport::Oracle(r)) => a.kind() == r.kind(),
            _ => false,
        }
    }

    /// Absorb a buffer of decoded reports with the protocol dispatch
    /// and kind check hoisted out of the hot loop: one validation pass,
    /// then the type-erased batch kernels (`InpEM` routes through its
    /// group-by-value kernel). Rejects the whole batch — absorbing
    /// nothing — if any report mixes protocols, where the serial loop
    /// would have absorbed the prefix before the offending report.
    pub fn absorb_batch(&mut self, reports: &[PipelineReport]) -> Result<(), String> {
        if let Some(bad) = reports.iter().find(|r| !self.accepts(r)) {
            return Err(format!(
                "stream mixes protocols: {} accumulator got a {} report",
                self.protocol_name(),
                bad.protocol_name()
            ));
        }
        match self {
            PipelineAccumulator::Mechanism(MechanismAccumulator::InpEm(a)) => {
                a.absorb_batch_iter(reports.iter().map(|r| match r {
                    PipelineReport::Mechanism(MechanismReport::InpEm(row)) => *row,
                    _ => unreachable!("batch verified homogeneous"),
                }));
            }
            PipelineAccumulator::Mechanism(acc) => {
                for report in reports {
                    if let PipelineReport::Mechanism(r) = report {
                        Accumulator::absorb(acc, r);
                    }
                }
            }
            PipelineAccumulator::Oracle(acc) => {
                for report in reports {
                    if let PipelineReport::Oracle(r) = report {
                        Accumulator::absorb(acc, r);
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold another partial aggregate of the same protocol into this
    /// one.
    pub fn merge(&mut self, other: PipelineAccumulator) -> Result<(), String> {
        match (self, other) {
            (PipelineAccumulator::Mechanism(a), PipelineAccumulator::Mechanism(b)) => {
                if a.kind() != b.kind() {
                    return Err(format!(
                        "cannot merge a {} snapshot into a {} snapshot",
                        b.kind().name(),
                        a.kind().name()
                    ));
                }
                a.merge(b);
                Ok(())
            }
            (PipelineAccumulator::Oracle(a), PipelineAccumulator::Oracle(b)) => {
                if a.kind() != b.kind() {
                    return Err(format!(
                        "cannot merge a {} snapshot into a {} snapshot",
                        b.kind().name(),
                        a.kind().name()
                    ));
                }
                a.merge(b);
                Ok(())
            }
            _ => Err("cannot merge a mechanism snapshot with an oracle snapshot".to_string()),
        }
    }

    /// Display name of the protocol this accumulator serves.
    #[must_use]
    pub fn protocol_name(&self) -> &'static str {
        match self {
            PipelineAccumulator::Mechanism(a) => a.kind().name(),
            PipelineAccumulator::Oracle(a) => a.kind().name(),
        }
    }

    /// Reports absorbed so far (summed across merges).
    pub fn report_count(&self) -> u64 {
        match self {
            PipelineAccumulator::Mechanism(a) => a.report_count(),
            PipelineAccumulator::Oracle(a) => a.report_count(),
        }
    }

    /// Serialized state for the snapshot's state frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PipelineAccumulator::Mechanism(a) => a.to_bytes(),
            PipelineAccumulator::Oracle(a) => a.to_bytes(),
        }
    }

    /// Finalize into the queryable estimate.
    pub fn finalize(self) -> PipelineEstimate {
        match self {
            PipelineAccumulator::Mechanism(a) => PipelineEstimate::Mechanism(a.finalize()),
            PipelineAccumulator::Oracle(a) => PipelineEstimate::Oracle(a.finalize()),
        }
    }
}

/// What a finalized snapshot answers queries through.
pub enum PipelineEstimate {
    /// Marginal tables (see `ldp_core::MarginalEstimator`).
    Mechanism(Estimate),
    /// Per-value frequencies (see [`crate::FrequencyOracle`]).
    Oracle(OracleEstimate),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn typed_reports_round_trip_for_both_families() {
        let mut rng = StdRng::seed_from_u64(11);
        for header in [
            StreamHeader::mechanism(MechanismKind::MargPs, 6, 2, 1.1),
            crate::streaming::oracle_header(OracleKind::Hcms, 6, 1.1, 3, 16, 9),
        ] {
            let client = Client::from_header(&header).unwrap();
            let mut acc = PipelineAccumulator::empty(&header).unwrap();
            for u in 0..50u64 {
                let report = client.encode(u % 64, &mut rng);
                let back = PipelineReport::from_bytes(&report.to_bytes()).unwrap();
                assert_eq!(back, report);
                acc.absorb(&back).unwrap();
            }
            assert_eq!(acc.report_count(), 50);
        }
    }

    #[test]
    fn batch_payload_round_trips_and_reuses_scratch() {
        let mut rng = StdRng::seed_from_u64(29);
        for header in [
            StreamHeader::mechanism(MechanismKind::InpRr, 6, 2, 1.1),
            crate::streaming::oracle_header(OracleKind::Cms, 6, 1.1, 3, 16, 9),
        ] {
            let client = Client::from_header(&header).unwrap();
            let reports: Vec<PipelineReport> = (0..17u64)
                .map(|u| client.encode(u % 64, &mut rng))
                .collect();
            let blobs: Vec<Vec<u8>> = reports.iter().map(PipelineReport::to_bytes).collect();
            let payload = encode_report_batch(&blobs);
            assert_eq!(payload[0], tag::REPORT_BATCH);

            let mut scratch = Vec::new();
            let n = decode_report_batch_into(&payload, &mut scratch).unwrap();
            assert_eq!(n, reports.len());
            assert_eq!(&scratch[..n], &reports[..]);

            // A second decode into the same scratch refills slots in
            // place; a smaller batch leaves stale tail entries behind.
            let small = encode_report_batch(&blobs[..3]);
            let n = decode_report_batch_into(&small, &mut scratch).unwrap();
            assert_eq!(n, 3);
            assert_eq!(&scratch[..3], &reports[..3]);
            assert_eq!(scratch.len(), reports.len());
        }
    }

    #[test]
    fn batch_payload_edge_counts_round_trip() {
        let empty: [&[u8]; 0] = [];
        let payload = encode_report_batch(&empty);
        let mut scratch = Vec::new();
        assert_eq!(decode_report_batch_into(&payload, &mut scratch), Ok(0));

        let mut rng = StdRng::seed_from_u64(5);
        let header = StreamHeader::mechanism(MechanismKind::MargPs, 6, 2, 1.1);
        let report = Client::from_header(&header).unwrap().encode(9, &mut rng);
        let payload = encode_report_batch(&[report.to_bytes()]);
        assert_eq!(decode_report_batch_into(&payload, &mut scratch), Ok(1));
        assert_eq!(scratch[0], report);
    }

    #[test]
    fn batch_decode_rejects_corruption_without_panicking() {
        let mut rng = StdRng::seed_from_u64(7);
        let header = StreamHeader::mechanism(MechanismKind::MargPs, 6, 2, 1.1);
        let client = Client::from_header(&header).unwrap();
        let blobs: Vec<Vec<u8>> = (0..4u64)
            .map(|u| client.encode(u, &mut rng).to_bytes())
            .collect();
        let good = encode_report_batch(&blobs);
        let mut scratch = Vec::new();

        // Truncated anywhere inside the report region: never a panic,
        // always an error mentioning the batch or report frame.
        for cut in 0..good.len() - 1 {
            let err = decode_report_batch_into(&good[..cut], &mut scratch).unwrap_err();
            assert!(err.starts_with("bad report"), "cut {cut}: {err}");
        }

        // Count prefix claims more reports than the payload can hold,
        // including the overflow extreme near the frame cap.
        for claim in [5u32, u32::MAX] {
            let mut forged = good.clone();
            forged[2..6].copy_from_slice(&claim.to_le_bytes());
            let err = decode_report_batch_into(&forged, &mut scratch).unwrap_err();
            assert!(err.contains("bad report batch frame"), "{err}");
        }

        // Count prefix claims fewer reports: the leftover blobs are
        // trailing bytes, not silently dropped data.
        let mut forged = good.clone();
        forged[2..6].copy_from_slice(&3u32.to_le_bytes());
        let err = decode_report_batch_into(&forged, &mut scratch).unwrap_err();
        assert!(err.contains("trailing"), "{err}");

        // Wrong envelope tag and a future envelope version.
        let err = decode_report_batch_into(&blobs[0], &mut scratch).unwrap_err();
        assert!(err.contains("bad report batch frame"), "{err}");
        let mut forged = good.clone();
        forged[1] = ldp_core::wire::VERSION + 1;
        let err = decode_report_batch_into(&forged, &mut scratch).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn absorb_rejects_cross_family_and_garbage_reports() {
        let mech_header = StreamHeader::mechanism(MechanismKind::MargPs, 6, 2, 1.1);
        let oracle_header = crate::streaming::oracle_header(OracleKind::Olh, 6, 1.1, 3, 16, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let oracle_report = Client::from_header(&oracle_header)
            .unwrap()
            .encode(1, &mut rng);
        let mut acc = PipelineAccumulator::empty(&mech_header).unwrap();
        let err = acc.absorb(&oracle_report).unwrap_err();
        assert!(err.contains("mixes protocols"), "{err}");
        assert!(PipelineReport::from_bytes(&[0x7F, 1]).is_err());
        assert!(PipelineReport::from_bytes(&[]).is_err());
        assert_eq!(acc.report_count(), 0);
    }
}
