//! The non-Hadamard Count-Mean Sketch: each user releases their *whole*
//! perturbed sketch row (`w` bits via unary encoding) instead of a single
//! Hadamard coefficient. Included to quantify the communication/accuracy
//! trade the Hadamard variant makes (Appendix B.2 discussion).

use crate::FrequencyOracle;
use ldp_core::wire::{tag, Reader, WireError, Writer};
use ldp_core::Accumulator;
use ldp_mechanisms::{check_epsilon, UnaryEncoding, UnaryFlavor};
use ldp_sampling::hash::{splitmix64, PolyHash};
use ldp_sampling::{bernoulli_fixed, bernoulli_word};
use rand::Rng;

/// One user's report: the sampled row and the positions reporting 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CmsReport {
    /// Which sketch row (hash function) the user sampled.
    pub row: u8,
    /// Bucket positions reporting 1 after unary encoding.
    pub ones: Vec<u16>,
}

/// Configuration of the count-mean sketch.
#[derive(Clone, Debug)]
pub struct Cms {
    d: u32,
    g: usize,
    w: usize,
    ue: UnaryEncoding,
    hashes: Vec<PolyHash>,
}

impl Cms {
    /// ε-LDP instance with `g` hash rows of width `w`.
    #[must_use]
    pub fn new(d: u32, eps: f64, g: usize, w: usize, family_seed: u64) -> Self {
        check_epsilon(eps);
        assert!((1..=255).contains(&g) && w >= 2);
        let hashes = (0..g)
            .map(|l| PolyHash::from_seed(splitmix64(family_seed ^ (l as u64) << 23), 3, w as u64))
            .collect();
        Cms {
            d,
            g,
            w,
            ue: UnaryEncoding::for_epsilon(eps, UnaryFlavor::Optimized),
            hashes,
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Communication cost in bits per user (one row of the sketch).
    #[must_use]
    pub fn communication_bits(&self) -> usize {
        self.w + 8
    }

    /// Client: hash into the sampled row, unary-encode the bucket.
    pub fn encode<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> CmsReport {
        let (row, bucket) = self.sample_row(value, rng);
        let mut ones = Vec::new();
        self.perturb_row(bucket, rng, |b| ones.push(b));
        CmsReport { row, ones }
    }

    /// First half of the encode: draw the sketch row uniformly and hash
    /// the value into it. Returns `(row, bucket)`. Split out so the
    /// batched kernel can write the row field before the variable-length
    /// ones list.
    #[inline]
    pub fn sample_row<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> (u8, u64) {
        let l = rng.gen_range(0..self.g);
        (l as u8, self.hashes[l].hash(value))
    }

    /// Second half of the encode, shared by the serial
    /// [`encode`](Self::encode) and the batched kernel: walk the
    /// perturbed `w`-bucket unary encoding's 1-positions in ascending
    /// order (background coins drawn 64 lanes per RNG word via
    /// [`bernoulli_word`], the true bucket overridden by a separate
    /// `Bernoulli(p₁)` draw).
    #[inline]
    pub fn perturb_row<R: Rng + ?Sized, F: FnMut(u16)>(
        &self,
        bucket: u64,
        rng: &mut R,
        mut emit: F,
    ) {
        let cells = self.w as u64;
        debug_assert!(bucket < cells);
        let truth = rng.gen_bool(self.ue.p1());
        let p0 = bernoulli_fixed(self.ue.p0());
        let mut base = 0u64;
        while base < cells {
            let lanes = (cells - base).min(64) as u32;
            let mut word = bernoulli_word(rng, p0, lanes);
            if bucket >= base && bucket - base < u64::from(lanes) {
                let bit = 1u64 << (bucket - base);
                if truth {
                    word |= bit;
                } else {
                    word &= !bit;
                }
            }
            while word != 0 {
                let tz = word.trailing_zeros();
                emit(base as u16 + tz as u16);
                word &= word - 1;
            }
            base += u64::from(lanes);
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> CmsAggregator {
        CmsAggregator {
            config: self.clone(),
            ones: vec![vec![0u64; self.w]; self.g],
            users: vec![0u64; self.g],
        }
    }
}

/// Aggregator for [`Cms`].
#[derive(Clone, Debug)]
pub struct CmsAggregator {
    config: Cms,
    ones: Vec<Vec<u64>>,
    users: Vec<u64>,
}

impl CmsAggregator {
    /// Absorb one report.
    pub fn absorb(&mut self, report: &CmsReport) {
        let l = report.row as usize;
        self.users[l] += 1;
        for &b in &report.ones {
            self.ones[l][b as usize] += 1;
        }
    }

    /// Batched ingest: row-grouped sketch updates — each report's
    /// sampled row is borrowed once, then its reported positions are
    /// scattered into that single contiguous row. State is
    /// byte-identical to absorbing each report in order.
    pub fn absorb_batch(&mut self, reports: &[CmsReport]) {
        let users = &mut self.users[..];
        let ones = &mut self.ones[..];
        for report in reports {
            let l = report.row as usize;
            users[l] += 1;
            let row = &mut ones[l][..];
            for &b in &report.ones {
                row[b as usize] += 1;
            }
        }
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: CmsAggregator) {
        for (a, b) in self.users.iter_mut().zip(other.users) {
            *a += b;
        }
        for (ra, rb) in self.ones.iter_mut().zip(other.ones) {
            for (a, b) in ra.iter_mut().zip(rb) {
                *a += b;
            }
        }
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.users.iter().map(|&u| u as usize).sum()
    }

    /// Unbias rows into bucket distributions.
    #[must_use]
    pub fn finish(self) -> CmsOracle {
        let rows = self
            .ones
            .iter()
            .zip(&self.users)
            .map(|(cells, &u)| {
                if u == 0 {
                    vec![1.0 / self.config.w as f64; self.config.w]
                } else {
                    cells
                        .iter()
                        .map(|&c| self.config.ue.unbias_frequency(c as f64 / u as f64))
                        .collect()
                }
            })
            .collect();
        CmsOracle {
            config: self.config,
            rows,
        }
    }
}

impl Accumulator for CmsAggregator {
    type Report = CmsReport;
    type Output = CmsOracle;

    fn absorb(&mut self, report: &CmsReport) {
        CmsAggregator::absorb(self, report);
    }

    fn absorb_batch(&mut self, reports: &[CmsReport]) {
        CmsAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        CmsAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.users.iter().sum()
    }

    fn finalize(self) -> CmsOracle {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::CMS);
        w.put_u32(self.config.d);
        w.put_u64(self.config.g as u64);
        w.put_u64(self.config.w as u64);
        w.put_f64(self.config.ue.p1());
        w.put_f64(self.config.ue.p0());
        for hash in &self.config.hashes {
            w.put_u64_slice(hash.coefficients());
        }
        w.put_u64_slice(&self.users);
        for row in &self.ones {
            w.put_u64_slice(row);
        }
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::CMS)?;
        let d = r.get_u32()?;
        let g = r.get_u64()? as usize;
        let w = r.get_u64()? as usize;
        let p1 = r.get_f64()?;
        let p0 = r.get_f64()?;
        if !(1..=255).contains(&g) || w < 2 {
            return Err(WireError::Invalid("CMS sketch shape"));
        }
        if !(0.0..=1.0).contains(&p1) || !(0.0..=1.0).contains(&p0) || p1 <= p0 {
            return Err(WireError::Invalid("CMS probabilities"));
        }
        let hashes = (0..g)
            .map(|_| {
                let coeffs = r.get_u64_vec()?;
                if coeffs.is_empty() || coeffs.iter().any(|&c| c >= ldp_sampling::hash::MERSENNE_P)
                {
                    return Err(WireError::Invalid("CMS hash coefficients"));
                }
                Ok(PolyHash::from_coefficients(coeffs, w as u64))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let users = r.get_u64_vec()?;
        let ones = (0..g)
            .map(|_| r.get_u64_vec())
            .collect::<Result<Vec<_>, _>>()?;
        r.finish()?;
        if users.len() != g || ones.iter().any(|row| row.len() != w) {
            return Err(WireError::Invalid("CMS table shape"));
        }
        Ok(CmsAggregator {
            config: Cms {
                d,
                g,
                w,
                ue: UnaryEncoding::with_probabilities(p1, p0),
                hashes,
            },
            ones,
            users,
        })
    }
}

/// Decoded count-mean sketch.
#[derive(Clone, Debug)]
pub struct CmsOracle {
    config: Cms,
    rows: Vec<Vec<f64>>,
}

impl FrequencyOracle for CmsOracle {
    fn d(&self) -> u32 {
        self.config.d
    }

    fn estimate(&self, value: u64) -> f64 {
        let w = self.config.w as f64;
        let debias = w / (w - 1.0);
        self.rows
            .iter()
            .zip(&self.config.hashes)
            .map(|(row, h)| debias * (row[h.hash(value) as usize] - 1.0 / w))
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn recovers_heavy_hitter() {
        let config = Cms::new(10, 1.1, 5, 128, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<u64> = (0..60_000)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    77
                } else {
                    rng.gen_range(0..1024)
                }
            })
            .collect();
        let mut agg = config.aggregator();
        for &r in &rows {
            agg.absorb(&config.encode(r, &mut rng));
        }
        let oracle = agg.finish();
        let est = oracle.estimate(77);
        assert!((est - 0.5).abs() < 0.12, "estimate {est}");
    }

    #[test]
    fn accumulator_round_trips_through_bytes() {
        let config = Cms::new(8, 1.1, 4, 32, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut agg = config.aggregator();
        for v in 0..800u64 {
            agg.absorb(&config.encode(v % 50, &mut rng));
        }
        let bytes = Accumulator::to_bytes(&agg);
        let back = <CmsAggregator as Accumulator>::from_bytes(&bytes).unwrap();
        assert_eq!(Accumulator::to_bytes(&back), bytes);
        assert_eq!(back.report_count(), 800);
        assert_eq!(
            back.finalize().estimate(17).to_bits(),
            agg.finish().estimate(17).to_bits()
        );
    }

    #[test]
    fn communication_is_w_bits() {
        let config = Cms::new(10, 1.1, 5, 256, 4);
        assert_eq!(config.communication_bits(), 264);
        // versus 8 + 16 + 1 bits for the Hadamard variant — the gap the
        // transform buys.
    }
}
