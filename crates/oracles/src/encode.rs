//! Batched encode kernels for the frequency oracles, plus the
//! protocol-erased [`Client::encode_batch`] entry point the CLI and the
//! load generator drive.
//!
//! Mirrors `ldp_core::Mechanism::encode_batch`: each report is encoded
//! under its own `user_rng(seed, user)` stream and written straight
//! into a reusable [`Writer`] as one [`tag::REPORT_BATCH`] frame
//! payload, byte-identical to serializing the serial `encode` loop's
//! reports (`tests/encode_kernels.rs`).
//!
//! This file is covered by the `ldp-lint` hot-path panic scan: no
//! indexing, no unwraps, no lossy counts.

use crate::pipeline::Client;
use crate::streaming::Oracle;
use ldp_core::user_rng;
use ldp_core::wire::{tag, Writer};

impl Oracle {
    /// Serialize one user's report for `row` directly into `w`,
    /// byte-identical to `self.encode(row, rng).to_bytes()` appended at
    /// the writer's current position.
    pub fn encode_report_into<R: rand::Rng + ?Sized>(&self, row: u64, rng: &mut R, w: &mut Writer) {
        match self {
            Oracle::Olh(o) => {
                let r = o.encode(row, rng);
                w.put_tag(tag::REPORT_OLH);
                w.put_u64(r.seed);
                w.put_u8(r.bucket);
            }
            Oracle::Cms(o) => {
                let (sketch_row, bucket) = o.sample_row(row, rng);
                w.put_tag(tag::REPORT_CMS);
                w.put_u8(sketch_row);
                let prefix = w.len();
                w.put_u32(0);
                let mut count = 0u32;
                o.perturb_row(bucket, rng, |b| {
                    w.put_u16(b);
                    count = count.saturating_add(1);
                });
                w.patch_u32(prefix, count);
            }
            Oracle::Hcms(o) => {
                let r = o.encode(row, rng);
                w.put_tag(tag::REPORT_HCMS);
                w.put_u8(r.row);
                w.put_u16(r.coefficient);
                w.put_u8(u8::from(r.sign_positive));
            }
        }
    }

    /// Encode a batch of values into `w` as one complete
    /// [`tag::REPORT_BATCH`] frame payload (the writer is reset first,
    /// keeping its allocation). Value `i` is encoded under
    /// `user_rng(seed, first_user + i)`.
    pub fn encode_batch(&self, rows: &[u64], seed: u64, first_user: u64, w: &mut Writer) {
        w.reset_with_tag(tag::REPORT_BATCH);
        w.put_u32(u32::try_from(rows.len()).unwrap_or(u32::MAX));
        for (i, &row) in rows.iter().enumerate() {
            let mut rng = user_rng(seed, first_user.wrapping_add(i as u64));
            self.encode_report_into(row, &mut rng, w);
        }
    }
}

impl Client {
    /// Protocol-erased batched encode: one [`tag::REPORT_BATCH`] frame
    /// payload for `rows`, written into the reusable `w`. Row `i` uses
    /// `user_rng(seed, first_user + i)`, so any chunking of a population
    /// yields the same bytes as the serial per-user loop.
    pub fn encode_batch(&self, rows: &[u64], seed: u64, first_user: u64, w: &mut Writer) {
        match self {
            Client::Mechanism(m) => m.encode_batch(rows, seed, first_user, w),
            Client::Oracle(o) => o.encode_batch(rows, seed, first_user, w),
        }
    }
}
