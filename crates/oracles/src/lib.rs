#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Frequency-oracle baselines (Appendix B.2).
//!
//! A *frequency oracle* is an LDP protocol from which the frequency of any
//! single value in a (possibly massive) domain can be estimated. A generic
//! route to marginals is: build an oracle over the full domain `{0,1}^d`,
//! estimate all `2^d` cell frequencies, and aggregate — the approach the
//! paper compares against in Figure 10:
//!
//! * [`Olh`] — Optimized Local Hashing (Wang et al., USENIX Security
//!   2017): each user hashes the domain onto `g = ⌈e^ε⌉ + 1` buckets with
//!   a private universal hash and reports the bucket through GRR. Accurate
//!   for small `d`, but decoding costs `O(N · 2^d)` — the paper "timed
//!   out after 12 hours" at `d = 12`; [`OlhOracle::estimate_all`] takes an
//!   explicit operation budget and reports when it is exceeded.
//! * [`HadamardCms`] — the Apple-style Hadamard Count-Mean Sketch
//!   (`InpHTCMS`): hash onto a `w`-bucket sketch row, release one
//!   Hadamard coefficient of the hashed one-hot vector via ε-RR. Fast to
//!   decode but tuned for heavy hitters, not the low-frequency cells a
//!   marginal needs.
//! * [`Cms`] — the non-Hadamard count-mean sketch (each user releases
//!   their whole perturbed sketch row via unary encoding), included for
//!   the communication-cost comparison.
//!
//! All three implement [`FrequencyOracle`]; [`oracle_marginal`] turns any
//! oracle into a marginal estimator. Each oracle's aggregator also
//! implements [`ldp_core::Accumulator`], so oracles plug into the same
//! streaming ingest / merge / serialize pipeline as the marginal
//! mechanisms (`absorb` per report, `merge` across collectors,
//! `to_bytes` across process boundaries).

mod cms;
mod encode;
mod hcms;
mod olh;
mod oracle;
pub mod pipeline;
mod streaming;

pub use cms::{Cms, CmsAggregator, CmsOracle, CmsReport};
pub use hcms::{HadamardCms, HadamardCmsAggregator, HadamardCmsOracle, HcmsReport};
pub use olh::{Olh, OlhAggregator, OlhDecode, OlhOracle, OlhReport};
pub use oracle::{oracle_full_distribution, oracle_marginal, FrequencyOracle};
pub use streaming::{
    build_oracle, oracle_header, Oracle, OracleAccumulator, OracleEstimate, OracleKind,
    OracleReport,
};
