//! Type-erased oracle client/server pair mirroring
//! `ldp_core::MechanismAccumulator`: one report enum, one accumulator
//! enum, one [`FrequencyOracle`] out — so the three frequency oracles
//! ride the same `encode | ingest | merge | query` pipeline (and the
//! same snapshot wire format) as the marginal mechanisms.

use crate::{
    Cms, CmsAggregator, CmsOracle, CmsReport, FrequencyOracle, HadamardCms, HadamardCmsAggregator,
    HadamardCmsOracle, HcmsReport, Olh, OlhAggregator, OlhOracle, OlhReport,
};
use ldp_core::frame::StreamHeader;
use ldp_core::wire::{tag, Reader, WireError, Writer};
use ldp_core::Accumulator;
use rand::Rng;

/// Identifier for one of the three frequency-oracle baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Optimized Local Hashing (Wang et al.) — see [`Olh`].
    Olh,
    /// Count-mean sketch with unary-encoded rows — see [`Cms`].
    Cms,
    /// Hadamard count-mean sketch (`InpHTCMS`) — see [`HadamardCms`].
    Hcms,
}

impl OracleKind {
    /// All three oracles, in the Appendix B.2 presentation order.
    pub const ALL: [OracleKind; 3] = [OracleKind::Olh, OracleKind::Cms, OracleKind::Hcms];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Olh => "OLH",
            OracleKind::Cms => "CMS",
            OracleKind::Hcms => "HCMS",
        }
    }

    /// The accumulator type tag (see [`tag`]) naming this oracle in
    /// stream headers and serialized state.
    #[must_use]
    pub fn wire_tag(self) -> u8 {
        match self {
            OracleKind::Olh => tag::OLH,
            OracleKind::Cms => tag::CMS,
            OracleKind::Hcms => tag::HCMS,
        }
    }

    /// Inverse of [`OracleKind::wire_tag`].
    #[must_use]
    pub fn from_wire_tag(t: u8) -> Option<Self> {
        match t {
            tag::OLH => Some(OracleKind::Olh),
            tag::CMS => Some(OracleKind::Cms),
            tag::HCMS => Some(OracleKind::Hcms),
            _ => None,
        }
    }

    /// Build the oracle for a `d`-attribute domain under `ε`-LDP. The
    /// sketch shape (`hashes` rows of width `width`, hash family drawn
    /// from `family_seed`) applies to the two CMS variants; OLH ignores
    /// it.
    #[must_use]
    pub fn build(self, d: u32, eps: f64, hashes: usize, width: usize, family_seed: u64) -> Oracle {
        match self {
            OracleKind::Olh => Oracle::Olh(Olh::new(d, eps)),
            OracleKind::Cms => Oracle::Cms(Cms::new(d, eps, hashes, width, family_seed)),
            OracleKind::Hcms => Oracle::Hcms(HadamardCms::new(d, eps, hashes, width, family_seed)),
        }
    }
}

/// A built frequency oracle, ready to encode reports — the oracle
/// counterpart of `ldp_core::Mechanism`.
#[derive(Clone, Debug)]
pub enum Oracle {
    /// See [`Olh`].
    Olh(Olh),
    /// See [`Cms`].
    Cms(Cms),
    /// See [`HadamardCms`].
    Hcms(HadamardCms),
}

impl Oracle {
    /// Which kind this is.
    #[must_use]
    pub fn kind(&self) -> OracleKind {
        match self {
            Oracle::Olh(_) => OracleKind::Olh,
            Oracle::Cms(_) => OracleKind::Cms,
            Oracle::Hcms(_) => OracleKind::Hcms,
        }
    }

    /// Client side: encode one user's value, consuming their private
    /// randomness.
    #[must_use]
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> OracleReport {
        match self {
            Oracle::Olh(o) => OracleReport::Olh(o.encode(row, rng)),
            Oracle::Cms(o) => OracleReport::Cms(o.encode(row, rng)),
            Oracle::Hcms(o) => OracleReport::Hcms(o.encode(row, rng)),
        }
    }

    /// Server side: a fresh, empty accumulator matching this oracle's
    /// configuration.
    #[must_use]
    pub fn accumulator(&self) -> OracleAccumulator {
        match self {
            Oracle::Olh(o) => OracleAccumulator::Olh(o.aggregator()),
            Oracle::Cms(o) => OracleAccumulator::Cms(o.aggregator()),
            Oracle::Hcms(o) => OracleAccumulator::Hcms(o.aggregator()),
        }
    }
}

/// Rebuild the oracle a [`StreamHeader`] describes (`None` when the
/// header names a marginal mechanism instead — see
/// `StreamHeader::build_mechanism` for those).
#[must_use]
pub fn build_oracle(header: &StreamHeader) -> Option<Oracle> {
    OracleKind::from_wire_tag(header.protocol).map(|kind| {
        kind.build(
            header.d,
            header.eps,
            header.hashes as usize,
            header.width as usize,
            header.family_seed,
        )
    })
}

/// Stream-header describing an oracle pipeline (the counterpart of
/// `StreamHeader::mechanism`).
#[must_use]
pub fn oracle_header(
    kind: OracleKind,
    d: u32,
    eps: f64,
    hashes: usize,
    width: usize,
    family_seed: u64,
) -> StreamHeader {
    StreamHeader::oracle(
        kind.wire_tag(),
        d,
        eps,
        hashes as u32,
        width as u32,
        family_seed,
    )
}

/// One user's report, for any [`OracleKind`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OracleReport {
    /// See [`OlhReport`].
    Olh(OlhReport),
    /// See [`CmsReport`].
    Cms(CmsReport),
    /// See [`HcmsReport`].
    Hcms(HcmsReport),
}

impl OracleReport {
    /// Which oracle this report belongs to.
    #[must_use]
    pub fn kind(&self) -> OracleKind {
        match self {
            OracleReport::Olh(_) => OracleKind::Olh,
            OracleReport::Cms(_) => OracleKind::Cms,
            OracleReport::Hcms(_) => OracleKind::Hcms,
        }
    }

    /// Serialize into a report frame payload (tags `REPORT_*` of
    /// [`tag`]).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            OracleReport::Olh(r) => {
                let mut w = Writer::with_tag(tag::REPORT_OLH);
                w.put_u64(r.seed);
                w.put_u8(r.bucket);
                w.into_bytes()
            }
            OracleReport::Cms(r) => {
                let mut w = Writer::with_tag(tag::REPORT_CMS);
                w.put_u8(r.row);
                w.put_u16_slice(&r.ones);
                w.into_bytes()
            }
            OracleReport::Hcms(r) => {
                let mut w = Writer::with_tag(tag::REPORT_HCMS);
                w.put_u8(r.row);
                w.put_u16(r.coefficient);
                w.put_u8(u8::from(r.sign_positive));
                w.into_bytes()
            }
        }
    }

    /// Decode one report at a cursor, leaving the cursor on the byte
    /// after it (no trailing-bytes check) — the walk step for
    /// `REPORT_BATCH` payloads, which concatenate many self-describing
    /// report blobs. [`OracleReport::from_bytes`] is this plus a
    /// whole-blob [`Reader::finish`].
    pub fn decode_next(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.peek() {
            Some(tag::REPORT_OLH) => {
                r.expect_tag(tag::REPORT_OLH)?;
                let seed = r.get_u64()?;
                let bucket = r.get_u8()?;
                Ok(OracleReport::Olh(OlhReport { seed, bucket }))
            }
            Some(tag::REPORT_CMS) => {
                r.expect_tag(tag::REPORT_CMS)?;
                let row = r.get_u8()?;
                let ones = r.get_u16_vec()?;
                Ok(OracleReport::Cms(CmsReport { row, ones }))
            }
            Some(tag::REPORT_HCMS) => {
                r.expect_tag(tag::REPORT_HCMS)?;
                let row = r.get_u8()?;
                let coefficient = r.get_u16()?;
                let sign_positive = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Invalid("report sign flag")),
                };
                Ok(OracleReport::Hcms(HcmsReport {
                    row,
                    coefficient,
                    sign_positive,
                }))
            }
            _ => Err(WireError::Invalid("unknown oracle report tag")),
        }
    }

    /// Decode a report frame payload written by
    /// [`OracleReport::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let report = Self::decode_next(&mut r)?;
        r.finish()?;
        Ok(report)
    }

    /// Cursor form of [`OracleReport::decode_into`]: decode one report
    /// at the cursor into `self`, reusing any heap capacity the current
    /// value already owns. On error the cursor position and `self` are
    /// unspecified (but valid); neither must be used further.
    pub fn decode_next_into(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        match (r.peek(), &mut *self) {
            (Some(tag::REPORT_CMS), OracleReport::Cms(report)) => {
                r.expect_tag(tag::REPORT_CMS)?;
                report.row = r.get_u8()?;
                r.get_u16_vec_into(&mut report.ones)
            }
            // OLH and HCMS reports are fixed-size values: a plain
            // decode already allocates nothing.
            _ => {
                *self = OracleReport::decode_next(r)?;
                Ok(())
            }
        }
    }

    /// Decode a report frame payload into `self`, reusing any heap
    /// capacity the current value already owns (the CMS position
    /// buffer) — the zero-allocation decode path of the batched ingest
    /// scratch. Accepts and rejects exactly what
    /// [`OracleReport::from_bytes`] does; on error `self` is left as
    /// some valid (but unspecified) report and must not be absorbed.
    pub fn decode_into(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = Reader::new(bytes);
        self.decode_next_into(&mut r)?;
        r.finish()
    }
}

/// Type-erased [`Accumulator`] over the three oracle aggregators.
#[derive(Clone, Debug)]
pub enum OracleAccumulator {
    /// See [`OlhAggregator`].
    Olh(OlhAggregator),
    /// See [`CmsAggregator`].
    Cms(CmsAggregator),
    /// See [`HadamardCmsAggregator`].
    Hcms(HadamardCmsAggregator),
}

impl OracleAccumulator {
    /// Which oracle this accumulator serves.
    #[must_use]
    pub fn kind(&self) -> OracleKind {
        match self {
            OracleAccumulator::Olh(_) => OracleKind::Olh,
            OracleAccumulator::Cms(_) => OracleKind::Cms,
            OracleAccumulator::Hcms(_) => OracleKind::Hcms,
        }
    }
}

#[track_caller]
fn kind_mismatch(own: OracleKind, got: OracleKind) -> ! {
    panic!(
        "{} accumulator cannot absorb a {} report",
        own.name(),
        got.name()
    );
}

impl Accumulator for OracleAccumulator {
    type Report = OracleReport;
    type Output = OracleEstimate;

    fn absorb(&mut self, report: &OracleReport) {
        match (&mut *self, report) {
            (OracleAccumulator::Olh(a), OracleReport::Olh(r)) => Accumulator::absorb(a, r),
            (OracleAccumulator::Cms(a), OracleReport::Cms(r)) => Accumulator::absorb(a, r),
            (OracleAccumulator::Hcms(a), OracleReport::Hcms(r)) => Accumulator::absorb(a, r),
            (acc, r) => kind_mismatch(acc.kind(), r.kind()),
        }
    }

    /// Batched ingest with the accumulator dispatch hoisted out of the
    /// loop: one variant match up front, then the concrete aggregator's
    /// row-grouped absorb per report (no allocation, no per-report
    /// double dispatch).
    fn absorb_batch(&mut self, reports: &[OracleReport]) {
        macro_rules! drain {
            ($acc:ident, $variant:ident) => {
                for report in reports {
                    match report {
                        OracleReport::$variant(r) => Accumulator::absorb($acc, r),
                        other => kind_mismatch(OracleKind::$variant, other.kind()),
                    }
                }
            };
        }
        match &mut *self {
            OracleAccumulator::Olh(a) => drain!(a, Olh),
            OracleAccumulator::Cms(a) => drain!(a, Cms),
            OracleAccumulator::Hcms(a) => drain!(a, Hcms),
        }
    }

    fn merge(&mut self, other: Self) {
        match (&mut *self, other) {
            (OracleAccumulator::Olh(a), OracleAccumulator::Olh(b)) => Accumulator::merge(a, b),
            (OracleAccumulator::Cms(a), OracleAccumulator::Cms(b)) => Accumulator::merge(a, b),
            (OracleAccumulator::Hcms(a), OracleAccumulator::Hcms(b)) => Accumulator::merge(a, b),
            (acc, b) => panic!(
                "{} accumulator cannot merge a {} accumulator",
                acc.kind().name(),
                b.kind().name()
            ),
        }
    }

    fn report_count(&self) -> u64 {
        match self {
            OracleAccumulator::Olh(a) => a.report_count(),
            OracleAccumulator::Cms(a) => a.report_count(),
            OracleAccumulator::Hcms(a) => a.report_count(),
        }
    }

    fn finalize(self) -> OracleEstimate {
        match self {
            OracleAccumulator::Olh(a) => OracleEstimate::Olh(a.finalize()),
            OracleAccumulator::Cms(a) => OracleEstimate::Cms(a.finalize()),
            OracleAccumulator::Hcms(a) => OracleEstimate::Hcms(a.finalize()),
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        match self {
            OracleAccumulator::Olh(a) => a.to_bytes(),
            OracleAccumulator::Cms(a) => a.to_bytes(),
            OracleAccumulator::Hcms(a) => a.to_bytes(),
        }
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        match Reader::peek_tag(bytes) {
            Some(tag::OLH) => Accumulator::from_bytes(bytes).map(OracleAccumulator::Olh),
            Some(tag::CMS) => Accumulator::from_bytes(bytes).map(OracleAccumulator::Cms),
            Some(tag::HCMS) => Accumulator::from_bytes(bytes).map(OracleAccumulator::Hcms),
            _ => Err(WireError::Invalid("unknown oracle accumulator tag")),
        }
    }
}

/// Finalized oracle, for any [`OracleKind`] — answers frequency queries
/// through the common [`FrequencyOracle`] trait.
#[derive(Clone, Debug)]
pub enum OracleEstimate {
    /// See [`OlhOracle`]. Queries cost `O(N)` each.
    Olh(OlhOracle),
    /// See [`CmsOracle`].
    Cms(CmsOracle),
    /// See [`HadamardCmsOracle`].
    Hcms(HadamardCmsOracle),
}

impl FrequencyOracle for OracleEstimate {
    fn d(&self) -> u32 {
        match self {
            OracleEstimate::Olh(o) => o.d(),
            OracleEstimate::Cms(o) => o.d(),
            OracleEstimate::Hcms(o) => o.d(),
        }
    }

    fn estimate(&self, value: u64) -> f64 {
        match self {
            OracleEstimate::Olh(o) => o.estimate(value),
            OracleEstimate::Cms(o) => o.estimate(value),
            OracleEstimate::Hcms(o) => o.estimate(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn build(kind: OracleKind) -> Oracle {
        kind.build(6, 1.1, 3, 64, 9)
    }

    #[test]
    fn reports_round_trip_and_feed_identical_state() {
        for kind in OracleKind::ALL {
            let oracle = build(kind);
            let mut rng = StdRng::seed_from_u64(21);
            let mut direct = oracle.accumulator();
            let mut rehydrated = oracle.accumulator();
            for u in 0..300u64 {
                let report = oracle.encode(u % 64, &mut rng);
                let back = OracleReport::from_bytes(&report.to_bytes())
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
                assert_eq!(back, report, "{} report round trip", kind.name());
                direct.absorb(&report);
                rehydrated.absorb(&back);
            }
            assert_eq!(direct.report_count(), 300, "{}", kind.name());
            assert_eq!(
                direct.to_bytes(),
                rehydrated.to_bytes(),
                "{} state diverged after a report wire round trip",
                kind.name()
            );
        }
    }

    #[test]
    fn accumulator_state_round_trips_and_headers_rehydrate() {
        for kind in OracleKind::ALL {
            let oracle = build(kind);
            let header = oracle_header(kind, 6, 1.1, 3, 64, 9);
            let rebuilt = build_oracle(&header).unwrap();
            assert_eq!(rebuilt.kind(), kind);

            // The rebuilt client must produce the exact same reports —
            // the hash family and probabilities are fully determined by
            // the header.
            let mut rng_a = StdRng::seed_from_u64(5);
            let mut rng_b = StdRng::seed_from_u64(5);
            let mut acc = oracle.accumulator();
            for u in 0..200u64 {
                let a = oracle.encode(u % 64, &mut rng_a);
                let b = rebuilt.encode(u % 64, &mut rng_b);
                assert_eq!(a, b, "{} rebuilt client diverged", kind.name());
                acc.absorb(&a);
            }
            let bytes = acc.to_bytes();
            let back = OracleAccumulator::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_bytes(), bytes, "{} round trip", kind.name());
        }
    }

    #[test]
    fn merged_shards_match_serial_bytes() {
        for kind in OracleKind::ALL {
            let oracle = build(kind);
            let mut rng = StdRng::seed_from_u64(8);
            let reports: Vec<OracleReport> = (0..400u64)
                .map(|u| oracle.encode(u % 64, &mut rng))
                .collect();

            let mut serial = oracle.accumulator();
            for r in &reports {
                serial.absorb(r);
            }
            let mut parts: Vec<OracleAccumulator> = (0..4)
                .map(|s| {
                    let mut acc = oracle.accumulator();
                    for r in reports.iter().skip(s).step_by(4) {
                        acc.absorb(r);
                    }
                    acc
                })
                .collect();
            let mut merged = parts.remove(0);
            for part in parts {
                merged.merge(part);
            }
            assert_eq!(
                merged.to_bytes(),
                serial.to_bytes(),
                "{} merge is not partition-invariant",
                kind.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "OLH accumulator cannot absorb a HCMS report")]
    fn mismatched_report_kind_panics() {
        let olh = build(OracleKind::Olh);
        let hcms = build(OracleKind::Hcms);
        let mut rng = StdRng::seed_from_u64(0);
        let mut acc = olh.accumulator();
        acc.absorb(&hcms.encode(1, &mut rng));
    }

    #[test]
    fn rejects_garbage_bytes() {
        assert!(OracleAccumulator::from_bytes(&[]).is_err());
        assert!(OracleReport::from_bytes(&[0x7F, 1]).is_err());
        let full = OracleReport::Olh(OlhReport { seed: 5, bucket: 1 }).to_bytes();
        assert_eq!(
            OracleReport::from_bytes(&full[..full.len() - 1]),
            Err(WireError::Truncated)
        );
    }
}
