//! `InpOLH` — Optimized Local Hashing (Wang et al. 2017).
//!
//! Client: draw a private universal hash `h : {0,1}^d → [g]` with
//! `g = ⌈e^ε⌉ + 1`, and release `GRR_g(h(j))` together with the hash seed
//! (`O(ε)` payload bits plus the seed). Aggregator: the support count of a
//! candidate value `v` is the number of users whose report equals their
//! own hash of `v`; unbiasing gives
//! `f̂(v) = (C(v)/N − 1/g) / (p − 1/g)` with `p = e^ε / (e^ε + g − 1)`.
//!
//! Decoding is `O(N)` *per candidate value*, i.e. `O(N · 2^d)` for a full
//! distribution — the property that makes OLH unusable for marginals at
//! moderate `d` (the paper's 12-hour timeout). [`Olh::estimate_all`]
//! enforces an explicit operation budget and reports partial progress.

use crate::FrequencyOracle;
use ldp_core::wire::{tag, Reader, WireError, Writer};
use ldp_core::Accumulator;
use ldp_mechanisms::{check_epsilon, GeneralizedRandomizedResponse};
use ldp_sampling::hash::{universal_hash_from_seed, PolyHash};
use rand::Rng;

/// One user's report: the hash seed and the perturbed bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OlhReport {
    /// Seed identifying the user's universal hash.
    pub seed: u64,
    /// GRR-perturbed bucket in `[0, g)`.
    pub bucket: u8,
}

/// Configuration of the OLH mechanism.
#[derive(Clone, Debug)]
pub struct Olh {
    d: u32,
    g: u64,
    grr: GeneralizedRandomizedResponse,
}

impl Olh {
    /// ε-LDP instance over `d` attributes with the optimal bucket count
    /// `g = ⌈e^ε⌉ + 1`.
    #[must_use]
    pub fn new(d: u32, eps: f64) -> Self {
        check_epsilon(eps);
        assert!((1..=40).contains(&d));
        // g = ⌈e^ε⌉ + 1, robust to e^{ln m} landing epsilon above m.
        let e = eps.exp();
        let ceil = if (e - e.round()).abs() < 1e-9 {
            e.round()
        } else {
            e.ceil()
        };
        let g = (ceil as u64 + 1).max(2);
        assert!(
            g <= 256,
            "OLH bucket count g = {g} exceeds the u8 report range; need eps ≤ ln(255)"
        );
        Olh {
            d,
            g,
            grr: GeneralizedRandomizedResponse::for_epsilon(eps, g),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Number of hash buckets `g`.
    #[must_use]
    pub fn buckets(&self) -> u64 {
        self.g
    }

    /// Client: hash, perturb, report.
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> OlhReport {
        let seed: u64 = rng.gen();
        let h = universal_hash_from_seed(seed, self.g);
        let bucket = self.grr.perturb(h.hash(row), rng) as u8;
        OlhReport { seed, bucket }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> OlhAggregator {
        OlhAggregator {
            config: self.clone(),
            reports: Vec::new(),
        }
    }
}

/// Aggregator for [`Olh`]: stores reports verbatim (decoding needs every
/// user's hash).
#[derive(Clone, Debug)]
pub struct OlhAggregator {
    config: Olh,
    reports: Vec<OlhReport>,
}

/// Result of a budgeted full-domain decode.
#[derive(Clone, Debug)]
pub enum OlhDecode {
    /// All `2^d` cells decoded within budget.
    Complete(Vec<f64>),
    /// Budget exhausted after decoding `cells_done` cells — the paper's
    /// "timed out" outcome for `d ≥ 12`.
    TimedOut {
        /// Number of cells fully decoded before exhaustion.
        cells_done: usize,
    },
}

impl OlhAggregator {
    /// Absorb one report.
    pub fn absorb(&mut self, report: OlhReport) {
        self.reports.push(report);
    }

    /// Batched ingest: one reservation plus a bulk copy of the whole
    /// report buffer, instead of a push (with its capacity check) per
    /// report. State is byte-identical to absorbing each report in
    /// order.
    pub fn absorb_batch(&mut self, reports: &[OlhReport]) {
        self.reports.extend_from_slice(reports);
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, mut other: OlhAggregator) {
        self.reports.append(&mut other.reports);
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.reports.len()
    }

    /// Precompute per-user hash objects and expose oracle queries.
    #[must_use]
    pub fn finish(self) -> OlhOracle {
        let hashes: Vec<PolyHash> = self
            .reports
            .iter()
            .map(|r| universal_hash_from_seed(r.seed, self.config.g))
            .collect();
        OlhOracle {
            config: self.config,
            reports: self.reports,
            hashes,
        }
    }
}

impl Accumulator for OlhAggregator {
    type Report = OlhReport;
    type Output = OlhOracle;

    fn absorb(&mut self, report: &OlhReport) {
        OlhAggregator::absorb(self, *report);
    }

    fn absorb_batch(&mut self, reports: &[OlhReport]) {
        OlhAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        OlhAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.reports.len() as u64
    }

    fn finalize(self) -> OlhOracle {
        self.finish()
    }

    /// The report list is canonicalized (sorted by `(seed, bucket)`)
    /// before encoding, so the bytes are identical for every ingest
    /// order and partition even though the in-memory `Vec` preserves
    /// arrival order. Decoding is insensitive to report order.
    fn to_bytes(&self) -> Vec<u8> {
        let mut reports = self.reports.clone();
        reports.sort_unstable_by_key(|r| (r.seed, r.bucket));
        let mut w = Writer::with_tag(tag::OLH);
        w.put_u32(self.config.d);
        w.put_u64(self.config.g);
        w.put_f64(self.config.grr.truth_probability());
        w.put_u64(reports.len() as u64);
        for r in &reports {
            w.put_u64(r.seed);
            w.put_u8(r.bucket);
        }
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::OLH)?;
        let d = r.get_u32()?;
        let g = r.get_u64()?;
        let ps = r.get_f64()?;
        let len = r.get_u64()? as usize;
        let mut reports = Vec::new();
        for _ in 0..len {
            let seed = r.get_u64()?;
            let bucket = r.get_u8()?;
            if u64::from(bucket) >= g {
                return Err(WireError::Invalid("OLH bucket out of range"));
            }
            reports.push(OlhReport { seed, bucket });
        }
        r.finish()?;
        if !(1..=40).contains(&d) || !(2..=256).contains(&g) {
            return Err(WireError::Invalid("OLH configuration"));
        }
        if !(ps > 1.0 / g as f64 && ps < 1.0) {
            return Err(WireError::Invalid("OLH truth probability"));
        }
        Ok(OlhAggregator {
            config: Olh {
                d,
                g,
                grr: GeneralizedRandomizedResponse::with_truth_probability(g, ps),
            },
            reports,
        })
    }
}

/// Decoded OLH oracle.
#[derive(Clone, Debug)]
pub struct OlhOracle {
    config: Olh,
    reports: Vec<OlhReport>,
    hashes: Vec<PolyHash>,
}

impl OlhOracle {
    /// Decode the entire domain with an explicit budget of
    /// `max_operations` user-cell evaluations (each costs one hash).
    #[must_use]
    pub fn estimate_all(&self, max_operations: u64) -> OlhDecode {
        let cells = 1u64 << self.config.d;
        let per_cell = self.reports.len() as u64;
        let affordable = max_operations.checked_div(per_cell).unwrap_or(cells);
        if affordable < cells {
            return OlhDecode::TimedOut {
                cells_done: affordable as usize,
            };
        }
        OlhDecode::Complete((0..cells).map(|v| self.estimate(v)).collect())
    }
}

impl FrequencyOracle for OlhOracle {
    fn d(&self) -> u32 {
        self.config.d
    }

    /// `O(N)` per query: evaluate every user's hash at `value`.
    fn estimate(&self, value: u64) -> f64 {
        let n = self.reports.len();
        assert!(n > 0, "no reports absorbed");
        let support = self
            .reports
            .iter()
            .zip(&self.hashes)
            .filter(|(r, h)| u64::from(r.bucket) == h.hash(value))
            .count();
        let g = self.config.g as f64;
        let p = self.config.grr.truth_probability();
        (support as f64 / n as f64 - 1.0 / g) / (p - 1.0 / g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle_marginal;
    use ldp_bits::Mask;
    use ldp_data::BinaryDataset;
    use rand::{rngs::StdRng, SeedableRng};

    fn run(d: u32, eps: f64, rows: &[u64], seed: u64) -> OlhOracle {
        let mech = Olh::new(d, eps);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = mech.aggregator();
        for &row in rows {
            agg.absorb(mech.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn bucket_count_follows_epsilon() {
        assert_eq!(Olh::new(4, 3f64.ln()).buckets(), 4); // ⌈3⌉ + 1
        assert_eq!(Olh::new(4, 1.0).buckets(), 4); // ⌈e⌉ + 1
    }

    #[test]
    fn estimates_point_mass() {
        let rows = vec![5u64; 60_000];
        let oracle = run(4, 3f64.ln(), &rows, 0);
        let est = oracle.estimate(5);
        assert!((est - 1.0).abs() < 0.05, "heavy cell {est}");
        let others: f64 = (0..16)
            .filter(|&v| v != 5)
            .map(|v| oracle.estimate(v))
            .sum();
        assert!(others.abs() < 0.25, "light cells total {others}");
    }

    #[test]
    fn marginal_via_oracle_is_accurate_for_small_d() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = ldp_data::synthetic::zipf_skewed(4, 1.0, 80_000, &mut rng);
        let oracle = run(4, 3f64.ln(), ds.rows(), 2);
        let beta = Mask::new(0b0011);
        let m = oracle_marginal(&oracle, beta);
        let truth = BinaryDataset::new(4, ds.rows().to_vec()).true_marginal(beta);
        let tvd: f64 = m
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tvd < 0.05, "tvd {tvd}");
    }

    #[test]
    fn decode_budget_times_out_at_large_d() {
        let rows = vec![0u64; 1000];
        let oracle = run(16, 1.1, &rows, 3);
        // Budget for 1000 cells × 1000 users = 1e6 ops, but 2^16 cells
        // need 6.5e7 — must time out.
        match oracle.estimate_all(1_000_000) {
            OlhDecode::TimedOut { cells_done } => assert_eq!(cells_done, 1000),
            OlhDecode::Complete(_) => panic!("expected timeout"),
        }
    }

    #[test]
    fn accumulator_bytes_are_canonical_across_ingest_orders() {
        let mech = Olh::new(6, 1.1);
        let mut rng = StdRng::seed_from_u64(9);
        let reports: Vec<OlhReport> = (0..500u64).map(|v| mech.encode(v % 64, &mut rng)).collect();

        let mut forward = mech.aggregator();
        let mut backward = mech.aggregator();
        for &r in &reports {
            forward.absorb(r);
        }
        for &r in reports.iter().rev() {
            backward.absorb(r);
        }
        // In-memory order differs, canonical bytes do not.
        let bytes = Accumulator::to_bytes(&forward);
        assert_eq!(bytes, Accumulator::to_bytes(&backward));
        let back = <OlhAggregator as Accumulator>::from_bytes(&bytes).unwrap();
        assert_eq!(Accumulator::to_bytes(&back), bytes);
        assert_eq!(
            back.finalize().estimate(3).to_bits(),
            forward.finish().estimate(3).to_bits()
        );
    }

    #[test]
    fn decode_completes_within_budget() {
        let rows = vec![3u64; 500];
        let oracle = run(3, 1.1, &rows, 4);
        match oracle.estimate_all(10_000_000) {
            OlhDecode::Complete(dist) => {
                assert_eq!(dist.len(), 8);
                assert!(dist[3] > 0.8);
            }
            OlhDecode::TimedOut { .. } => panic!("unexpected timeout"),
        }
    }
}
