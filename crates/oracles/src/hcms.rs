//! `InpHTCMS` — the Apple-style Hadamard Count-Mean Sketch.
//!
//! A sketch of `g` rows × `w` buckets, with a 3-wise independent hash per
//! row. Client: pick a row `l` uniformly, hash the input to a bucket,
//! take the one-hot vector of the bucket, sample **one** Hadamard
//! coefficient `m ∈ [w]` of it — its scaled value is
//! `(−1)^{⟨m, h_l(j)⟩}` — and release it through ε-RR. Here the Hadamard
//! transform reduces *communication* (one bit instead of `w`), "at the
//! expense of a slight increase in error, in contrast to our results
//! which use Hadamard to reduce both" (Appendix B.2).
//!
//! Aggregator: per row, average unbiased coefficient reports, pin the
//! constant coefficient to 1, invert the transform to get the row's
//! bucket distribution `p_l`, and estimate
//! `f̂(v) = mean_l (w/(w−1)) · (p_l[h_l(v)] − 1/w)` (count-*mean* debias).

use crate::FrequencyOracle;
use ldp_bits::pm_one;
use ldp_core::wire::{tag, Reader, WireError, Writer};
use ldp_core::Accumulator;
use ldp_mechanisms::{check_epsilon, BinaryRandomizedResponse};
use ldp_sampling::hash::{splitmix64, PolyHash};
use ldp_transform::fwht;
use rand::Rng;

/// One user's report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HcmsReport {
    /// Which sketch row (hash function) the user sampled.
    pub row: u8,
    /// Which Hadamard coefficient of the hashed one-hot vector.
    pub coefficient: u16,
    /// The ε-RR output for the scaled coefficient.
    pub sign_positive: bool,
}

/// Configuration of the Hadamard count-mean sketch.
#[derive(Clone, Debug)]
pub struct HadamardCms {
    d: u32,
    g: usize,
    w: usize,
    rr: BinaryRandomizedResponse,
    hashes: Vec<PolyHash>,
}

impl HadamardCms {
    /// ε-LDP instance with `g` hash rows of width `w` (a power of two).
    /// The paper's Figure 10 setting is `g = 5`, `w = 256`.
    #[must_use]
    pub fn new(d: u32, eps: f64, g: usize, w: usize, family_seed: u64) -> Self {
        check_epsilon(eps);
        assert!((1..=255).contains(&g), "1 ≤ g ≤ 255 hash rows");
        assert!(
            w.is_power_of_two() && w >= 2,
            "width must be a power of two"
        );
        let hashes = (0..g)
            .map(|l| PolyHash::from_seed(splitmix64(family_seed ^ (l as u64) << 17), 3, w as u64))
            .collect();
        HadamardCms {
            d,
            g,
            w,
            rr: BinaryRandomizedResponse::for_epsilon(eps),
            hashes,
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Number of hash rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.g
    }

    /// Sketch width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Client: sample (row, coefficient), release the perturbed sign.
    pub fn encode<R: Rng + ?Sized>(&self, value: u64, rng: &mut R) -> HcmsReport {
        let l = rng.gen_range(0..self.g);
        let bucket = self.hashes[l].hash(value);
        let m = rng.gen_range(0..self.w) as u64;
        let sign = pm_one(m, bucket);
        HcmsReport {
            row: l as u8,
            coefficient: m as u16,
            sign_positive: self.rr.perturb_sign(sign, rng) > 0.0,
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> HadamardCmsAggregator {
        HadamardCmsAggregator {
            config: self.clone(),
            sums: vec![vec![0i64; self.w]; self.g],
            counts: vec![vec![0u64; self.w]; self.g],
        }
    }
}

/// Aggregator for [`HadamardCms`]: per-(row, coefficient) sign sums.
#[derive(Clone, Debug)]
pub struct HadamardCmsAggregator {
    config: HadamardCms,
    sums: Vec<Vec<i64>>,
    counts: Vec<Vec<u64>>,
}

impl HadamardCmsAggregator {
    /// Absorb one report.
    pub fn absorb(&mut self, report: HcmsReport) {
        let (l, m) = (report.row as usize, report.coefficient as usize);
        self.sums[l][m] += if report.sign_positive { 1 } else { -1 };
        self.counts[l][m] += 1;
    }

    /// Batched ingest: row-grouped sketch updates with lane-accumulated
    /// `i64` sign sums — each report's sampled row is borrowed once
    /// before the coefficient lanes are updated. State is byte-identical
    /// to absorbing each report in order.
    pub fn absorb_batch(&mut self, reports: &[HcmsReport]) {
        let sums = &mut self.sums[..];
        let counts = &mut self.counts[..];
        for report in reports {
            let (l, m) = (report.row as usize, report.coefficient as usize);
            sums[l][m] += if report.sign_positive { 1 } else { -1 };
            counts[l][m] += 1;
        }
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: HadamardCmsAggregator) {
        for (ra, rb) in self.sums.iter_mut().zip(other.sums) {
            for (a, b) in ra.iter_mut().zip(rb) {
                *a += b;
            }
        }
        for (ra, rb) in self.counts.iter_mut().zip(other.counts) {
            for (a, b) in ra.iter_mut().zip(rb) {
                *a += b;
            }
        }
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.counts
            .iter()
            .map(|r| r.iter().map(|&c| c as usize).sum::<usize>())
            .sum()
    }

    /// Invert each row's transform into a bucket distribution.
    #[must_use]
    pub fn finish(self) -> HadamardCmsOracle {
        let w = self.config.w;
        let rows: Vec<Vec<f64>> = self
            .sums
            .iter()
            .zip(&self.counts)
            .map(|(sums, counts)| {
                let mut coeffs = vec![0.0f64; w];
                coeffs[0] = 1.0; // constant coefficient known exactly
                for m in 1..w {
                    if counts[m] > 0 {
                        coeffs[m] = self
                            .config
                            .rr
                            .unbias_sign(sums[m] as f64 / counts[m] as f64);
                    }
                }
                fwht(&mut coeffs);
                let inv = 1.0 / w as f64;
                coeffs.iter_mut().for_each(|v| *v *= inv);
                coeffs
            })
            .collect();
        HadamardCmsOracle {
            config: self.config,
            rows,
        }
    }
}

impl Accumulator for HadamardCmsAggregator {
    type Report = HcmsReport;
    type Output = HadamardCmsOracle;

    fn absorb(&mut self, report: &HcmsReport) {
        HadamardCmsAggregator::absorb(self, *report);
    }

    fn absorb_batch(&mut self, reports: &[HcmsReport]) {
        HadamardCmsAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        HadamardCmsAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.n() as u64
    }

    fn finalize(self) -> HadamardCmsOracle {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::HCMS);
        w.put_u32(self.config.d);
        w.put_u64(self.config.g as u64);
        w.put_u64(self.config.w as u64);
        w.put_f64(self.config.rr.keep_probability());
        for hash in &self.config.hashes {
            w.put_u64_slice(hash.coefficients());
        }
        for row in &self.sums {
            w.put_i64_slice(row);
        }
        for row in &self.counts {
            w.put_u64_slice(row);
        }
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::HCMS)?;
        let d = r.get_u32()?;
        let g = r.get_u64()? as usize;
        let w = r.get_u64()? as usize;
        let p = r.get_f64()?;
        if !(1..=255).contains(&g) || !w.is_power_of_two() || w < 2 {
            return Err(WireError::Invalid("HCMS sketch shape"));
        }
        if !(p > 0.5 && p < 1.0) {
            return Err(WireError::Invalid("HCMS keep probability"));
        }
        let hashes = (0..g)
            .map(|_| {
                let coeffs = r.get_u64_vec()?;
                if coeffs.is_empty() || coeffs.iter().any(|&c| c >= ldp_sampling::hash::MERSENNE_P)
                {
                    return Err(WireError::Invalid("HCMS hash coefficients"));
                }
                Ok(PolyHash::from_coefficients(coeffs, w as u64))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let sums = (0..g)
            .map(|_| r.get_i64_vec())
            .collect::<Result<Vec<_>, _>>()?;
        let counts = (0..g)
            .map(|_| r.get_u64_vec())
            .collect::<Result<Vec<_>, _>>()?;
        r.finish()?;
        if sums.iter().any(|row| row.len() != w) || counts.iter().any(|row| row.len() != w) {
            return Err(WireError::Invalid("HCMS row length"));
        }
        Ok(HadamardCmsAggregator {
            config: HadamardCms {
                d,
                g,
                w,
                rr: BinaryRandomizedResponse::with_keep_probability(p),
                hashes,
            },
            sums,
            counts,
        })
    }
}

/// Decoded Hadamard count-mean sketch.
#[derive(Clone, Debug)]
pub struct HadamardCmsOracle {
    config: HadamardCms,
    /// Per-row estimated bucket distributions.
    rows: Vec<Vec<f64>>,
}

impl FrequencyOracle for HadamardCmsOracle {
    fn d(&self) -> u32 {
        self.config.d
    }

    /// `O(g)` per query.
    fn estimate(&self, value: u64) -> f64 {
        let w = self.config.w as f64;
        let debias = w / (w - 1.0);
        let mean: f64 = self
            .rows
            .iter()
            .zip(&self.config.hashes)
            .map(|(row, h)| debias * (row[h.hash(value) as usize] - 1.0 / w))
            .sum::<f64>()
            / self.rows.len() as f64;
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle_marginal;
    use ldp_bits::Mask;
    use rand::{rngs::StdRng, SeedableRng};

    fn run(config: &HadamardCms, rows: &[u64], seed: u64) -> HadamardCmsOracle {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = config.aggregator();
        for &row in rows {
            agg.absorb(config.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn row_distributions_sum_to_one() {
        let config = HadamardCms::new(8, 1.1, 5, 256, 42);
        let rows = vec![17u64; 20_000];
        let oracle = run(&config, &rows, 0);
        for (l, row) in oracle.rows.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {l} sums to {s}");
        }
    }

    #[test]
    fn recovers_heavy_hitter() {
        let config = HadamardCms::new(10, 3f64.ln(), 5, 256, 7);
        // 60% of users hold value 123; rest spread thinly.
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<u64> = (0..100_000)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    123
                } else {
                    rng.gen_range(0..1024)
                }
            })
            .collect();
        let oracle = run(&config, &rows, 2);
        let est = oracle.estimate(123);
        assert!((est - 0.6).abs() < 0.1, "heavy hitter estimate {est}");
    }

    #[test]
    fn light_cells_are_noisier_than_heavy() {
        // The paper's observation: HCMS "is not tuned for low-frequency
        // items". Check the heavy cell is well separated from the noise
        // floor.
        let config = HadamardCms::new(8, 1.1, 5, 256, 9);
        let rows = vec![42u64; 80_000];
        let oracle = run(&config, &rows, 3);
        let heavy = oracle.estimate(42);
        let max_light = (0..256u64)
            .filter(|&v| v != 42)
            .map(|v| oracle.estimate(v))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(heavy > 0.8, "heavy {heavy}");
        assert!(heavy > max_light + 0.3, "separation {heavy} vs {max_light}");
    }

    #[test]
    fn marginal_via_oracle_runs() {
        let config = HadamardCms::new(6, 1.1, 5, 128, 11);
        let mut rng = StdRng::seed_from_u64(4);
        let ds = ldp_data::synthetic::zipf_skewed(6, 1.2, 60_000, &mut rng);
        let oracle = run(&config, ds.rows(), 5);
        let m = oracle_marginal(&oracle, Mask::new(0b11));
        assert_eq!(m.len(), 4);
        // Estimates are unbiased, so the total is near 1.
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 0.3, "{m:?}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_width() {
        let _ = HadamardCms::new(4, 1.0, 5, 100, 0);
    }

    #[test]
    fn accumulator_bytes_are_partition_invariant() {
        let config = HadamardCms::new(8, 1.1, 3, 64, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let reports: Vec<HcmsReport> = (0..2_000u64)
            .map(|v| config.encode(v % 97, &mut rng))
            .collect();

        let mut serial = config.aggregator();
        for &r in &reports {
            serial.absorb(r);
        }
        // Interleaved split, parts merged in the opposite order.
        let mut a = config.aggregator();
        let mut b = config.aggregator();
        for (i, &r) in reports.iter().enumerate() {
            if i % 3 == 0 {
                a.absorb(r);
            } else {
                b.absorb(r);
            }
        }
        Accumulator::merge(&mut b, a);

        let bytes = Accumulator::to_bytes(&serial);
        assert_eq!(bytes, Accumulator::to_bytes(&b));
        let back = <HadamardCmsAggregator as Accumulator>::from_bytes(&bytes).unwrap();
        assert_eq!(Accumulator::to_bytes(&back), bytes);
        assert_eq!(back.report_count(), 2_000);
        // Rehydrated sketch decodes identically.
        let (x, y) = (back.finalize(), serial.finish());
        for v in 0..128u64 {
            assert_eq!(x.estimate(v).to_bits(), y.estimate(v).to_bits());
        }
    }
}
