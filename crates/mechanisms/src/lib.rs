#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Basic local-differential-privacy primitives (§3.1 of the paper).
//!
//! These are the building blocks composed by the marginal mechanisms in
//! `ldp-core`:
//!
//! * [`BinaryRandomizedResponse`] — classic 1-bit RR (Warner 1965);
//! * [`GeneralizedRandomizedResponse`] — the paper's *Preferential
//!   Sampling* (a.k.a. GRR / Direct Encoding): report one index out of a
//!   domain of `m`, truthfully with probability `p_s`;
//! * [`UnaryEncoding`] — *Parallel Randomized Response* (BasicRAPPOR):
//!   independent RR on every position of a one-hot vector, with either the
//!   paper's symmetric `ε/2` probabilities or Wang et al.'s optimized
//!   (OUE) probabilities;
//! * [`budget`] — ε-splitting for budget-sharing compositions (InpEM);
//! * [`Channel`] — an explicit conditional-probability matrix with an
//!   LDP-ratio checker, used by tests to *prove* each primitive's ε;
//! * [`theory`] — variance formulas and the Theorem 4.2 master tail
//!   bound, used by the statistical tests and the Table 2 harness.

pub mod budget;
mod channel;
mod grr;
mod rr;
pub mod theory;
mod unary;

pub use channel::Channel;
pub use grr::GeneralizedRandomizedResponse;
pub use rr::BinaryRandomizedResponse;
pub use unary::{UnaryEncoding, UnaryFlavor};

/// Validate a privacy parameter: finite and strictly positive.
#[inline]
pub fn check_epsilon(eps: f64) {
    assert!(
        eps.is_finite() && eps > 0.0,
        "privacy parameter ε must be positive and finite, got {eps}"
    );
}
