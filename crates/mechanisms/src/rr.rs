//! One-bit randomized response (Warner 1965), the canonical LDP primitive.

use crate::{check_epsilon, Channel};
use rand::Rng;

/// Randomized response on a single bit or sign: report the truth with
/// probability `p > 1/2`, the opposite otherwise. Satisfies ε-LDP with
/// `e^ε = p / (1 − p)` (§3.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinaryRandomizedResponse {
    p: f64,
}

impl BinaryRandomizedResponse {
    /// The ε-LDP instance: `p = e^ε / (1 + e^ε)`.
    #[must_use]
    pub fn for_epsilon(eps: f64) -> Self {
        check_epsilon(eps);
        BinaryRandomizedResponse {
            p: eps.exp() / (1.0 + eps.exp()),
        }
    }

    /// Construct directly from a keep-probability `p ∈ (1/2, 1)`.
    #[must_use]
    pub fn with_keep_probability(p: f64) -> Self {
        assert!(p > 0.5 && p < 1.0, "keep probability must be in (1/2, 1)");
        BinaryRandomizedResponse { p }
    }

    /// Probability of reporting the truth.
    #[must_use]
    pub fn keep_probability(self) -> f64 {
        self.p
    }

    /// The ε this instance provides.
    #[must_use]
    pub fn epsilon(self) -> f64 {
        (self.p / (1.0 - self.p)).ln()
    }

    /// Perturb a bit.
    #[inline]
    pub fn perturb_bit<R: Rng + ?Sized>(self, bit: bool, rng: &mut R) -> bool {
        if rng.gen_bool(self.p) {
            bit
        } else {
            !bit
        }
    }

    /// Perturb a sign in `{−1, +1}`.
    #[inline]
    pub fn perturb_sign<R: Rng + ?Sized>(self, sign: f64, rng: &mut R) -> f64 {
        debug_assert!(sign == 1.0 || sign == -1.0);
        if rng.gen_bool(self.p) {
            sign
        } else {
            -sign
        }
    }

    /// Unbiased estimate of a `{−1,+1}` value from one perturbed report:
    /// `report / (2p − 1)` (the construction in the proof of Theorem 4.2).
    #[inline]
    #[must_use]
    pub fn unbias_sign(self, report: f64) -> f64 {
        report / (2.0 * self.p - 1.0)
    }

    /// Unbiased estimate of a population mean of bits, from the observed
    /// fraction of 1-reports: `(observed − (1 − p)) / (2p − 1)`.
    #[inline]
    #[must_use]
    pub fn unbias_bit_mean(self, observed: f64) -> f64 {
        (observed - (1.0 - self.p)) / (2.0 * self.p - 1.0)
    }

    /// Per-report variance of [`BinaryRandomizedResponse::unbias_sign`]
    /// (worst case over the true sign): `1/(2p−1)² − E[x]² ≤ 1/(2p−1)²`.
    #[must_use]
    pub fn sign_estimator_variance_bound(self) -> f64 {
        let s = 2.0 * self.p - 1.0;
        1.0 / (s * s)
    }

    /// The explicit conditional-probability matrix (inputs/outputs 0,1).
    #[must_use]
    pub fn channel(self) -> Channel {
        Channel::new(vec![vec![self.p, 1.0 - self.p], vec![1.0 - self.p, self.p]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn epsilon_roundtrip() {
        for eps in [0.2, 0.5, 1.1, 2.0] {
            let rr = BinaryRandomizedResponse::for_epsilon(eps);
            assert!((rr.epsilon() - eps).abs() < 1e-12);
        }
    }

    #[test]
    fn channel_is_exactly_eps_ldp() {
        for eps in [0.2, 0.7, 1.1, 3.0] {
            let rr = BinaryRandomizedResponse::for_epsilon(eps);
            assert!((rr.channel().ldp_epsilon() - eps).abs() < 1e-9);
        }
    }

    #[test]
    fn sign_estimator_is_unbiased() {
        let rr = BinaryRandomizedResponse::for_epsilon(1.1);
        let mut rng = StdRng::seed_from_u64(0);
        let n = 400_000;
        for truth in [-1.0, 1.0] {
            let mean: f64 = (0..n)
                .map(|_| rr.unbias_sign(rr.perturb_sign(truth, &mut rng)))
                .sum::<f64>()
                / f64::from(n);
            assert!((mean - truth).abs() < 0.02, "truth {truth}: {mean}");
        }
    }

    #[test]
    fn bit_mean_estimator_is_unbiased() {
        let rr = BinaryRandomizedResponse::for_epsilon(0.8);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 400_000usize;
        let true_mean = 0.3;
        let ones = (0..n)
            .filter(|&i| rr.perturb_bit(i < (true_mean * n as f64) as usize, &mut rng))
            .count();
        let est = rr.unbias_bit_mean(ones as f64 / n as f64);
        assert!((est - true_mean).abs() < 0.01, "{est}");
    }

    #[test]
    fn empirical_variance_within_bound() {
        let rr = BinaryRandomizedResponse::for_epsilon(1.1);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| rr.unbias_sign(rr.perturb_sign(1.0, &mut rng)))
            .collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f64::from(n);
        assert!(var <= rr.sign_estimator_variance_bound() + 0.05);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_epsilon() {
        let _ = BinaryRandomizedResponse::for_epsilon(0.0);
    }
}
