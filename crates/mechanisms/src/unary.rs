//! Parallel randomized response on one-hot vectors (BasicRAPPOR / unary
//! encoding), with both the paper's symmetric probabilities and Wang et
//! al.'s optimized (OUE) probabilities.

use crate::{check_epsilon, Channel};
use rand::Rng;

/// Which probability pair to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryFlavor {
    /// The paper's Fact 3.2 construction: independent `ε/2`-RR on every
    /// bit, i.e. `p₁ = e^{ε/2}/(1+e^{ε/2})`, `p₀ = 1 − p₁`.
    Symmetric,
    /// Wang et al. (USENIX Security 2017): keep the sole 1 with
    /// probability `1/2`, report each 0 as 1 with probability
    /// `1/(e^ε + 1)` — slightly lower estimator variance; the paper's
    /// experiments adopt these probabilities (§5.1).
    Optimized,
}

/// Perturbation of a sparse one-hot vector by independent per-bit
/// randomized response. `p1` = P(report 1 | bit is 1); `p0` = P(report 1 |
/// bit is 0). Satisfies ε-LDP on one-hot inputs (Fact 3.2): only the two
/// differing positions contribute to the Definition 3.1 ratio, giving
/// `(p1/p0) · ((1−p0)/(1−p1)) = e^ε` for both flavors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnaryEncoding {
    p1: f64,
    p0: f64,
}

impl UnaryEncoding {
    /// The ε-LDP instance with the chosen probability flavor.
    #[must_use]
    pub fn for_epsilon(eps: f64, flavor: UnaryFlavor) -> Self {
        check_epsilon(eps);
        match flavor {
            UnaryFlavor::Symmetric => {
                let p1 = (eps / 2.0).exp() / (1.0 + (eps / 2.0).exp());
                UnaryEncoding { p1, p0: 1.0 - p1 }
            }
            UnaryFlavor::Optimized => UnaryEncoding {
                p1: 0.5,
                p0: 1.0 / (eps.exp() + 1.0),
            },
        }
    }

    /// Construct directly from the two report probabilities (used when
    /// rehydrating a serialized aggregator; `p1 > p0` so the estimator
    /// denominator is positive).
    #[must_use]
    pub fn with_probabilities(p1: f64, p0: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p1) && (0.0..=1.0).contains(&p0) && p1 > p0,
            "need probabilities with p1 > p0, got p1={p1}, p0={p0}"
        );
        UnaryEncoding { p1, p0 }
    }

    /// P(report 1 | true bit 1).
    #[must_use]
    pub fn p1(self) -> f64 {
        self.p1
    }

    /// P(report 1 | true bit 0).
    #[must_use]
    pub fn p0(self) -> f64 {
        self.p0
    }

    /// The ε this instance provides on one-hot inputs.
    #[must_use]
    pub fn epsilon(self) -> f64 {
        ((self.p1 / self.p0) * ((1.0 - self.p0) / (1.0 - self.p1))).ln()
    }

    /// Perturb one bit of the one-hot vector.
    #[inline]
    pub fn perturb_bit<R: Rng + ?Sized>(self, bit: bool, rng: &mut R) -> bool {
        rng.gen_bool(if bit { self.p1 } else { self.p0 })
    }

    /// Perturb a whole one-hot vector given the position of its single 1,
    /// returning the set of positions reporting 1. `O(m)`.
    pub fn perturb_onehot<R: Rng + ?Sized>(
        self,
        m: usize,
        one_at: usize,
        rng: &mut R,
    ) -> Vec<bool> {
        assert!(one_at < m);
        (0..m).map(|i| self.perturb_bit(i == one_at, rng)).collect()
    }

    /// Unbiased estimate of the population frequency of 1s at a position,
    /// from the observed fraction of 1-reports:
    /// `f̂ = (F − p₀)/(p₁ − p₀)`.
    #[inline]
    #[must_use]
    pub fn unbias_frequency(self, observed: f64) -> f64 {
        (observed - self.p0) / (self.p1 - self.p0)
    }

    /// Per-user variance of the per-cell unbiased estimator at true
    /// frequency `f` (Wang et al. eq. (7) shape):
    /// `Var = [f·p₁(1−p₁) + (1−f)·p₀(1−p₀)] / (p₁ − p₀)²`.
    #[must_use]
    pub fn estimator_variance(self, f: f64) -> f64 {
        let num = f * self.p1 * (1.0 - self.p1) + (1.0 - f) * self.p0 * (1.0 - self.p0);
        let den = (self.p1 - self.p0) * (self.p1 - self.p0);
        num / den
    }

    /// The channel of a *pair* of positions under adjacent one-hot inputs
    /// (the 1 at the first vs the second position) — the part of the
    /// product channel that does not cancel in the LDP ratio. Inputs:
    /// {1 at pos A, 1 at pos B}; outputs: 2-bit patterns (bitA, bitB).
    #[must_use]
    pub fn adjacent_pair_channel(self) -> Channel {
        let rows = [(true, false), (false, true)]
            .iter()
            .map(|&(a, b)| {
                let pa = if a { self.p1 } else { self.p0 };
                let pb = if b { self.p1 } else { self.p0 };
                vec![
                    (1.0 - pa) * (1.0 - pb),
                    pa * (1.0 - pb),
                    (1.0 - pa) * pb,
                    pa * pb,
                ]
            })
            .collect();
        Channel::new(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn both_flavors_achieve_epsilon() {
        for eps in [0.4, 1.1, 2.0] {
            for flavor in [UnaryFlavor::Symmetric, UnaryFlavor::Optimized] {
                let ue = UnaryEncoding::for_epsilon(eps, flavor);
                assert!((ue.epsilon() - eps).abs() < 1e-9, "{flavor:?} {eps}");
                // The only non-cancelling part of the product channel
                // achieves exactly ε.
                assert!((ue.adjacent_pair_channel().ldp_epsilon() - eps).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn optimized_has_lower_variance_at_low_frequency() {
        let eps = 1.1;
        let sym = UnaryEncoding::for_epsilon(eps, UnaryFlavor::Symmetric);
        let oue = UnaryEncoding::for_epsilon(eps, UnaryFlavor::Optimized);
        // At sparse cells (f ≈ 0), OUE's variance is no worse.
        assert!(oue.estimator_variance(0.01) <= sym.estimator_variance(0.01) + 1e-12);
    }

    #[test]
    fn onehot_perturbation_statistics() {
        let ue = UnaryEncoding::for_epsilon(1.1, UnaryFlavor::Optimized);
        let mut rng = StdRng::seed_from_u64(0);
        let (m, one_at, n) = (8usize, 3usize, 100_000usize);
        let mut ones = vec![0u64; m];
        for _ in 0..n {
            for (i, bit) in ue.perturb_onehot(m, one_at, &mut rng).iter().enumerate() {
                ones[i] += u64::from(*bit);
            }
        }
        for (i, &c) in ones.iter().enumerate() {
            let frac = c as f64 / n as f64;
            let expect = if i == one_at { ue.p1() } else { ue.p0() };
            assert!((frac - expect).abs() < 0.01, "pos {i}: {frac} vs {expect}");
        }
    }

    #[test]
    fn frequency_estimator_is_unbiased() {
        let ue = UnaryEncoding::for_epsilon(0.8, UnaryFlavor::Symmetric);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 300_000usize;
        let truth = 0.2;
        let mut ones = 0u64;
        for i in 0..n {
            let bit = (i as f64 / n as f64) < truth;
            ones += u64::from(ue.perturb_bit(bit, &mut rng));
        }
        let est = ue.unbias_frequency(ones as f64 / n as f64);
        assert!((est - truth).abs() < 0.01, "{est}");
    }
}
