//! Generalized randomized response over an `m`-ary domain — the paper's
//! *Preferential Sampling* (PS), a.k.a. Direct Encoding.

use crate::{check_epsilon, Channel};
use rand::Rng;

/// Report one value from `[0, m)`: the truth with probability
/// `p_s = e^ε / (e^ε + m − 1)`, each specific lie with probability
/// `(1 − p_s)/(m − 1)`. Satisfies ε-LDP with
/// `e^ε = p_s/(1 − p_s) · (m − 1)` (Fact 3.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneralizedRandomizedResponse {
    m: u64,
    ps: f64,
}

impl GeneralizedRandomizedResponse {
    /// The ε-LDP instance over a domain of `m ≥ 2` values:
    /// `p_s = (1 + (m−1) e^{−ε})^{−1}`.
    #[must_use]
    pub fn for_epsilon(eps: f64, m: u64) -> Self {
        check_epsilon(eps);
        assert!(m >= 2, "domain must have at least two values");
        let ps = 1.0 / (1.0 + (m - 1) as f64 * (-eps).exp());
        GeneralizedRandomizedResponse { m, ps }
    }

    /// Construct directly from the domain size and truth probability
    /// (used when rehydrating a serialized aggregator; `ps > 1/m` so the
    /// estimator denominator is positive).
    #[must_use]
    pub fn with_truth_probability(m: u64, ps: f64) -> Self {
        assert!(m >= 2, "domain must have at least two values");
        assert!(
            ps > 1.0 / m as f64 && ps < 1.0,
            "truth probability must lie in (1/m, 1), got {ps}"
        );
        GeneralizedRandomizedResponse { m, ps }
    }

    /// Domain size.
    #[must_use]
    pub fn domain(self) -> u64 {
        self.m
    }

    /// Probability of reporting the truth.
    #[must_use]
    pub fn truth_probability(self) -> f64 {
        self.ps
    }

    /// Probability of reporting one *specific* incorrect value.
    #[must_use]
    pub fn lie_probability(self) -> f64 {
        (1.0 - self.ps) / (self.m - 1) as f64
    }

    /// The ε this instance provides.
    #[must_use]
    pub fn epsilon(self) -> f64 {
        (self.ps / (1.0 - self.ps) * (self.m - 1) as f64).ln()
    }

    /// Perturb a true value `j ∈ [0, m)`.
    #[inline]
    pub fn perturb<R: Rng + ?Sized>(self, j: u64, rng: &mut R) -> u64 {
        debug_assert!(j < self.m);
        if rng.gen_bool(self.ps) {
            j
        } else {
            // Uniform over the m−1 other values.
            let r = rng.gen_range(0..self.m - 1);
            if r >= j {
                r + 1
            } else {
                r
            }
        }
    }

    /// Unbiased frequency estimate for value `j` given the observed report
    /// fraction `F_j` (§4.1):
    ///
    /// `f̂_j = (D·F_j + p_s − 1) / (D·p_s + p_s − 1)` with `D = m − 1`.
    #[inline]
    #[must_use]
    pub fn unbias_frequency(self, observed: f64) -> f64 {
        let d = (self.m - 1) as f64;
        (d * observed + self.ps - 1.0) / (d * self.ps + self.ps - 1.0)
    }

    /// Unbias a whole histogram of observed report fractions.
    #[must_use]
    pub fn unbias_histogram(self, observed: &[f64]) -> Vec<f64> {
        assert_eq!(observed.len() as u64, self.m);
        observed.iter().map(|&f| self.unbias_frequency(f)).collect()
    }

    /// The explicit channel matrix (m inputs × m outputs).
    #[must_use]
    pub fn channel(self) -> Channel {
        let m = self.m as usize;
        let q = self.lie_probability();
        let probs = (0..m)
            .map(|x| (0..m).map(|y| if x == y { self.ps } else { q }).collect())
            .collect();
        Channel::new(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn epsilon_roundtrip() {
        for m in [2u64, 4, 16, 1 << 12] {
            for eps in [0.3, 1.1, 2.5] {
                let g = GeneralizedRandomizedResponse::for_epsilon(eps, m);
                assert!((g.epsilon() - eps).abs() < 1e-9, "m={m} eps={eps}");
            }
        }
    }

    #[test]
    fn m2_reduces_to_binary_rr() {
        // §3.1: "when m = 2 this mechanism is equivalent to 1-bit RR".
        let eps = 1.1;
        let g = GeneralizedRandomizedResponse::for_epsilon(eps, 2);
        let rr = crate::BinaryRandomizedResponse::for_epsilon(eps);
        assert!((g.truth_probability() - rr.keep_probability()).abs() < 1e-12);
    }

    #[test]
    fn channel_is_exactly_eps_ldp() {
        for m in [2u64, 5, 32] {
            for eps in [0.4, 1.1] {
                let g = GeneralizedRandomizedResponse::for_epsilon(eps, m);
                assert!((g.channel().ldp_epsilon() - eps).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn perturb_outputs_in_domain_and_truthful_at_rate_ps() {
        let g = GeneralizedRandomizedResponse::for_epsilon(1.1, 8);
        let mut rng = StdRng::seed_from_u64(0);
        let n = 300_000;
        let truth = 5u64;
        let mut kept = 0u64;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            let r = g.perturb(truth, &mut rng);
            assert!(r < 8);
            counts[r as usize] += 1;
            if r == truth {
                kept += 1;
            }
        }
        let rate = kept as f64 / f64::from(n);
        assert!((rate - g.truth_probability()).abs() < 0.005, "{rate}");
        // Each lie equally likely.
        let q = g.lie_probability();
        for (j, &c) in counts.iter().enumerate() {
            if j as u64 != truth {
                assert!((c as f64 / f64::from(n) - q).abs() < 0.005, "lie {j}");
            }
        }
    }

    #[test]
    fn histogram_estimator_is_unbiased() {
        let g = GeneralizedRandomizedResponse::for_epsilon(1.1, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let truth_freqs = [0.5, 0.25, 0.15, 0.1];
        let n = 500_000usize;
        let mut observed = [0.0f64; 4];
        for i in 0..n {
            // Deterministic composition of the true population.
            let u = i as f64 / n as f64;
            let j = match u {
                x if x < 0.5 => 0,
                x if x < 0.75 => 1,
                x if x < 0.9 => 2,
                _ => 3,
            };
            observed[g.perturb(j, &mut rng) as usize] += 1.0;
        }
        for o in observed.iter_mut() {
            *o /= n as f64;
        }
        let est = g.unbias_histogram(&observed);
        for (e, t) in est.iter().zip(&truth_freqs) {
            assert!((e - t).abs() < 0.01, "{e} vs {t}");
        }
        // Estimates sum to 1 exactly (linearity of the unbiasing).
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_trivial_domain() {
        let _ = GeneralizedRandomizedResponse::for_epsilon(1.0, 1);
    }
}
