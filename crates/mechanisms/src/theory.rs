//! Theoretical bounds: the Theorem 4.2 master tail bound and the Table 2
//! error/communication summary, used by statistical tests (empirical error
//! must respect the theory) and by the `table2_summary` harness.

use crate::check_epsilon;

/// The Theorem 4.2 tail bound: for users sampling an element with
/// probability `ps` and applying randomized response with keep-probability
/// `pr` to a `{−1,+1}` value,
///
/// `Pr[ |Σ(t*_i − t_i)| / N ≥ c ] ≤ 2·exp( − N c² p_s (2p_r − 1) /
///   (2 p_r (2(1−p_r)/(2p_r−1) + c/3)) )`.
#[must_use]
pub fn master_tail_bound(n: usize, ps: f64, pr: f64, c: f64) -> f64 {
    assert!(ps > 0.0 && ps <= 1.0, "sampling probability in (0,1]");
    assert!(pr > 0.5 && pr < 1.0, "RR keep probability in (1/2,1)");
    assert!(c > 0.0);
    let s = 2.0 * pr - 1.0;
    let denom = 2.0 * pr * (2.0 * (1.0 - pr) / s + c / 3.0);
    (2.0 * (-((n as f64) * c * c * ps * s) / denom).exp()).min(1.0)
}

/// Invert [`master_tail_bound`] (numerically) for the error level `c`
/// such that the failure probability is at most `delta`.
#[must_use]
pub fn master_error_at_confidence(n: usize, ps: f64, pr: f64, delta: f64) -> f64 {
    assert!((0.0..1.0).contains(&delta) && delta > 0.0);
    // Monotone in c: bisect on [1e-12, hi].
    let mut lo = 1e-12f64;
    let mut hi = 1.0f64;
    while master_tail_bound(n, ps, pr, hi) > delta {
        hi *= 2.0;
        if hi > 1e12 {
            return f64::INFINITY;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if master_tail_bound(n, ps, pr, mid) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// The number of Hadamard coefficients sampled by `InpHT`:
/// `T = Σ_{ℓ=1}^{k} C(d, ℓ)`.
#[must_use]
pub fn coefficient_count(d: u32, k: u32) -> u64 {
    (1..=k.min(d))
        .map(|l| ldp_binomial(u64::from(d), u64::from(l)))
        .sum()
}

// A tiny local binomial to avoid a dependency cycle with ldp-bits.
fn ldp_binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r: u128 = 1;
    for i in 0..k {
        r = r * u128::from(n - i) / u128::from(i + 1);
    }
    r as u64
}

/// Approximate variance of one estimated scaled Hadamard coefficient
/// under `InpHT` with `N` users: each user reports a given coefficient
/// with probability `1/T`, and the per-report unbiased value `±1/(2p−1)`
/// has variance at most `1/(2p−1)²`, so
/// `Var[ĉ_α] ≈ T / (N (2p_r − 1)²)`.
#[must_use]
pub fn inpht_coefficient_variance(d: u32, k: u32, eps: f64, n: usize) -> f64 {
    check_epsilon(eps);
    assert!(n > 0);
    let t = coefficient_count(d, k) as f64;
    let p = eps.exp() / (1.0 + eps.exp());
    let s = 2.0 * p - 1.0;
    t / (n as f64 * s * s)
}

/// Approximate variance of one reconstructed k-way marginal *cell* under
/// `InpHT`: the cell is `2^{−k} Σ_{α⪯β} ±ĉ_α` with `2^k − 1` noisy
/// coefficients, so `Var[cell] ≈ 2^{−2k} (2^k − 1) Var[ĉ]`.
#[must_use]
pub fn inpht_cell_variance(d: u32, k: u32, eps: f64, n: usize) -> f64 {
    let vc = inpht_coefficient_variance(d, k, eps, n);
    let cells = (1u64 << k) as f64;
    (cells - 1.0) / (cells * cells) * vc
}

/// The six algorithms of §4, in the paper's presentation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodBound {
    /// Parallel RR on the full input vector.
    InpRr,
    /// Preferential sampling of the input index.
    InpPs,
    /// Sampled Hadamard coefficient of the input.
    InpHt,
    /// Parallel RR on a random k-way marginal.
    MargRr,
    /// Preferential sampling within a random k-way marginal.
    MargPs,
    /// Sampled Hadamard coefficient of a random k-way marginal.
    MargHt,
}

impl MethodBound {
    /// All six methods.
    pub const ALL: [MethodBound; 6] = [
        MethodBound::InpRr,
        MethodBound::InpPs,
        MethodBound::InpHt,
        MethodBound::MargRr,
        MethodBound::MargPs,
        MethodBound::MargHt,
    ];

    /// Communication cost in bits per user (Table 2).
    #[must_use]
    pub fn communication_bits(self, d: u32, k: u32) -> u64 {
        let (d, k) = (u64::from(d), u64::from(k));
        match self {
            MethodBound::InpRr => 1u64 << d,
            MethodBound::InpPs => d,
            MethodBound::InpHt => d + 1,
            MethodBound::MargRr => d + (1 << k),
            MethodBound::MargPs => d + k,
            MethodBound::MargHt => d + k + 1,
        }
    }

    /// Leading error behavior (Table 2 / Theorems 4.3–4.5 and Lemma 4.6),
    /// including the common `1/(ε√N)` factor but suppressing logarithmic
    /// factors and constants. Useful for *relative* comparisons between
    /// methods, exactly as the paper uses the table.
    #[must_use]
    pub fn error_bound(self, d: u32, k: u32, eps: f64, n: usize) -> f64 {
        check_epsilon(eps);
        assert!(k <= d && n > 0);
        let common = 1.0 / (eps * (n as f64).sqrt());
        let two_k = (1u64 << k) as f64;
        let shape = match self {
            // Thm 4.3: 2^{(d+k)/2}.
            MethodBound::InpRr => (2.0f64).powf(f64::from(d + k) / 2.0),
            // Thm 4.4: 2^{d + k/2}.
            MethodBound::InpPs => (2.0f64).powf(f64::from(d) + f64::from(k) / 2.0),
            // Thm 4.5: 2^{k/2} √T.
            MethodBound::InpHt => two_k.sqrt() * (coefficient_count(d, k) as f64).sqrt(),
            // §4.3: 2^k √C(d,k).
            MethodBound::MargRr => two_k * (ldp_binomial(u64::from(d), u64::from(k)) as f64).sqrt(),
            // Lemma 4.6: 2^{3k/2} √C(d,k).
            MethodBound::MargPs | MethodBound::MargHt => {
                two_k.powf(1.5) * (ldp_binomial(u64::from(d), u64::from(k)) as f64).sqrt()
            }
        };
        shape * common
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_bound_monotonicity() {
        // Parameters chosen so the bound is informative (< 1) — below
        // that it clamps and comparisons are meaningless.
        let b1 = master_tail_bound(200_000, 0.1, 0.7, 0.05);
        assert!(b1 < 1.0, "bound must be informative here, got {b1}");
        let b2 = master_tail_bound(800_000, 0.1, 0.7, 0.05);
        assert!(b2 < b1, "more users → smaller tail");
        let b3 = master_tail_bound(200_000, 0.4, 0.7, 0.05);
        assert!(b3 < b1, "higher sampling probability → smaller tail");
        let b4 = master_tail_bound(200_000, 0.1, 0.9, 0.05);
        assert!(b4 < b1, "less noise → smaller tail");
    }

    #[test]
    fn error_at_confidence_inverts_bound() {
        let (n, ps, pr, delta) = (100_000, 0.05, 0.75, 0.05);
        let c = master_error_at_confidence(n, ps, pr, delta);
        assert!(master_tail_bound(n, ps, pr, c) <= delta * 1.001);
        assert!(master_tail_bound(n, ps, pr, c * 0.9) > delta);
    }

    #[test]
    fn error_scales_inverse_sqrt_n() {
        let c1 = master_error_at_confidence(10_000, 0.1, 0.75, 0.05);
        let c2 = master_error_at_confidence(40_000, 0.1, 0.75, 0.05);
        // Quadrupling N should roughly halve the error (Bernstein's linear
        // term makes it slightly better than exactly half).
        let ratio = c1 / c2;
        assert!((1.8..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn coefficient_counts() {
        assert_eq!(coefficient_count(4, 2), 10);
        assert_eq!(coefficient_count(8, 2), 36);
        assert_eq!(coefficient_count(16, 2), 136);
        assert_eq!(coefficient_count(16, 3), 696);
    }

    #[test]
    fn table2_communication() {
        // d = 8, k = 2.
        assert_eq!(MethodBound::InpRr.communication_bits(8, 2), 256);
        assert_eq!(MethodBound::InpPs.communication_bits(8, 2), 8);
        assert_eq!(MethodBound::InpHt.communication_bits(8, 2), 9);
        assert_eq!(MethodBound::MargRr.communication_bits(8, 2), 12);
        assert_eq!(MethodBound::MargPs.communication_bits(8, 2), 10);
        assert_eq!(MethodBound::MargHt.communication_bits(8, 2), 11);
    }

    #[test]
    fn inpht_has_best_asymptotic_error_for_small_k() {
        // §4.3 "Comparison of all methods": asymptotically InpHT wins.
        let (eps, n) = (1.1, 1 << 18);
        for d in [8u32, 16, 24] {
            for k in [2u32, 3] {
                let ht = MethodBound::InpHt.error_bound(d, k, eps, n);
                for m in MethodBound::ALL {
                    if m != MethodBound::InpHt {
                        assert!(
                            ht <= m.error_bound(d, k, eps, n) * 1.0001,
                            "d={d} k={k} {m:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn inpht_cell_variance_shape() {
        // Variance shrinks with N and eps, grows with T.
        let v = inpht_cell_variance(8, 2, 1.1, 1 << 18);
        assert!(v > 0.0 && v < 1e-3, "{v}");
        assert!(inpht_cell_variance(8, 2, 1.1, 1 << 20) < v);
        assert!(inpht_cell_variance(8, 2, 2.2, 1 << 18) < v);
        assert!(inpht_cell_variance(16, 2, 1.1, 1 << 18) > v);
    }

    #[test]
    fn input_methods_blow_up_with_d() {
        let (eps, n, k) = (1.1, 1 << 18, 2);
        let r8 = MethodBound::InpPs.error_bound(8, k, eps, n);
        let r16 = MethodBound::InpPs.error_bound(16, k, eps, n);
        assert!((r16 / r8 - 256.0).abs() < 1.0, "2^d scaling");
    }
}
