//! Explicit randomization channels and LDP verification.

/// A discrete randomization channel: `probs[x][y] = Pr[output = y | input = x]`.
///
/// Used in tests to verify that a primitive satisfies ε-LDP by checking
/// the worst-case ratio of Definition 3.1 exactly, rather than relying on
/// the algebra being right.
#[derive(Clone, Debug)]
pub struct Channel {
    probs: Vec<Vec<f64>>,
}

impl Channel {
    /// Build from a row-stochastic matrix. Panics if any row does not sum
    /// to 1 (within 1e-9) or contains a negative entry.
    #[must_use]
    pub fn new(probs: Vec<Vec<f64>>) -> Self {
        assert!(!probs.is_empty());
        let cols = probs[0].len();
        for (x, row) in probs.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged channel matrix");
            assert!(
                row.iter().all(|p| *p >= -1e-12),
                "negative probability in row {x}"
            );
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {x} sums to {s}");
        }
        Channel { probs }
    }

    /// Number of inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.probs.len()
    }

    /// Number of outputs.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.probs[0].len()
    }

    /// `Pr[output = y | input = x]`.
    #[must_use]
    pub fn prob(&self, x: usize, y: usize) -> f64 {
        self.probs[x][y]
    }

    /// The tightest ε such that the channel is ε-LDP over **all** input
    /// pairs: `max_{x,x',y} ln(P[y|x] / P[y|x'])`.
    ///
    /// Returns `f64::INFINITY` if some output is possible under one input
    /// but impossible under another.
    #[must_use]
    pub fn ldp_epsilon(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for x1 in 0..self.inputs() {
            for x2 in 0..self.inputs() {
                if x1 == x2 {
                    continue;
                }
                for y in 0..self.outputs() {
                    let (p, q) = (self.probs[x1][y], self.probs[x2][y]);
                    if p == 0.0 && q == 0.0 {
                        continue;
                    }
                    if q == 0.0 {
                        return f64::INFINITY;
                    }
                    worst = worst.max((p / q).ln());
                }
            }
        }
        worst
    }

    /// Tensor product of two channels (independent parallel composition):
    /// input `(x1, x2)`, output `(y1, y2)`. Indexing is
    /// `x = x1 * other.inputs() + x2` (likewise outputs).
    #[must_use]
    pub fn tensor(&self, other: &Channel) -> Channel {
        let mut probs =
            vec![vec![0.0; self.outputs() * other.outputs()]; self.inputs() * other.inputs()];
        for x1 in 0..self.inputs() {
            for x2 in 0..other.inputs() {
                for y1 in 0..self.outputs() {
                    for y2 in 0..other.outputs() {
                        probs[x1 * other.inputs() + x2][y1 * other.outputs() + y2] =
                            self.probs[x1][y1] * other.probs[x2][y2];
                    }
                }
            }
        }
        Channel::new(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_channel_is_infinitely_revealing() {
        let c = Channel::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(c.ldp_epsilon(), f64::INFINITY);
    }

    #[test]
    fn uniform_channel_is_perfectly_private() {
        let c = Channel::new(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert_eq!(c.ldp_epsilon(), 0.0);
    }

    #[test]
    fn rr_channel_epsilon() {
        let eps = 1.1f64;
        let p = eps.exp() / (1.0 + eps.exp());
        let c = Channel::new(vec![vec![p, 1.0 - p], vec![1.0 - p, p]]);
        assert!((c.ldp_epsilon() - eps).abs() < 1e-9);
    }

    #[test]
    fn tensor_adds_epsilons() {
        let eps = 0.7f64;
        let p = eps.exp() / (1.0 + eps.exp());
        let rr = Channel::new(vec![vec![p, 1.0 - p], vec![1.0 - p, p]]);
        let two = rr.tensor(&rr);
        assert!((two.ldp_epsilon() - 2.0 * eps).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_non_stochastic() {
        let _ = Channel::new(vec![vec![0.5, 0.4]]);
    }
}
