//! Budget splitting (BS): releasing `m` pieces of information each under
//! `(ε/m)`-LDP composes to ε-LDP (§3.1). Used by the InpEM baseline,
//! which applies `(ε/d)`-RR independently to each of the `d` attributes.

use crate::check_epsilon;

/// The per-piece budget when splitting ε over `m` releases.
#[must_use]
pub fn split_epsilon(eps: f64, m: u32) -> f64 {
    check_epsilon(eps);
    assert!(m >= 1, "must split over at least one piece");
    eps / f64::from(m)
}

/// Sequential composition: the total ε spent by a sequence of releases.
#[must_use]
pub fn compose(parts: &[f64]) -> f64 {
    parts.iter().inspect(|e| check_epsilon(**e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryRandomizedResponse;

    #[test]
    fn split_then_compose_is_identity() {
        let eps = 1.1;
        let per = split_epsilon(eps, 8);
        assert!((compose(&[per; 8]) - eps).abs() < 1e-12);
    }

    #[test]
    fn split_channels_compose_to_total_epsilon() {
        // d independent (ε/d)-RR channels tensor to exactly ε-LDP.
        let eps = 1.2;
        let d = 3u32;
        let rr = BinaryRandomizedResponse::for_epsilon(split_epsilon(eps, d));
        let mut ch = rr.channel();
        for _ in 1..d {
            ch = ch.tensor(&rr.channel());
        }
        assert!((ch.ldp_epsilon() - eps).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_split() {
        let _ = split_epsilon(1.0, 0);
    }
}
