//! Software parallel bit extract/deposit (PEXT/PDEP).
//!
//! These translate between *global* cell indices `η ∈ {0,1}^d` and *local*
//! marginal cell indices `γ ∈ {0,1}^k`:
//!
//! * `compress(η, β)` gathers the bits of `η` at the positions set in `β`
//!   into the low `|β|` bits — the local index of the cell of marginal `β`
//!   that `η` contributes to (the paper's `η ∧ β = γ` selection written in
//!   compact form).
//! * `expand(γ, β)` is the inverse: it scatters the low `|β|` bits of `γ`
//!   to the positions set in `β`.

/// Gather the bits of `x` selected by `mask` into contiguous low bits.
///
/// Equivalent to the x86 `PEXT` instruction. `O(weight(mask))`.
#[inline]
#[must_use]
pub fn compress(x: u64, mask: u64) -> u64 {
    let mut m = mask;
    let mut out = 0u64;
    let mut shift = 0u32;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if x & bit != 0 {
            out |= 1u64 << shift;
        }
        shift += 1;
        m ^= bit;
    }
    out
}

/// Scatter the low bits of `x` to the positions selected by `mask`.
///
/// Equivalent to the x86 `PDEP` instruction. `O(weight(mask))`.
#[inline]
#[must_use]
pub fn expand(x: u64, mask: u64) -> u64 {
    let mut m = mask;
    let mut out = 0u64;
    let mut src = x;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if src & 1 != 0 {
            out |= bit;
        }
        src >>= 1;
        m ^= bit;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn compress_examples() {
        // d = 4, beta = 0101: attribute 0 -> local bit 0, attribute 2 -> local bit 1.
        assert_eq!(compress(0b0000, 0b0101), 0b00);
        assert_eq!(compress(0b0001, 0b0101), 0b01);
        assert_eq!(compress(0b0100, 0b0101), 0b10);
        assert_eq!(compress(0b0101, 0b0101), 0b11);
        // Non-selected bits are ignored.
        assert_eq!(compress(0b1111, 0b0101), 0b11);
        assert_eq!(compress(0b1010, 0b0101), 0b00);
    }

    #[test]
    fn expand_examples() {
        assert_eq!(expand(0b00, 0b0101), 0b0000);
        assert_eq!(expand(0b01, 0b0101), 0b0001);
        assert_eq!(expand(0b10, 0b0101), 0b0100);
        assert_eq!(expand(0b11, 0b0101), 0b0101);
        // Bits beyond the mask weight are ignored.
        assert_eq!(expand(0b111, 0b0101), 0b0101);
    }

    #[test]
    fn full_and_empty_masks() {
        assert_eq!(compress(0xDEAD_BEEF, u64::MAX), 0xDEAD_BEEF);
        assert_eq!(expand(0xDEAD_BEEF, u64::MAX), 0xDEAD_BEEF);
        assert_eq!(compress(0xDEAD_BEEF, 0), 0);
        assert_eq!(expand(0xDEAD_BEEF, 0), 0);
    }

    proptest! {
        #[test]
        fn expand_then_compress_roundtrip(x in any::<u64>(), mask in any::<u64>()) {
            // expand only reads the low weight(mask) bits; compress recovers them.
            let w = mask.count_ones();
            let low = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            prop_assert_eq!(compress(expand(x, mask), mask), x & low);
        }

        #[test]
        fn compress_then_expand_keeps_masked_bits(x in any::<u64>(), mask in any::<u64>()) {
            prop_assert_eq!(expand(compress(x, mask), mask), x & mask);
        }

        #[test]
        fn compress_weight_bound(x in any::<u64>(), mask in any::<u64>()) {
            let w = mask.count_ones();
            if w < 64 {
                prop_assert!(compress(x, mask) < (1u64 << w));
            }
        }
    }
}
