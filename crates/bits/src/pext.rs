//! Software parallel bit extract/deposit (PEXT/PDEP).
//!
//! These translate between *global* cell indices `η ∈ {0,1}^d` and *local*
//! marginal cell indices `γ ∈ {0,1}^k`:
//!
//! * `compress(η, β)` gathers the bits of `η` at the positions set in `β`
//!   into the low `|β|` bits — the local index of the cell of marginal `β`
//!   that `η` contributes to (the paper's `η ∧ β = γ` selection written in
//!   compact form).
//! * `expand(γ, β)` is the inverse: it scatters the low `|β|` bits of `γ`
//!   to the positions set in `β`.
//!
//! On x86-64 with BMI2 these are single `PEXT`/`PDEP` instructions; the
//! portable bit loop is the default everywhere else. Dispatch order:
//! compile-time `target_feature = "bmi2"` (e.g. `-C target-cpu=native`)
//! uses the intrinsic directly, otherwise x86-64 builds consult the
//! std-cached runtime CPUID check, and every other target (or a CPU
//! without BMI2) takes the portable path.

/// Portable [`compress`]: gather one selected bit per loop iteration.
/// `O(weight(mask))`.
#[inline]
#[must_use]
pub fn compress_portable(x: u64, mask: u64) -> u64 {
    let mut m = mask;
    let mut out = 0u64;
    let mut shift = 0u32;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if x & bit != 0 {
            out |= 1u64 << shift;
        }
        shift += 1;
        m ^= bit;
    }
    out
}

/// Portable [`expand`]: scatter one selected bit per loop iteration.
/// `O(weight(mask))`.
#[inline]
#[must_use]
pub fn expand_portable(x: u64, mask: u64) -> u64 {
    let mut m = mask;
    let mut out = 0u64;
    let mut src = x;
    while m != 0 {
        let bit = m & m.wrapping_neg();
        if src & 1 != 0 {
            out |= bit;
        }
        src >>= 1;
        m ^= bit;
    }
    out
}

#[cfg(all(target_arch = "x86_64", not(target_feature = "bmi2")))]
#[inline]
fn bmi2_available() -> bool {
    // `is_x86_feature_detected!` caches the CPUID result in a static, so
    // the steady-state cost is one relaxed atomic load and a branch.
    std::arch::is_x86_feature_detected!("bmi2")
}

/// # Safety
/// The CPU must support BMI2.
#[allow(unsafe_code)] // the documented BMI2 island; see lib.rs
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
#[inline]
unsafe fn pext_bmi2(x: u64, mask: u64) -> u64 {
    core::arch::x86_64::_pext_u64(x, mask)
}

/// # Safety
/// The CPU must support BMI2.
#[allow(unsafe_code)] // the documented BMI2 island; see lib.rs
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
#[inline]
unsafe fn pdep_bmi2(x: u64, mask: u64) -> u64 {
    core::arch::x86_64::_pdep_u64(x, mask)
}

/// Gather the bits of `x` selected by `mask` into contiguous low bits.
///
/// The x86 `PEXT` operation (hardware when BMI2 is available, portable
/// loop otherwise).
#[inline]
#[must_use]
#[allow(unsafe_code)] // the documented BMI2 island; see lib.rs
pub fn compress(x: u64, mask: u64) -> u64 {
    #[cfg(all(target_arch = "x86_64", target_feature = "bmi2"))]
    {
        // SAFETY: the target was compiled with BMI2 enabled.
        unsafe { pext_bmi2(x, mask) }
    }
    #[cfg(all(target_arch = "x86_64", not(target_feature = "bmi2")))]
    {
        if bmi2_available() {
            // SAFETY: the runtime check above proved BMI2 is present.
            unsafe { pext_bmi2(x, mask) }
        } else {
            compress_portable(x, mask)
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        compress_portable(x, mask)
    }
}

/// Scatter the low bits of `x` to the positions selected by `mask`.
///
/// The x86 `PDEP` operation (hardware when BMI2 is available, portable
/// loop otherwise).
#[inline]
#[must_use]
#[allow(unsafe_code)] // the documented BMI2 island; see lib.rs
pub fn expand(x: u64, mask: u64) -> u64 {
    #[cfg(all(target_arch = "x86_64", target_feature = "bmi2"))]
    {
        // SAFETY: the target was compiled with BMI2 enabled.
        unsafe { pdep_bmi2(x, mask) }
    }
    #[cfg(all(target_arch = "x86_64", not(target_feature = "bmi2")))]
    {
        if bmi2_available() {
            // SAFETY: the runtime check above proved BMI2 is present.
            unsafe { pdep_bmi2(x, mask) }
        } else {
            expand_portable(x, mask)
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        expand_portable(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn compress_examples() {
        // d = 4, beta = 0101: attribute 0 -> local bit 0, attribute 2 -> local bit 1.
        assert_eq!(compress(0b0000, 0b0101), 0b00);
        assert_eq!(compress(0b0001, 0b0101), 0b01);
        assert_eq!(compress(0b0100, 0b0101), 0b10);
        assert_eq!(compress(0b0101, 0b0101), 0b11);
        // Non-selected bits are ignored.
        assert_eq!(compress(0b1111, 0b0101), 0b11);
        assert_eq!(compress(0b1010, 0b0101), 0b00);
    }

    #[test]
    fn expand_examples() {
        assert_eq!(expand(0b00, 0b0101), 0b0000);
        assert_eq!(expand(0b01, 0b0101), 0b0001);
        assert_eq!(expand(0b10, 0b0101), 0b0100);
        assert_eq!(expand(0b11, 0b0101), 0b0101);
        // Bits beyond the mask weight are ignored.
        assert_eq!(expand(0b111, 0b0101), 0b0101);
    }

    #[test]
    fn full_and_empty_masks() {
        assert_eq!(compress(0xDEAD_BEEF, u64::MAX), 0xDEAD_BEEF);
        assert_eq!(expand(0xDEAD_BEEF, u64::MAX), 0xDEAD_BEEF);
        assert_eq!(compress(0xDEAD_BEEF, 0), 0);
        assert_eq!(expand(0xDEAD_BEEF, 0), 0);
    }

    proptest! {
        #[test]
        fn dispatched_matches_portable(x in any::<u64>(), mask in any::<u64>()) {
            prop_assert_eq!(compress(x, mask), compress_portable(x, mask));
            prop_assert_eq!(expand(x, mask), expand_portable(x, mask));
        }

        #[test]
        fn expand_then_compress_roundtrip(x in any::<u64>(), mask in any::<u64>()) {
            // expand only reads the low weight(mask) bits; compress recovers them.
            let w = mask.count_ones();
            let low = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            prop_assert_eq!(compress(expand(x, mask), mask), x & low);
        }

        #[test]
        fn compress_then_expand_keeps_masked_bits(x in any::<u64>(), mask in any::<u64>()) {
            prop_assert_eq!(expand(compress(x, mask), mask), x & mask);
        }

        #[test]
        fn compress_weight_bound(x in any::<u64>(), mask in any::<u64>()) {
            let w = mask.count_ones();
            if w < 64 {
                prop_assert!(compress(x, mask) < (1u64 << w));
            }
        }
    }
}
