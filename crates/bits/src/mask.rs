//! The [`Mask`] type: a subset of up to 64 binary attributes.

use core::fmt;

/// A subset of attributes of a `d`-dimensional binary domain, packed into a
/// `u64` (bit `i` set ⇔ attribute `i` is in the subset).
///
/// `Mask` is used both for marginal identifiers `β` (which attributes a
/// marginal covers) and for cell/coefficient indices `γ, α, η` (bit
/// patterns over those attributes). The paper's `⪯` relation
/// (`α ⪯ β ⇔ α ∧ β = α`) is [`Mask::is_subset_of`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mask(pub u64);

impl Mask {
    /// The empty subset.
    pub const EMPTY: Mask = Mask(0);

    /// Construct from a raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn new(bits: u64) -> Self {
        Mask(bits)
    }

    /// The full domain mask `{0, …, d−1}`; panics if `d > 64`.
    #[inline]
    #[must_use]
    pub const fn full(d: u32) -> Self {
        assert!(d <= 64, "at most 64 attributes supported");
        if d == 64 {
            Mask(u64::MAX)
        } else {
            Mask((1u64 << d) - 1)
        }
    }

    /// A mask with a single attribute set.
    #[inline]
    #[must_use]
    pub const fn single(attr: u32) -> Self {
        assert!(attr < 64);
        Mask(1u64 << attr)
    }

    /// Build a mask from attribute indices.
    #[must_use]
    pub fn from_attrs(attrs: &[u32]) -> Self {
        let mut bits = 0u64;
        for &a in attrs {
            assert!(a < 64, "attribute index out of range");
            bits |= 1u64 << a;
        }
        Mask(bits)
    }

    /// Raw bits.
    #[inline]
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Number of attributes in the subset (the `k` of a k-way marginal).
    #[inline]
    #[must_use]
    pub const fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` iff the subset is empty.
    #[inline]
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The `⪯` relation: every attribute of `self` is also in `other`.
    #[inline]
    #[must_use]
    pub const fn is_subset_of(self, other: Mask) -> bool {
        self.0 & other.0 == self.0
    }

    /// `true` iff `attr` is in the subset.
    #[inline]
    #[must_use]
    pub const fn contains(self, attr: u32) -> bool {
        attr < 64 && (self.0 >> attr) & 1 == 1
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: Mask) -> Mask {
        Mask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub const fn intersect(self, other: Mask) -> Mask {
        Mask(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub const fn minus(self, other: Mask) -> Mask {
        Mask(self.0 & !other.0)
    }

    /// Complement within a `d`-attribute domain.
    #[inline]
    #[must_use]
    pub fn complement(self, d: u32) -> Mask {
        Mask(!self.0 & Mask::full(d).0)
    }

    /// Iterate the attribute indices in ascending order.
    #[inline]
    pub fn attrs(self) -> AttrIter {
        AttrIter(self.0)
    }

    /// The number of cells in a marginal over this subset: `2^weight`.
    ///
    /// Panics if the weight exceeds 63 (such tables cannot be materialized).
    #[inline]
    #[must_use]
    pub fn table_len(self) -> usize {
        let w = self.weight();
        assert!(w < 64, "marginal table too large to materialize");
        1usize << w
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask({:#b})", self.0)
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for a in self.attrs() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl From<u64> for Mask {
    fn from(bits: u64) -> Self {
        Mask(bits)
    }
}

/// Iterator over the set attribute indices of a [`Mask`], ascending.
#[derive(Clone, Debug)]
pub struct AttrIter(u64);

impl Iterator for AttrIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let a = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(a)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Mask::full(4).bits(), 0b1111);
        assert_eq!(Mask::full(0).bits(), 0);
        assert_eq!(Mask::full(64).bits(), u64::MAX);
        assert_eq!(Mask::single(3).bits(), 0b1000);
        assert_eq!(Mask::from_attrs(&[0, 2]).bits(), 0b101);
    }

    #[test]
    fn subset_relation() {
        let beta = Mask::new(0b0101);
        assert!(Mask::new(0b0001).is_subset_of(beta));
        assert!(Mask::new(0b0101).is_subset_of(beta));
        assert!(Mask::EMPTY.is_subset_of(beta));
        assert!(!Mask::new(0b0010).is_subset_of(beta));
        assert!(!Mask::new(0b0111).is_subset_of(beta));
    }

    #[test]
    fn set_ops() {
        let a = Mask::new(0b0110);
        let b = Mask::new(0b0011);
        assert_eq!(a.union(b).bits(), 0b0111);
        assert_eq!(a.intersect(b).bits(), 0b0010);
        assert_eq!(a.minus(b).bits(), 0b0100);
        assert_eq!(a.complement(4).bits(), 0b1001);
    }

    #[test]
    fn attrs_iter() {
        let m = Mask::new(0b101001);
        let v: Vec<u32> = m.attrs().collect();
        assert_eq!(v, vec![0, 3, 5]);
        assert_eq!(m.attrs().len(), 3);
        assert_eq!(Mask::EMPTY.attrs().count(), 0);
    }

    #[test]
    fn table_len() {
        assert_eq!(Mask::new(0b0101).table_len(), 4);
        assert_eq!(Mask::EMPTY.table_len(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Mask::new(0b101).to_string(), "{0,2}");
        assert_eq!(Mask::EMPTY.to_string(), "{}");
    }
}
