//! Enumeration of sub-masks and fixed-weight masks.

use crate::Mask;

/// Iterate all `α ⪯ β` (all sub-masks of `beta`), in increasing numeric
/// order, including the empty mask and `beta` itself — `2^|β|` items.
///
/// This enumerates the cells of a marginal table (Definition 3.2) and the
/// Hadamard coefficients relevant to a marginal (Lemma 3.7).
#[inline]
#[must_use]
pub fn submasks(beta: Mask) -> SubmaskIter {
    SubmaskIter {
        beta: beta.bits(),
        next: Some(0),
    }
}

/// See [`submasks`].
#[derive(Clone, Debug)]
pub struct SubmaskIter {
    beta: u64,
    next: Option<u64>,
}

impl Iterator for SubmaskIter {
    type Item = Mask;

    #[inline]
    fn next(&mut self) -> Option<Mask> {
        let cur = self.next?;
        // Standard sub-mask increment: (cur - beta) & beta enumerates
        // sub-masks ascending when started from 0.
        self.next = if cur == self.beta {
            None
        } else {
            Some((cur.wrapping_sub(self.beta)) & self.beta)
        };
        Some(Mask(cur))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.next {
            None => (0, Some(0)),
            // Remaining count is expensive to compute exactly; give bounds.
            Some(_) => (1, Some(1usize << self.beta.count_ones().min(63))),
        }
    }
}

/// Iterate all masks over `d` attributes with exactly `k` set bits, in
/// increasing numeric order (Gosper's hack). `C(d, k)` items.
///
/// Enumerates the set of all k-way marginals (Definition 3.3).
#[must_use]
pub fn masks_of_weight(d: u32, k: u32) -> WeightIter {
    assert!(d <= 63, "weight enumeration supports d ≤ 63");
    let limit = 1u64 << d;
    let first = if k > d {
        None
    } else if k == 0 {
        Some(0)
    } else {
        Some((1u64 << k) - 1)
    };
    WeightIter { limit, next: first }
}

/// See [`masks_of_weight`].
#[derive(Clone, Debug)]
pub struct WeightIter {
    limit: u64,
    next: Option<u64>,
}

impl Iterator for WeightIter {
    type Item = Mask;

    #[inline]
    fn next(&mut self) -> Option<Mask> {
        let cur = self.next?;
        self.next = if cur == 0 {
            None
        } else {
            // Gosper's hack: next larger integer with the same popcount.
            let c = cur & cur.wrapping_neg();
            let r = cur + c;
            let nxt = (((r ^ cur) >> 2) / c) | r;
            (nxt < self.limit).then_some(nxt)
        };
        Some(Mask(cur))
    }
}

/// All masks over `d` attributes with weight in `1..=k`, ordered by weight
/// then numerically — exactly the paper's coefficient set
/// `T = {α : 1 ≤ |α| ≤ k}` (the weight-0 coefficient is always known).
#[must_use]
pub fn masks_of_weight_at_most(d: u32, k: u32) -> Vec<Mask> {
    let mut out = Vec::new();
    for w in 1..=k.min(d) {
        out.extend(masks_of_weight(d, w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;

    #[test]
    fn submasks_of_example() {
        let v: Vec<u64> = submasks(Mask(0b0101)).map(Mask::bits).collect();
        assert_eq!(v, vec![0b0000, 0b0001, 0b0100, 0b0101]);
    }

    #[test]
    fn submasks_of_empty() {
        let v: Vec<Mask> = submasks(Mask::EMPTY).collect();
        assert_eq!(v, vec![Mask::EMPTY]);
    }

    #[test]
    fn submasks_count_and_order() {
        for beta in [0b1u64, 0b110, 0b1011, 0b11111, 0b1010101] {
            let v: Vec<u64> = submasks(Mask(beta)).map(Mask::bits).collect();
            assert_eq!(v.len(), 1 << beta.count_ones());
            assert!(v.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(v.iter().all(|&s| s & beta == s), "all are submasks");
        }
    }

    #[test]
    fn weight_enumeration_counts() {
        for d in 1..=10u32 {
            for k in 0..=d {
                let v: Vec<Mask> = masks_of_weight(d, k).collect();
                assert_eq!(
                    v.len() as u64,
                    binomial(u64::from(d), u64::from(k)),
                    "d={d} k={k}"
                );
                assert!(v.iter().all(|m| m.weight() == k));
                assert!(v.windows(2).all(|w| w[0].bits() < w[1].bits()));
            }
        }
    }

    #[test]
    fn weight_zero_and_overweight() {
        assert_eq!(masks_of_weight(5, 0).count(), 1);
        assert_eq!(masks_of_weight(3, 4).count(), 0);
    }

    #[test]
    fn at_most_matches_paper_t() {
        // §4.2: |T| = Σ_{ℓ=1}^{k} C(d,ℓ). For d=4, k=2: 4 + 6 = 10.
        let t = masks_of_weight_at_most(4, 2);
        assert_eq!(t.len(), 10);
        assert!(t.iter().all(|m| (1..=2).contains(&m.weight())));
        // d=16, k=3: 16 + 120 + 560 = 696.
        assert_eq!(masks_of_weight_at_most(16, 3).len(), 696);
    }
}
