//! Combinatorial (un)ranking of masks, used by `InpHT` to index the set
//! `T = {α : 1 ≤ |α| ≤ k}` of Hadamard coefficients in a dense array.
//!
//! Ranking uses the *combinatorial number system*: a weight-`k` mask with
//! set attribute positions `c_1 < c_2 < … < c_k` has rank
//! `Σ_i C(c_i, i)`, which enumerates weight-`k` masks in increasing numeric
//! order. This means an aggregator can store per-coefficient sums in a flat
//! `Vec` of length `T` instead of a hash map.

use crate::{binomial, binomial_table, Mask};

/// Rank of a weight-`k` mask among all weight-`k` masks over any domain,
/// in increasing numeric order. Inverse of [`unrank_weight_k`].
#[must_use]
pub fn rank_weight_k(mask: Mask) -> u64 {
    let mut rank = 0u64;
    for (i, attr) in mask.attrs().enumerate() {
        rank += binomial(u64::from(attr), i as u64 + 1);
    }
    rank
}

/// The `rank`-th weight-`k` mask (0-based, increasing numeric order).
/// Inverse of [`rank_weight_k`].
#[must_use]
pub fn unrank_weight_k(rank: u64, k: u32) -> Mask {
    let mut bits = 0u64;
    let mut r = rank;
    // Choose positions from the highest down: the i-th highest position c
    // satisfies C(c, i) ≤ remaining < C(c+1, i).
    for i in (1..=u64::from(k)).rev() {
        let mut c = i - 1; // smallest position that can host the i-th bit
        while binomial(c + 1, i) <= r {
            c += 1;
        }
        r -= binomial(c, i);
        bits |= 1u64 << c;
    }
    Mask(bits)
}

/// Dense indexer for the coefficient set `T = {α : 1 ≤ |α| ≤ k}` over `d`
/// attributes, ordered by weight then numerically (matching
/// [`crate::masks_of_weight_at_most`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightRank {
    d: u32,
    k: u32,
    /// `offset[w]` = number of masks with weight in `1..w` (so the block of
    /// weight-`w` masks starts at `offset[w]`).
    offsets: Vec<u64>,
    binom: Vec<Vec<u64>>,
}

impl WeightRank {
    /// Build an indexer for weight-`1..=k` masks over `d` attributes.
    #[must_use]
    pub fn new(d: u32, k: u32) -> Self {
        assert!(d <= 63 && k <= d, "need k ≤ d ≤ 63");
        let mut offsets = vec![0u64; k as usize + 2];
        for w in 1..=k {
            offsets[w as usize + 1] = offsets[w as usize] + binomial(u64::from(d), u64::from(w));
        }
        WeightRank {
            d,
            k,
            offsets,
            binom: binomial_table(d as usize),
        }
    }

    /// Total number of indexed coefficients, the paper's `|T|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets[self.k as usize + 1] as usize
    }

    /// `true` iff `k == 0` (no indexed coefficients).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// Maximum indexed weight.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Dense index of `mask` in `[0, len)`.
    ///
    /// Panics if `mask` has weight 0 or weight > k, or touches attributes
    /// outside the domain.
    #[must_use]
    pub fn index(&self, mask: Mask) -> usize {
        let w = mask.weight();
        assert!(
            w >= 1 && w <= self.k,
            "mask weight {w} outside 1..={}",
            self.k
        );
        assert!(mask.is_subset_of(Mask::full(self.d)), "mask outside domain");
        let mut rank = 0u64;
        for (i, attr) in mask.attrs().enumerate() {
            rank += self.binom[attr as usize].get(i + 1).copied().unwrap_or(0);
        }
        (self.offsets[w as usize] + rank) as usize
    }

    /// Inverse of [`WeightRank::index`].
    #[must_use]
    pub fn mask(&self, index: usize) -> Mask {
        let idx = index as u64;
        assert!((idx as usize) < self.len(), "index out of range");
        let mut w = 1u32;
        while self.offsets[w as usize + 1] <= idx {
            w += 1;
        }
        unrank_weight_k(idx - self.offsets[w as usize], w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{masks_of_weight, masks_of_weight_at_most};
    use proptest::prelude::*;

    #[test]
    fn rank_matches_enumeration_order() {
        for d in 1..=12u32 {
            for k in 1..=d.min(4) {
                for (i, m) in masks_of_weight(d, k).enumerate() {
                    assert_eq!(rank_weight_k(m), i as u64, "d={d} k={k} m={m}");
                    assert_eq!(unrank_weight_k(i as u64, k), m);
                }
            }
        }
    }

    #[test]
    fn weight_rank_roundtrip_matches_at_most_order() {
        for d in [4u32, 8, 16] {
            for k in 1..=3u32.min(d) {
                let wr = WeightRank::new(d, k);
                let all = masks_of_weight_at_most(d, k);
                assert_eq!(wr.len(), all.len());
                for (i, m) in all.iter().enumerate() {
                    assert_eq!(wr.index(*m), i, "d={d} k={k} m={m}");
                    assert_eq!(wr.mask(i), *m);
                }
            }
        }
    }

    #[test]
    fn paper_sizes() {
        assert_eq!(WeightRank::new(4, 2).len(), 10); // 4 + 6
        assert_eq!(WeightRank::new(8, 2).len(), 36); // 8 + 28
        assert_eq!(WeightRank::new(16, 3).len(), 696);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rejects_zero_weight() {
        let _ = WeightRank::new(4, 2).index(Mask::EMPTY);
    }

    proptest! {
        #[test]
        fn roundtrip_random(d in 1u32..20, seed in any::<u64>()) {
            let k = 1 + (seed % u64::from(d)) as u32;
            let k = k.min(4);
            let wr = WeightRank::new(d, k);
            let idx = (seed >> 8) as usize % wr.len();
            prop_assert_eq!(wr.index(wr.mask(idx)), idx);
        }
    }
}
