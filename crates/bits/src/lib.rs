// The only crate in the workspace not under `#![forbid(unsafe_code)]`:
// the BMI2 PEXT/PDEP intrinsics in `pext.rs` need `unsafe` for the
// `#[target_feature]` calls. `deny` (not `forbid`) leaves room for the
// narrowly-scoped `#[allow(unsafe_code)]` island there — and nothing
// else; a stray `unsafe` anywhere else in the crate still fails.
#![deny(unsafe_code)]
#![warn(missing_docs)]

//! Bit-mask algebra over the Boolean hypercube `{0,1}^d`.
//!
//! The marginal-release algorithms of Cormode, Kulkarni and Srivastava
//! (SIGMOD 2018) identify a *marginal* by a mask `β ∈ {0,1}^d` whose set
//! bits name the attributes of interest, and a *cell* of that marginal by a
//! sub-mask `γ ⪯ β`. This crate provides the small, heavily-exercised
//! toolkit every other crate builds on:
//!
//! * [`Mask`] — a `u64`-backed attribute subset with the `⪯` partial order;
//! * [`submasks`] — iteration over all `α ⪯ β` (the 2^|β| cells or
//!   Hadamard coefficients of a marginal);
//! * [`masks_of_weight`] / [`masks_of_weight_at_most`] — Gosper-style
//!   enumeration of all k-way marginals of d attributes;
//! * [`compress`] / [`expand`] — software PEXT/PDEP used to translate
//!   between global cell indices `η ∈ {0,1}^d` and local marginal cells
//!   `γ ∈ {0,1}^k`;
//! * [`parity`] / [`pm_one`] — the inner product `⟨i, j⟩ mod 2` that drives
//!   the Hadamard transform;
//! * [`binomial`] and [`WeightRank`] — combinatorial (un)ranking of
//!   low-weight masks, used to index the `T = Σ_{ℓ≤k} C(d,ℓ)` Hadamard
//!   coefficients that suffice for all k-way marginals (Lemma 3.7).

mod binom;
mod mask;
mod pext;
mod rank;
mod subsets;

pub use binom::{binomial, binomial_table, log2_binomial};
pub use mask::Mask;
pub use pext::{compress, compress_portable, expand, expand_portable};
pub use rank::{rank_weight_k, unrank_weight_k, WeightRank};
pub use subsets::{masks_of_weight, masks_of_weight_at_most, submasks, SubmaskIter, WeightIter};

/// Parity of the AND of two masks: `popcount(a & b) mod 2`.
///
/// This is the inner product `⟨a, b⟩` over GF(2) used throughout the
/// Hadamard transform (Definition 3.5 of the paper).
#[inline(always)]
#[must_use]
pub fn parity(a: u64, b: u64) -> u64 {
    u64::from((a & b).count_ones()) & 1
}

/// `(−1)^{⟨a,b⟩}` as an `f64` — the sign of a Hadamard matrix entry.
#[inline(always)]
#[must_use]
pub fn pm_one(a: u64, b: u64) -> f64 {
    if parity(a, b) == 0 {
        1.0
    } else {
        -1.0
    }
}

/// `(−1)^{⟨a,b⟩}` as an `i8` (`+1` or `−1`).
#[inline(always)]
#[must_use]
pub fn pm_one_i8(a: u64, b: u64) -> i8 {
    if parity(a, b) == 0 {
        1
    } else {
        -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_basics() {
        assert_eq!(parity(0, 0), 0);
        assert_eq!(parity(0b1011, 0b0001), 1);
        assert_eq!(parity(0b1011, 0b1010), 0);
        assert_eq!(parity(u64::MAX, u64::MAX), 0); // 64 ones -> even
        assert_eq!(parity(u64::MAX, 1), 1);
    }

    #[test]
    fn pm_one_matches_parity() {
        for a in 0u64..32 {
            for b in 0u64..32 {
                let expect = if parity(a, b) == 0 { 1.0 } else { -1.0 };
                assert_eq!(pm_one(a, b), expect);
                assert_eq!(f64::from(pm_one_i8(a, b)), expect);
            }
        }
    }
}
