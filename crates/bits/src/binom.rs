//! Binomial coefficients, used to count marginals (`C(d,k)` k-way marginals
//! of `d` attributes) and Hadamard coefficients (`T = Σ_{ℓ≤k} C(d,ℓ)`).

/// `C(n, k)` computed with overflow-safe interleaved multiply/divide.
///
/// Panics on overflow of `u64` (far beyond any parameter this library uses;
/// `C(64, 32)` ≈ 1.8e18 still fits).
#[must_use]
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * u128::from(n - i) / u128::from(i + 1);
    }
    u64::try_from(result).expect("binomial coefficient overflows u64")
}

/// Pascal's triangle up to `n` rows: `table[i][j] = C(i, j)` (saturating).
#[must_use]
pub fn binomial_table(n: usize) -> Vec<Vec<u64>> {
    let mut t = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let mut row = vec![0u64; i + 1];
        row[0] = 1;
        row[i] = 1;
        for j in 1..i {
            let prev: &Vec<u64> = &t[i - 1];
            row[j] = prev[j - 1].saturating_add(prev[j]);
        }
        t.push(row);
    }
    t
}

/// `log2 C(n,k)` via the log-gamma-free product form, for quick size
/// estimates (e.g. communication accounting) without overflow.
#[must_use]
pub fn log2_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(8, 2), 28);
        assert_eq!(binomial(16, 3), 560);
        assert_eq!(binomial(4, 7), 0);
    }

    #[test]
    fn paper_coefficient_counts() {
        // §3.2: for d = 4, k = 2 there are C(4,0)+C(4,1)+C(4,2) = 11
        // Hadamard coefficients of weight ≤ 2.
        let total: u64 = (0..=2).map(|l| binomial(4, l)).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn table_matches_direct() {
        let t = binomial_table(20);
        for n in 0..=20u64 {
            for k in 0..=n {
                assert_eq!(t[n as usize][k as usize], binomial(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn symmetry_and_pascal() {
        for n in 1..30u64 {
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn log2_agrees() {
        for n in 1..40u64 {
            for k in 0..=n {
                let exact = (binomial(n, k) as f64).log2();
                assert!((log2_binomial(n, k) - exact).abs() < 1e-9, "C({n},{k})");
            }
        }
    }

    #[test]
    fn large_still_fits() {
        assert_eq!(binomial(64, 1), 64);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }
}
