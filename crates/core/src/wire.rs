//! Compact little-endian wire format for serialized accumulators.
//!
//! Every [`crate::Accumulator`] state starts with a one-byte type tag
//! (see [`tag`]) followed by a one-byte format version, then
//! type-specific fields written with [`Writer`] and read back with
//! [`Reader`]. Integers are fixed-width little-endian; floats are the
//! IEEE-754 bit pattern (`f64::to_bits`), so a decode/encode round trip
//! is exactly byte-identical — the property the partition-invariance
//! proptest in `tests/streaming.rs` checks.
//!
//! The format carries the full protocol configuration (dimensions and
//! perturbation probabilities), so a partial aggregate can cross a
//! process boundary and be merged by a peer that was never handed the
//! originating [`crate::Mechanism`].

/// Type tags identifying which accumulator a byte blob belongs to.
///
/// Tags are part of the wire format: never reuse or renumber them.
pub mod tag {
    /// [`crate::InpRrAggregator`].
    pub const INP_RR: u8 = 0x01;
    /// [`crate::InpPsAggregator`].
    pub const INP_PS: u8 = 0x02;
    /// [`crate::InpHtAggregator`].
    pub const INP_HT: u8 = 0x03;
    /// [`crate::MargRrAggregator`].
    pub const MARG_RR: u8 = 0x04;
    /// [`crate::MargPsAggregator`].
    pub const MARG_PS: u8 = 0x05;
    /// [`crate::MargHtAggregator`].
    pub const MARG_HT: u8 = 0x06;
    /// [`crate::InpEmAggregator`].
    pub const INP_EM: u8 = 0x07;
    /// `ldp_oracles::HadamardCmsAggregator`.
    pub const HCMS: u8 = 0x11;
    /// `ldp_oracles::CmsAggregator`.
    pub const CMS: u8 = 0x12;
    /// `ldp_oracles::OlhAggregator`.
    pub const OLH: u8 = 0x13;

    /// [`crate::MechanismReport::InpRr`] report frame.
    pub const REPORT_INP_RR: u8 = 0x21;
    /// [`crate::MechanismReport::InpPs`] report frame.
    pub const REPORT_INP_PS: u8 = 0x22;
    /// [`crate::MechanismReport::InpHt`] report frame.
    pub const REPORT_INP_HT: u8 = 0x23;
    /// [`crate::MechanismReport::MargRr`] report frame.
    pub const REPORT_MARG_RR: u8 = 0x24;
    /// [`crate::MechanismReport::MargPs`] report frame.
    pub const REPORT_MARG_PS: u8 = 0x25;
    /// [`crate::MechanismReport::MargHt`] report frame.
    pub const REPORT_MARG_HT: u8 = 0x26;
    /// [`crate::MechanismReport::InpEm`] report frame.
    pub const REPORT_INP_EM: u8 = 0x27;
    /// `ldp_oracles::OracleReport::Hcms` report frame.
    pub const REPORT_HCMS: u8 = 0x31;
    /// `ldp_oracles::OracleReport::Cms` report frame.
    pub const REPORT_CMS: u8 = 0x32;
    /// `ldp_oracles::OracleReport::Olh` report frame.
    pub const REPORT_OLH: u8 = 0x33;

    /// [`crate::frame::StreamHeader`] — frame 0 of report streams and
    /// snapshots.
    pub const STREAM_HEADER: u8 = 0x40;

    /// A report batch envelope (wire v2): a `u32` report count followed
    /// by that many back-to-back self-describing report blobs, all
    /// inside one frame. Amortizes the per-report frame overhead on the
    /// serve ingest path (`docs/WIRE_FORMAT.md` §5.1).
    pub const REPORT_BATCH: u8 = 0x41;

    /// A collector checkpoint (wire v3): the collector's identity and
    /// push epoch, its local merged accumulator state, and the latest
    /// snapshot each downstream collector pushed — everything a
    /// restarted `ldp-cli serve --checkpoint` needs to resume exactly
    /// where it crashed (`docs/WIRE_FORMAT.md` §6.1).
    pub const CHECKPOINT: u8 = 0x42;

    // Aggregation-server control plane (`ldp_server`): request frames a
    // client sends over a control connection (0x50–0x57) and the
    // response frames the server answers with (0x58–0x5F). One request
    // frame always yields exactly one response frame.

    /// Request: the live merged snapshot (header + accumulator state).
    pub const REQ_SNAPSHOT: u8 = 0x50;
    /// Request: one finalized marginal table / frequency estimate.
    pub const REQ_QUERY: u8 = 0x51;
    /// Request: server counters (reports, connections, uptime, …).
    pub const REQ_STATS: u8 = 0x52;
    /// Request: graceful shutdown.
    pub const REQ_SHUTDOWN: u8 = 0x53;
    /// Request (wire v3): a downstream collector pushes its merged
    /// snapshot upstream — collector id, monotonic push epoch, header,
    /// and state. The upstream *replaces* its previous snapshot from
    /// the same collector, so a retried push is idempotent.
    pub const REQ_PUSH: u8 = 0x54;

    /// Response to [`REQ_SNAPSHOT`].
    pub const RESP_SNAPSHOT: u8 = 0x58;
    /// Response to [`REQ_QUERY`].
    pub const RESP_QUERY: u8 = 0x59;
    /// Response to [`REQ_STATS`].
    pub const RESP_STATS: u8 = 0x5A;
    /// Response to [`REQ_SHUTDOWN`].
    pub const RESP_SHUTDOWN: u8 = 0x5B;
    /// Ingest acknowledgement: sent once after a report stream reaches
    /// a clean end-of-stream and every report has been absorbed.
    pub const RESP_INGEST: u8 = 0x5C;
    /// Response to [`REQ_PUSH`] (wire v3): whether the pushed snapshot
    /// was applied (0 = stale epoch, ignored) and the latest epoch the
    /// upstream now holds for that collector.
    pub const RESP_PUSH: u8 = 0x5D;
    /// Error response to any request (or to a malformed first frame).
    pub const RESP_ERROR: u8 = 0x5F;
}

/// The current wire-format version. Writers always emit it.
///
/// v2 added the [`tag::REPORT_BATCH`] envelope; v3 adds the federation
/// frames ([`tag::REQ_PUSH`], [`tag::RESP_PUSH`], [`tag::CHECKPOINT`]).
/// Every field layout of v1 is unchanged, so v1 blobs decode as-is
/// (see [`MIN_VERSION`]).
pub const VERSION: u8 = 3;

/// The oldest wire-format version this build still decodes. Readers
/// accept any version in `MIN_VERSION..=`[`VERSION`] and reject
/// anything newer with [`WireError::UnsupportedVersion`].
pub const MIN_VERSION: u8 = 1;

/// Why a byte blob failed to decode into an accumulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The blob ended before the advertised fields did.
    Truncated,
    /// The leading type tag does not match the requested accumulator.
    WrongTag {
        /// Tag the decoder expected (see [`tag`]).
        expected: u8,
        /// Tag found in the blob (absent if the blob was empty).
        found: Option<u8>,
    },
    /// The blob's format version is not supported by this build.
    UnsupportedVersion(u8),
    /// Bytes were left over after all fields were read.
    TrailingBytes(usize),
    /// A decoded field failed its validity check.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "serialized accumulator is truncated"),
            WireError::WrongTag { expected, found } => match found {
                Some(t) => write!(
                    f,
                    "wrong accumulator tag {t:#04x} (expected {expected:#04x})"
                ),
                None => write!(f, "empty blob (expected tag {expected:#04x})"),
            },
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            WireError::Invalid(what) => write!(f, "invalid serialized field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder for accumulator state.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a blob with the given type tag and the current [`VERSION`].
    #[must_use]
    pub fn with_tag(tag: u8) -> Self {
        let mut w = Writer {
            buf: Vec::with_capacity(64),
        };
        w.buf.push(tag);
        w.buf.push(VERSION);
        w
    }

    /// Clear the buffer and restart it with a new tag + [`VERSION`]
    /// header, keeping the existing allocation. The reuse form of
    /// [`with_tag`](Self::with_tag) for hot loops (batch encode kernels
    /// fill one `Writer` per frame instead of allocating per report).
    pub fn reset_with_tag(&mut self, tag: u8) {
        self.buf.clear();
        self.buf.push(tag);
        self.buf.push(VERSION);
    }

    /// Append a nested blob header (tag + current [`VERSION`]) mid-buffer
    /// — used when packing self-describing report blobs back to back
    /// inside a [`tag::REPORT_BATCH`] payload without per-report `Vec`s.
    pub fn put_tag(&mut self, tag: u8) {
        self.buf.push(tag);
        self.buf.push(VERSION);
    }

    /// The bytes encoded so far, without consuming the writer.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing has been encoded (only possible via
    /// `Writer::default()`, which has no header).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Overwrite 4 bytes at `pos` with a little-endian `u32` — for
    /// back-patching a count prefix once a batch loop knows its final
    /// size. Returns `false` (and leaves the buffer untouched) if the
    /// range is out of bounds.
    pub fn patch_u32(&mut self, pos: usize, v: u32) -> bool {
        match self.buf.get_mut(pos..pos + 4) {
            Some(slot) => {
                slot.copy_from_slice(&v.to_le_bytes());
                true
            }
            None => false,
        }
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Append a length-prefixed `i64` slice.
    pub fn put_i64_slice(&mut self, vs: &[i64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_i64(v);
        }
    }

    /// Append a `u32`-length-prefixed `u16` slice (the compact form used
    /// by per-report frames, where every byte counts).
    ///
    /// The compact prefix caps the slice at `u32::MAX` elements; real
    /// report slices are orders of magnitude below it (and the 1 GiB
    /// frame cap rejects anything near it on the wire).
    pub fn put_u16_slice(&mut self, vs: &[u16]) {
        debug_assert!(vs.len() <= 0xFFFF_FFFF, "slice exceeds the u32 prefix");
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u16(v);
        }
    }

    /// Append a `u32`-length-prefixed `u32` slice (compact report form).
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        debug_assert!(vs.len() <= 0xFFFF_FFFF, "slice exceeds the u32 prefix");
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Append a `u32`-length-prefixed raw byte string (UTF-8 messages,
    /// nested wire blobs).
    pub fn put_bytes(&mut self, vs: &[u8]) {
        debug_assert!(
            vs.len() <= 0xFFFF_FFFF,
            "byte string exceeds the u32 prefix"
        );
        self.put_u32(vs.len() as u32);
        self.buf.extend_from_slice(vs);
    }

    /// Append pre-encoded bytes verbatim (no length prefix) — the
    /// concatenation form [`tag::REPORT_BATCH`] payloads use, where each
    /// constituent blob is already self-describing (tag + version +
    /// fields).
    pub fn put_raw(&mut self, vs: &[u8]) {
        self.buf.extend_from_slice(vs);
    }

    /// Append a length-prefixed `f64` slice (exact IEEE-754 bits).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Finish and take the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based decoder matching [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Open a blob, checking its type tag and version.
    pub fn with_tag(bytes: &'a [u8], expected: u8) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        r.expect_tag(expected)?;
        Ok(r)
    }

    /// Open a blob at its first byte without consuming anything — the
    /// cursor form used to walk several concatenated tagged blobs (a
    /// [`tag::REPORT_BATCH`] payload). Pair with [`Reader::expect_tag`]
    /// per blob and one [`Reader::finish`] at the end.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Consume a tag + version prelude at the cursor, checking the tag
    /// and that the version is one this build decodes
    /// ([`MIN_VERSION`]`..=`[`VERSION`]).
    pub fn expect_tag(&mut self, expected: u8) -> Result<(), WireError> {
        let found = self.get_u8().ok();
        if found != Some(expected) {
            return Err(WireError::WrongTag { expected, found });
        }
        let version = self.get_u8()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(WireError::UnsupportedVersion(version));
        }
        Ok(())
    }

    /// Peek at a blob's type tag without consuming anything.
    pub fn peek_tag(bytes: &[u8]) -> Option<u8> {
        bytes.first().copied()
    }

    /// Peek the byte at the cursor (the next blob's tag in a
    /// concatenated batch payload) without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        // `get` (not direct slicing) keeps a corrupt length from ever
        // panicking the decoder: an out-of-range request is `Truncated`.
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let out = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Validate a slice length prefix against the bytes actually
    /// remaining — comparing in `u64`, so a prefix above `usize::MAX`
    /// can never truncate into a plausible small length on 32-bit
    /// targets — then narrow it for use as an element count.
    fn checked_len(&self, len: u64, elem_bytes: u64) -> Result<usize, WireError> {
        let remaining = (self.bytes.len() - self.pos) as u64;
        let needed = len.checked_mul(elem_bytes).ok_or(WireError::Truncated)?;
        if needed > remaining {
            return Err(WireError::Truncated);
        }
        Ok(len as usize)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let bytes = self.take(2)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u16::from_le_bytes(bytes))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        let bytes = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(i64::from_le_bytes(bytes))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed `u64` vector, rejecting absurd lengths
    /// before allocating.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let prefix = self.get_u64()?;
        let len = self.checked_len(prefix, 8)?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Read a length-prefixed `i64` vector.
    pub fn get_i64_vec(&mut self) -> Result<Vec<i64>, WireError> {
        let prefix = self.get_u64()?;
        let len = self.checked_len(prefix, 8)?;
        (0..len).map(|_| self.get_i64()).collect()
    }

    /// Read a `u32`-length-prefixed `u16` vector, rejecting absurd
    /// lengths before allocating.
    pub fn get_u16_vec(&mut self) -> Result<Vec<u16>, WireError> {
        let mut out = Vec::new();
        self.get_u16_vec_into(&mut out)?;
        Ok(out)
    }

    /// Like [`Reader::get_u16_vec`], but decode into a caller-owned
    /// buffer (cleared first), reusing its capacity — the
    /// zero-allocation form the batched ingest scratch uses.
    pub fn get_u16_vec_into(&mut self, out: &mut Vec<u16>) -> Result<(), WireError> {
        let prefix = self.get_u32()?;
        let len = self.checked_len(u64::from(prefix), 2)?;
        out.clear();
        out.reserve(len);
        for _ in 0..len {
            out.push(self.get_u16()?);
        }
        Ok(())
    }

    /// Read a `u32`-length-prefixed `u32` vector, rejecting absurd
    /// lengths before allocating.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let mut out = Vec::new();
        self.get_u32_vec_into(&mut out)?;
        Ok(out)
    }

    /// Like [`Reader::get_u32_vec`], but decode into a caller-owned
    /// buffer (cleared first), reusing its capacity.
    pub fn get_u32_vec_into(&mut self, out: &mut Vec<u32>) -> Result<(), WireError> {
        let prefix = self.get_u32()?;
        let len = self.checked_len(u64::from(prefix), 4)?;
        out.clear();
        out.reserve(len);
        for _ in 0..len {
            out.push(self.get_u32()?);
        }
        Ok(())
    }

    /// Read a `u32`-length-prefixed raw byte string, rejecting absurd
    /// lengths before allocating.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let prefix = self.get_u32()?;
        let len = self.checked_len(u64::from(prefix), 1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed `f64` vector, rejecting absurd lengths
    /// before allocating.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let prefix = self.get_u64()?;
        let len = self.checked_len(prefix, 8)?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Assert the whole blob was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        let left = self.bytes.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(left))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_type() {
        let mut w = Writer::with_tag(0x7F);
        w.put_u8(3);
        w.put_u32(1 << 30);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(0.1 + 0.2); // not representable exactly — bits must survive
        w.put_u64_slice(&[1, 2, 3]);
        w.put_i64_slice(&[-1, 0, 1]);
        let bytes = w.into_bytes();

        let mut r = Reader::with_tag(&bytes, 0x7F).unwrap();
        assert_eq!(r.get_u8().unwrap(), 3);
        assert_eq!(r.get_u32().unwrap(), 1 << 30);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.get_u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_i64_vec().unwrap(), vec![-1, 0, 1]);
        r.finish().unwrap();
    }

    #[test]
    fn rejects_wrong_tag_truncation_and_trailing() {
        let bytes = Writer::with_tag(tag::INP_RR).into_bytes();
        assert!(matches!(
            Reader::with_tag(&bytes, tag::INP_PS),
            Err(WireError::WrongTag { .. })
        ));
        assert!(matches!(
            Reader::with_tag(&[], tag::INP_RR),
            Err(WireError::WrongTag { found: None, .. })
        ));

        let mut r = Reader::with_tag(&bytes, tag::INP_RR).unwrap();
        assert_eq!(r.get_u64(), Err(WireError::Truncated));

        let mut w = Writer::with_tag(tag::INP_RR);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let r = Reader::with_tag(&bytes, tag::INP_RR).unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn rejects_future_versions() {
        let mut bytes = Writer::with_tag(tag::OLH).into_bytes();
        bytes[1] = VERSION + 1;
        assert!(matches!(
            Reader::with_tag(&bytes, tag::OLH),
            Err(WireError::UnsupportedVersion(v)) if v == VERSION + 1
        ));
    }

    #[test]
    fn accepts_every_supported_legacy_version() {
        // A v1 blob (the pre-batch wire format) must keep decoding: the
        // field layouts are unchanged, only the version byte moved.
        let mut w = Writer::with_tag(tag::OLH);
        w.put_u64(77);
        for version in MIN_VERSION..=VERSION {
            let mut bytes = w.buf.clone();
            bytes[1] = version;
            let mut r = Reader::with_tag(&bytes, tag::OLH).unwrap();
            assert_eq!(r.get_u64().unwrap(), 77);
            r.finish().unwrap();
        }
        let mut bytes = w.buf.clone();
        bytes[1] = MIN_VERSION - 1;
        assert!(matches!(
            Reader::with_tag(&bytes, tag::OLH),
            Err(WireError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn cursor_walks_concatenated_blobs() {
        // Three self-describing blobs back to back — the REPORT_BATCH
        // payload shape — read with one cursor and a single finish.
        let mut batch = Vec::new();
        for v in [3u64, 5, 7] {
            let mut w = Writer::with_tag(tag::REPORT_OLH);
            w.put_u64(v);
            batch.extend_from_slice(&w.into_bytes());
        }
        let mut r = Reader::new(&batch);
        for v in [3u64, 5, 7] {
            assert_eq!(r.peek(), Some(tag::REPORT_OLH));
            r.expect_tag(tag::REPORT_OLH).unwrap();
            assert_eq!(r.get_u64().unwrap(), v);
        }
        assert_eq!(r.peek(), None);
        assert_eq!(r.remaining(), 0);
        r.finish().unwrap();

        // A wrong tag mid-batch names both sides; an empty cursor
        // reports `found: None` like the slice form.
        let mut r = Reader::new(&batch);
        assert!(matches!(
            r.expect_tag(tag::REPORT_CMS),
            Err(WireError::WrongTag {
                expected: tag::REPORT_CMS,
                found: Some(tag::REPORT_OLH)
            })
        ));
        let mut empty = Reader::new(&[]);
        assert!(matches!(
            empty.expect_tag(tag::REPORT_OLH),
            Err(WireError::WrongTag { found: None, .. })
        ));
    }

    #[test]
    fn put_raw_appends_verbatim() {
        let mut inner = Writer::with_tag(tag::REPORT_OLH);
        inner.put_u64(9);
        let inner = inner.into_bytes();
        let mut w = Writer::with_tag(tag::REPORT_BATCH);
        w.put_u32(1);
        w.put_raw(&inner);
        let bytes = w.into_bytes();
        let mut r = Reader::with_tag(&bytes, tag::REPORT_BATCH).unwrap();
        assert_eq!(r.get_u32().unwrap(), 1);
        assert_eq!(r.remaining(), inner.len());
        r.expect_tag(tag::REPORT_OLH).unwrap();
        assert_eq!(r.get_u64().unwrap(), 9);
        r.finish().unwrap();
    }

    #[test]
    fn oversized_length_prefix_fails_before_allocating() {
        let mut w = Writer::with_tag(0x01);
        w.put_u64(u64::MAX); // claims ~2^64 elements
        let bytes = w.into_bytes();
        let mut r = Reader::with_tag(&bytes, 0x01).unwrap();
        assert_eq!(r.get_u64_vec(), Err(WireError::Truncated));

        // Same overflow guard on the compact u16/u32 report slices.
        let mut w = Writer::with_tag(0x01);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::with_tag(&bytes, 0x01).unwrap();
        assert_eq!(r.get_u16_vec(), Err(WireError::Truncated));
        let mut r = Reader::with_tag(&bytes, 0x01).unwrap();
        assert_eq!(r.get_u32_vec(), Err(WireError::Truncated));
    }

    #[test]
    fn compact_slices_round_trip() {
        let mut w = Writer::with_tag(0x02);
        w.put_u16(513);
        w.put_u16_slice(&[7, 0, u16::MAX]);
        w.put_u32_slice(&[1, u32::MAX]);
        w.put_u16_slice(&[]);
        let bytes = w.into_bytes();
        let mut r = Reader::with_tag(&bytes, 0x02).unwrap();
        assert_eq!(r.get_u16().unwrap(), 513);
        assert_eq!(r.get_u16_vec().unwrap(), vec![7, 0, u16::MAX]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, u32::MAX]);
        assert_eq!(r.get_u16_vec().unwrap(), Vec::<u16>::new());
        r.finish().unwrap();
    }

    #[test]
    fn bytes_and_f64_slices_round_trip_and_guard_lengths() {
        let mut w = Writer::with_tag(0x04);
        w.put_bytes(b"control-plane message");
        w.put_bytes(&[]);
        w.put_f64_slice(&[0.25, -1.5, f64::MAX]);
        let bytes = w.into_bytes();
        let mut r = Reader::with_tag(&bytes, 0x04).unwrap();
        assert_eq!(r.get_bytes().unwrap(), b"control-plane message");
        assert_eq!(r.get_bytes().unwrap(), Vec::<u8>::new());
        assert_eq!(r.get_f64_vec().unwrap(), vec![0.25, -1.5, f64::MAX]);
        r.finish().unwrap();

        // Oversized length prefixes fail before allocating.
        let mut w = Writer::with_tag(0x04);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::with_tag(&bytes, 0x04).unwrap();
        assert_eq!(r.get_bytes(), Err(WireError::Truncated));
        let mut w = Writer::with_tag(0x04);
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::with_tag(&bytes, 0x04).unwrap();
        assert_eq!(r.get_f64_vec(), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_mid_element_is_detected() {
        let mut w = Writer::with_tag(0x03);
        w.put_u16_slice(&[1, 2, 3]);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 1); // cut the last element short
        let mut r = Reader::with_tag(&bytes, 0x03).unwrap();
        assert_eq!(r.get_u16_vec(), Err(WireError::Truncated));
    }
}
