//! `InpEM` — the Fanti et al. baseline (§4.4): budget-split randomized
//! response on every attribute, decoded by expectation maximization.
//!
//! Client: each of the `d` bits goes through `(ε/d)`-RR independently
//! (budget splitting; sequential composition gives ε-LDP — verified in
//! `ldp-mechanisms::budget`). Aggregator: stores the reported rows; for a
//! target marginal `β` it counts the observed bit-combinations on `β`'s
//! attributes and runs EM against the known RR channel.
//!
//! As the paper observes, the method has no worst-case accuracy guarantee
//! and a characteristic failure mode: when the per-bit budget is small the
//! channel is nearly uninformative, the first EM update moves the uniform
//! prior by less than the convergence threshold Ω, and the procedure
//! "immediately terminates after a single step and outputs the prior".
//! [`EmDiagnostics::failed_immediately`] captures exactly this (Table 3).

use crate::wire::{tag, Reader, WireError, Writer};
use crate::{Accumulator, MarginalEstimator, MarginalSetEstimate};
use ldp_bits::{compress, masks_of_weight, Mask};
use ldp_mechanisms::{budget::split_epsilon, BinaryRandomizedResponse};
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration of the `InpEM` mechanism.
#[derive(Clone, Debug, PartialEq)]
pub struct InpEm {
    d: u32,
    rr: BinaryRandomizedResponse,
    omega: f64,
    max_iters: usize,
}

impl InpEm {
    /// ε-LDP instance over `d` attributes with the paper's convergence
    /// threshold `Ω = 0.00001` (§5.4).
    #[must_use]
    pub fn new(d: u32, eps: f64) -> Self {
        Self::with_convergence(d, eps, 1e-5, 100_000)
    }

    /// Choose the EM convergence threshold and iteration cap explicitly
    /// (the paper notes that weakening Ω "even slightly led to much worse
    /// accuracy").
    #[must_use]
    pub fn with_convergence(d: u32, eps: f64, omega: f64, max_iters: usize) -> Self {
        assert!((1..=63).contains(&d));
        assert!(omega > 0.0 && max_iters >= 1);
        InpEm {
            d,
            rr: BinaryRandomizedResponse::for_epsilon(split_epsilon(eps, d)),
            omega,
            max_iters,
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The per-bit RR primitive (budget ε/d).
    #[must_use]
    pub fn per_bit_rr(&self) -> BinaryRandomizedResponse {
        self.rr
    }

    /// Client: flip every attribute independently with `(ε/d)`-RR.
    ///
    /// `perturb_bit` keeps a bit with probability `p` and flips it
    /// otherwise, so the report is `row XOR flips` where `flips` is a
    /// `d`-lane `Bernoulli(1 − p)` mask — drawn 64 lanes per RNG word
    /// by [`bernoulli_word`](ldp_sampling::bernoulli_word) instead of
    /// one `gen_bool` per attribute.
    #[inline]
    pub fn encode<R: Rng + ?Sized>(&self, row: u64, rng: &mut R) -> u64 {
        row ^ ldp_sampling::bernoulli_word(rng, self.flip_fixed(), self.d)
    }

    /// Fixed-point flip probability for the lane-oriented encode (the
    /// batch kernel hoists this out of its per-report loop).
    #[inline]
    #[must_use]
    pub fn flip_fixed(&self) -> u64 {
        ldp_sampling::bernoulli_fixed(1.0 - self.rr.keep_probability())
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> InpEmAggregator {
        InpEmAggregator {
            config: self.clone(),
            counts: BTreeMap::new(),
            n: 0,
            dense: Vec::new(),
            touched: Vec::new(),
        }
    }
}

/// Aggregator for [`InpEm`]: multiplicities of the collected (perturbed)
/// rows.
///
/// EM decoding only ever looks at *how often* each perturbed row was
/// reported, so the aggregator keeps a sorted count map instead of the
/// raw report list: memory is bounded by the number of *distinct*
/// reported rows (at most `min(N, 2^d)`), and the state — including its
/// [`Accumulator::to_bytes`] form — is identical for every ingest order
/// and shard partition.
#[derive(Clone, Debug)]
pub struct InpEmAggregator {
    config: InpEm,
    counts: BTreeMap<u64, u64>,
    n: u64,
    /// Group-by-value scratch for the batch kernel, owned by the
    /// aggregator so steady-state batches allocate nothing: `dense` is
    /// all-zeros and `touched` empty between calls (the fold re-zeroes
    /// exactly the cells it used). Never serialized; carries no state.
    dense: Vec<u64>,
    touched: Vec<u64>,
}

/// Largest `d` for which the batch kernel groups reports through a
/// dense `2^d`-cell scratch before touching the count map.
const DENSE_SCRATCH_MAX_D: u32 = 16;

impl InpEmAggregator {
    /// Absorb one reported row.
    #[inline]
    pub fn absorb(&mut self, report: u64) {
        *self.counts.entry(report).or_insert(0) += 1;
        self.n += 1;
    }

    /// Batched ingest, grouped by reported value: count the batch into
    /// the aggregator's dense `2^d` scratch first, then fold only the
    /// *distinct* rows into the sorted count map — `k` distinct values
    /// cost `k` map updates instead of one `O(log)` map probe per
    /// report. The scratch lives on the aggregator (allocated on the
    /// first batch, re-zeroed cell-by-cell during the fold), so
    /// steady-state batches allocate nothing. Falls back to the serial
    /// loop when the domain is too large for a dense scratch. State is
    /// byte-identical to absorbing each report in order.
    pub fn absorb_batch(&mut self, reports: &[u64]) {
        self.absorb_batch_iter(reports.iter().copied());
    }

    /// Iterator form of [`InpEmAggregator::absorb_batch`], so
    /// type-erased report buffers (`MechanismReport` /
    /// `PipelineReport` slices) reach the group-by-value kernel without
    /// first being gathered into a `u64` buffer.
    pub fn absorb_batch_iter<I: ExactSizeIterator<Item = u64>>(&mut self, reports: I) {
        if self.config.d > DENSE_SCRATCH_MAX_D || reports.len() == 0 {
            for r in reports {
                InpEmAggregator::absorb(self, r);
            }
            return;
        }
        let cells = 1usize << self.config.d;
        if self.dense.len() != cells {
            // First batch: allocate once; the scratch then stays with
            // the aggregator, all-zeros between calls.
            self.dense = vec![0u64; cells];
        }
        let mut n = 0u64;
        for r in reports {
            n += 1;
            // Compare in u64 (not a truncating `as usize` index) so an
            // out-of-domain row from a corrupt wire report can never
            // alias an in-domain cell on 32-bit targets; such rows are
            // counted straight into the map, exactly as the serial
            // loop would.
            if r < cells as u64 {
                let slot = &mut self.dense[r as usize];
                if *slot == 0 {
                    self.touched.push(r);
                }
                *slot += 1;
            } else {
                *self.counts.entry(r).or_insert(0) += 1;
            }
        }
        for &r in &self.touched {
            *self.counts.entry(r).or_insert(0) += self.dense[r as usize];
            self.dense[r as usize] = 0;
        }
        self.touched.clear();
        self.n += n;
        // The scratch must leave this call exactly as it entered: fully
        // zeroed and with no touched-list residue. A cell the fold
        // missed would leak this batch's counts into the next one and
        // break partition invariance; the debug-mode suite doubles as a
        // dynamic check of that invariant.
        debug_assert!(self.touched.is_empty());
        debug_assert!(
            self.dense.iter().all(|&c| c == 0),
            "dense scratch not re-zeroed after the batch fold"
        );
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: InpEmAggregator) {
        for (row, count) in other.counts {
            *self.counts.entry(row).or_insert(0) += count;
        }
        self.n += other.n;
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Wrap the report multiplicities for on-demand EM decoding.
    #[must_use]
    pub fn finish(self) -> EmEstimate {
        EmEstimate {
            config: self.config,
            counts: self.counts,
            n: self.n,
        }
    }
}

impl Accumulator for InpEmAggregator {
    type Report = u64;
    type Output = EmEstimate;

    fn absorb(&mut self, report: &u64) {
        InpEmAggregator::absorb(self, *report);
    }

    fn absorb_batch(&mut self, reports: &[u64]) {
        InpEmAggregator::absorb_batch(self, reports);
    }

    fn merge(&mut self, other: Self) {
        InpEmAggregator::merge(self, other);
    }

    fn report_count(&self) -> u64 {
        self.n
    }

    fn finalize(self) -> EmEstimate {
        self.finish()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_tag(tag::INP_EM);
        w.put_u32(self.config.d);
        w.put_f64(self.config.rr.keep_probability());
        w.put_f64(self.config.omega);
        w.put_u64(self.config.max_iters as u64);
        w.put_u64(self.n);
        w.put_u64(self.counts.len() as u64);
        for (&row, &count) in &self.counts {
            w.put_u64(row);
            w.put_u64(count);
        }
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::with_tag(bytes, tag::INP_EM)?;
        let d = r.get_u32()?;
        let p = r.get_f64()?;
        let omega = r.get_f64()?;
        let max_iters = r.get_u64()? as usize;
        let n = r.get_u64()?;
        let distinct = r.get_u64()? as usize;
        let mut counts = BTreeMap::new();
        let mut total = 0u64;
        for _ in 0..distinct {
            let row = r.get_u64()?;
            let count = r.get_u64()?;
            if counts.insert(row, count).is_some() {
                return Err(WireError::Invalid("InpEM duplicate row key"));
            }
            total = total
                .checked_add(count)
                .ok_or(WireError::Invalid("InpEM count overflow"))?;
        }
        r.finish()?;
        if !(1..=63).contains(&d) {
            return Err(WireError::Invalid("InpEM dimension"));
        }
        if !(p > 0.5 && p < 1.0) {
            return Err(WireError::Invalid("InpEM keep probability"));
        }
        if omega.is_nan() || omega <= 0.0 || max_iters == 0 {
            return Err(WireError::Invalid("InpEM convergence parameters"));
        }
        if total != n {
            return Err(WireError::Invalid("InpEM count total"));
        }
        Ok(InpEmAggregator {
            config: InpEm {
                d,
                rr: BinaryRandomizedResponse::with_keep_probability(p),
                omega,
                max_iters,
            },
            counts,
            n,
            dense: Vec::new(),
            touched: Vec::new(),
        })
    }
}

/// Diagnostics of one EM decode (Table 3 and the §5.4 discussion).
#[derive(Clone, Debug, PartialEq)]
pub struct EmDiagnostics {
    /// The decoded marginal distribution.
    pub estimate: Vec<f64>,
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Whether the Ω criterion was met within the iteration cap.
    pub converged: bool,
    /// The paper's failure mode: converged after a single iteration,
    /// i.e. the output is (numerically) the uniform prior.
    pub failed_immediately: bool,
}

/// Estimate produced by `InpEM`: reported-row multiplicities plus
/// channel knowledge; every marginal query runs a fresh EM decode.
#[derive(Clone, Debug, PartialEq)]
pub struct EmEstimate {
    config: InpEm,
    counts: BTreeMap<u64, u64>,
    n: u64,
}

impl EmEstimate {
    /// Run the EM decoder for one marginal, returning full diagnostics.
    #[must_use]
    pub fn decode(&self, beta: Mask) -> EmDiagnostics {
        assert!(
            beta.is_subset_of(Mask::full(self.config.d)) && !beta.is_empty(),
            "invalid marginal mask"
        );
        assert!(self.n > 0, "no reports absorbed");
        let k = beta.weight();
        let cells = 1usize << k;

        // Observed combination counts on β's attributes.
        let mut obs = vec![0.0f64; cells];
        for (&r, &count) in &self.counts {
            obs[compress(r, beta.bits()) as usize] += count as f64;
        }
        let n: f64 = self.n as f64;

        // Channel by Hamming distance: P(y|x) = p^{k−h} (1−p)^{h},
        // h = |x ⊕ y|.
        let p = self.config.rr.keep_probability();
        let chan: Vec<f64> = (0..=k)
            .map(|h| p.powi((k - h) as i32) * (1.0 - p).powi(h as i32))
            .collect();

        // EM from the uniform prior (expectation: posterior of x given y;
        // maximization: remarginalize over observed y's).
        let mut pi = vec![1.0 / cells as f64; cells];
        let mut next = vec![0.0f64; cells];
        let mut iterations = 0usize;
        let mut converged = false;
        while iterations < self.config.max_iters {
            iterations += 1;
            next.iter_mut().for_each(|v| *v = 0.0);
            for (y, &o) in obs.iter().enumerate() {
                if o == 0.0 {
                    continue;
                }
                let denom: f64 = (0..cells)
                    .map(|x| pi[x] * chan[(x ^ y).count_ones() as usize])
                    .sum();
                if denom <= 0.0 {
                    continue;
                }
                let w = o / denom;
                for (x, nx) in next.iter_mut().enumerate() {
                    *nx += w * pi[x] * chan[(x ^ y).count_ones() as usize];
                }
            }
            for v in next.iter_mut() {
                *v /= n;
            }
            let delta = pi
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            std::mem::swap(&mut pi, &mut next);
            if delta < self.config.omega {
                converged = true;
                break;
            }
        }
        EmDiagnostics {
            estimate: pi,
            iterations,
            converged,
            failed_immediately: converged && iterations == 1,
        }
    }

    /// Decode every k-way marginal, returning the estimate plus the count
    /// of immediate failures (one Table 3 row).
    #[must_use]
    pub fn decode_all_kway(&self, k: u32) -> (MarginalSetEstimate, usize) {
        let mut failed = 0usize;
        let tables = masks_of_weight(self.config.d, k)
            .map(|beta| {
                let diag = self.decode(beta);
                failed += usize::from(diag.failed_immediately);
                diag.estimate
            })
            .collect();
        (MarginalSetEstimate::new(self.config.d, k, tables), failed)
    }
}

impl MarginalEstimator for EmEstimate {
    fn d(&self) -> u32 {
        self.config.d
    }

    fn max_k(&self) -> u32 {
        self.config.d
    }

    fn marginal(&self, beta: Mask) -> Vec<f64> {
        self.decode(beta).estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_data::{taxi::TaxiGenerator, BinaryDataset};
    use ldp_transform::total_variation_distance;
    use rand::{rngs::StdRng, SeedableRng};

    fn run(mech: &InpEm, rows: &[u64], seed: u64) -> EmEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = mech.aggregator();
        for &row in rows {
            agg.absorb(mech.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn decodes_accurately_with_generous_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = TaxiGenerator::default().generate(100_000, &mut rng);
        // ε = 8 over d = 8 → per-bit ε = 1: informative channel.
        let mech = InpEm::new(8, 8.0);
        let est = run(&mech, ds.rows(), 1);
        let beta = Mask::from_attrs(&[5, 6]);
        let diag = est.decode(beta);
        assert!(diag.converged);
        assert!(!diag.failed_immediately);
        let tvd = total_variation_distance(&diag.estimate, &ds.true_marginal(beta));
        assert!(tvd < 0.05, "tvd {tvd}");
    }

    #[test]
    fn estimates_are_distributions() {
        let rows = vec![0b01u64; 5_000];
        let mech = InpEm::new(2, 2.0);
        let est = run(&mech, &rows, 2);
        let m = est.marginal(Mask::full(2));
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(m.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn fails_immediately_at_tiny_budget() {
        // Table 3 regime: d = 16, ε = 0.1 → per-bit ε = 0.00625; the
        // channel is indistinguishable from uniform and EM stops at the
        // prior.
        let mut rng = StdRng::seed_from_u64(3);
        let ds = TaxiGenerator::default()
            .generate(20_000, &mut rng)
            .duplicate_columns(16);
        let mech = InpEm::new(16, 0.1);
        let est = run(&mech, ds.rows(), 4);
        let diag = est.decode(Mask::from_attrs(&[0, 1]));
        assert!(diag.failed_immediately, "iterations = {}", diag.iterations);
        // Output is the uniform prior.
        for v in &diag.estimate {
            assert!((v - 0.25).abs() < 0.01);
        }
    }

    #[test]
    fn iteration_counts_are_large_at_practical_budgets() {
        // §5.4: InpEM is "slow to apply, taking several thousand or tens
        // of thousands of iterations to converge" at practical ε —
        // compared to a generous budget where the channel is informative
        // and EM converges fast. (The count is not monotone in ε: at very
        // small budgets the fixed point is close to the uniform start.)
        let mut rng = StdRng::seed_from_u64(5);
        let ds = TaxiGenerator::default().generate(30_000, &mut rng);
        let beta = Mask::from_attrs(&[1, 2]);
        let mut iters = Vec::new();
        for eps in [8.0, 2.0] {
            let mech = InpEm::new(8, eps);
            let est = run(&mech, ds.rows(), 6);
            iters.push(est.decode(beta).iterations);
        }
        assert!(iters[0] < 1_000, "generous budget: {iters:?}");
        assert!(iters[1] > 1_000, "practical budget: {iters:?}");
    }

    #[test]
    fn decode_all_counts_failures() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = TaxiGenerator::default()
            .generate(10_000, &mut rng)
            .duplicate_columns(12);
        let mech = InpEm::new(12, 0.2);
        let est = run(&mech, ds.rows(), 8);
        let (set, failed) = est.decode_all_kway(2);
        assert_eq!(set.marginals().len(), 66);
        assert!(failed > 0, "expected some immediate failures at ε = 0.2");
    }

    #[test]
    fn batch_counts_out_of_domain_rows_like_serial() {
        // Rows above 2^d (possible only from a corrupt wire report) miss
        // the dense scratch; the kernel must still count them exactly as
        // the serial loop does.
        let mech = InpEm::new(4, 1.0);
        let reports = vec![3u64, 1 << 40, 3, u64::MAX, 5, 3];
        let mut serial = mech.aggregator();
        for &r in &reports {
            serial.absorb(r);
        }
        let mut batched = mech.aggregator();
        batched.absorb_batch(&reports);
        assert_eq!(serial.to_bytes(), batched.to_bytes());
        assert_eq!(batched.n(), reports.len());
    }

    #[test]
    fn from_bytes_rejects_overflowing_counts() {
        // A crafted blob whose per-row counts wrap u64 must come back as
        // a WireError, not a panic or a state that defeats the n check.
        use crate::wire::{tag, Writer};
        let mut w = Writer::with_tag(tag::INP_EM);
        w.put_u32(2);
        w.put_f64(0.7);
        w.put_f64(1e-5);
        w.put_u64(100);
        w.put_u64(5); // claimed n
        w.put_u64(2); // distinct rows
        w.put_u64(0);
        w.put_u64(u64::MAX);
        w.put_u64(1);
        w.put_u64(6); // wraps to 5 if summed unchecked
        assert!(<InpEmAggregator as crate::Accumulator>::from_bytes(&w.into_bytes()).is_err());
    }

    #[test]
    fn noiseless_channel_recovers_empirical_marginal() {
        // With p extremely close to 1 the EM fixed point is (numerically)
        // the observed marginal itself.
        let rows = vec![0b10u64, 0b10, 0b01, 0b10];
        let ds = BinaryDataset::new(2, rows.clone());
        let mech = InpEm::with_convergence(2, 60.0, 1e-9, 10_000);
        let est = run(&mech, &rows, 9);
        let m = est.marginal(Mask::full(2));
        let truth = ds.true_marginal(Mask::full(2));
        for (a, b) in m.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
