//! Batched encode kernels: serialize many users' reports straight into
//! one reusable [`tag::REPORT_BATCH`] frame buffer.
//!
//! This mirrors the `absorb_batch` side of the ingest path (PR 5): the
//! serial client path allocates a [`crate::MechanismReport`] plus a
//! `to_bytes` `Vec` per user and then concatenates them; the kernels
//! here hoist the per-report branchy setup (probability quantization,
//! dispatch) out of the loop and write each report's bytes directly
//! into a caller-owned [`Writer`], allocating nothing per report in
//! steady state. Every report is still encoded under its own
//! `user_rng(seed, user)` stream, so the bytes are identical to the
//! serial loop (`tests/encode_kernels.rs` proves this per mechanism
//! under random batch chunkings).
//!
//! This file is covered by the `ldp-lint` hot-path panic scan: no
//! indexing, no unwraps, no lossy counts.

use crate::wire::{tag, Writer};
use crate::{user_rng, Mechanism};

impl Mechanism {
    /// Serialize one user's report for `row` directly into `w`,
    /// byte-identical to `self.encode(row, rng).to_bytes()` appended at
    /// the writer's current position.
    pub fn encode_report_into<R: rand::Rng + ?Sized>(&self, row: u64, rng: &mut R, w: &mut Writer) {
        match self {
            Mechanism::InpRr(m) => {
                w.put_tag(tag::REPORT_INP_RR);
                let prefix = w.len();
                w.put_u32(0);
                let mut count = 0u32;
                m.perturbed_ones(row, rng, |cell| {
                    w.put_u32(cell);
                    count = count.saturating_add(1);
                });
                w.patch_u32(prefix, count);
            }
            Mechanism::InpPs(m) => {
                w.put_tag(tag::REPORT_INP_PS);
                w.put_u64(m.encode(row, rng));
            }
            Mechanism::InpHt(m) => {
                let r = m.encode(row, rng);
                w.put_tag(tag::REPORT_INP_HT);
                w.put_u32(r.coefficient);
                w.put_u8(u8::from(r.sign_positive));
            }
            Mechanism::MargRr(m) => {
                let (marginal, cell) = m.sample_marginal(row, rng);
                w.put_tag(tag::REPORT_MARG_RR);
                w.put_u32(marginal);
                let prefix = w.len();
                w.put_u32(0);
                let mut count = 0u32;
                m.perturb_table(cell, rng, |c| {
                    w.put_u16(c);
                    count = count.saturating_add(1);
                });
                w.patch_u32(prefix, count);
            }
            Mechanism::MargPs(m) => {
                let r = m.encode(row, rng);
                w.put_tag(tag::REPORT_MARG_PS);
                w.put_u32(r.marginal);
                w.put_u16(r.cell);
            }
            Mechanism::MargHt(m) => {
                let r = m.encode(row, rng);
                w.put_tag(tag::REPORT_MARG_HT);
                w.put_u32(r.marginal);
                w.put_u16(r.coefficient);
                w.put_u8(u8::from(r.sign_positive));
            }
            Mechanism::InpEm(m) => {
                w.put_tag(tag::REPORT_INP_EM);
                w.put_u64(m.encode(row, rng));
            }
        }
    }

    /// Encode a batch of rows into `w` as one complete
    /// [`tag::REPORT_BATCH`] frame payload (the writer is reset first,
    /// keeping its allocation). Row `i` is encoded under
    /// `user_rng(seed, first_user + i)`, so chunking a population into
    /// batches of any size produces exactly the bytes of the serial
    /// per-user loop; the frame is byte-identical to
    /// `encode_report_batch` over the serial reports' `to_bytes` blobs.
    pub fn encode_batch(&self, rows: &[u64], seed: u64, first_user: u64, w: &mut Writer) {
        w.reset_with_tag(tag::REPORT_BATCH);
        w.put_u32(u32::try_from(rows.len()).unwrap_or(u32::MAX));
        match self {
            Mechanism::InpRr(m) => {
                for (i, &row) in rows.iter().enumerate() {
                    let mut rng = user_rng(seed, first_user.wrapping_add(i as u64));
                    w.put_tag(tag::REPORT_INP_RR);
                    let prefix = w.len();
                    w.put_u32(0);
                    let mut count = 0u32;
                    m.perturbed_ones(row, &mut rng, |cell| {
                        w.put_u32(cell);
                        count = count.saturating_add(1);
                    });
                    w.patch_u32(prefix, count);
                }
            }
            Mechanism::MargRr(m) => {
                for (i, &row) in rows.iter().enumerate() {
                    let mut rng = user_rng(seed, first_user.wrapping_add(i as u64));
                    let (marginal, cell) = m.sample_marginal(row, &mut rng);
                    w.put_tag(tag::REPORT_MARG_RR);
                    w.put_u32(marginal);
                    let prefix = w.len();
                    w.put_u32(0);
                    let mut count = 0u32;
                    m.perturb_table(cell, &mut rng, |c| {
                        w.put_u16(c);
                        count = count.saturating_add(1);
                    });
                    w.patch_u32(prefix, count);
                }
            }
            Mechanism::InpEm(m) => {
                // Fully branchless inner loop: one XOR mask per user,
                // with the fixed-point flip threshold hoisted.
                let fixed = m.flip_fixed();
                let d = m.d();
                for (i, &row) in rows.iter().enumerate() {
                    let mut rng = user_rng(seed, first_user.wrapping_add(i as u64));
                    w.put_tag(tag::REPORT_INP_EM);
                    w.put_u64(row ^ ldp_sampling::bernoulli_word(&mut rng, fixed, d));
                }
            }
            _ => {
                // Fixed-size reports (InpPS, InpHT, MargPS, MargHT):
                // the per-report sampling is already a handful of draws,
                // so the win is skipping the report/`Vec` round trip.
                for (i, &row) in rows.iter().enumerate() {
                    let mut rng = user_rng(seed, first_user.wrapping_add(i as u64));
                    self.encode_report_into(row, &mut rng, w);
                }
            }
        }
    }
}
