//! Personalized privacy budgets for `InpHT`.
//!
//! §3.1 notes that "the model allows each user to operate with a
//! different privacy parameter" but states results for a shared ε. This
//! module implements the heterogeneous version the remark invites: each
//! user perturbs their sampled Hadamard coefficient with their *own*
//! `ε_u`, and the aggregator combines reports by inverse-variance
//! weighting — a report at keep-probability `p_u` has unbiased value
//! `±1/(2p_u − 1)` with variance at most `1/(2p_u − 1)²`, so the
//! minimum-variance unbiased combination weights it by `(2p_u − 1)²`.
//!
//! Users with looser budgets therefore contribute more, instead of the
//! whole population being throttled to the strictest user's ε.

use crate::HadamardEstimate;
use ldp_bits::{pm_one, WeightRank};
use ldp_mechanisms::BinaryRandomizedResponse;
use rand::Rng;

/// One report: coefficient index, perturbed sign, and the RR
/// keep-probability used (public metadata — it reveals the user's privacy
/// preference, not their data).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PersonalizedReport {
    /// Dense index of the sampled coefficient.
    pub coefficient: u32,
    /// The randomized-response output.
    pub sign_positive: bool,
    /// The user's RR keep-probability `p_u = e^{ε_u}/(1 + e^{ε_u})`.
    pub keep_probability: f64,
}

/// `InpHT` with per-user privacy budgets.
#[derive(Clone, Debug)]
pub struct PersonalizedInpHt {
    indexer: WeightRank,
}

impl PersonalizedInpHt {
    /// Collection over `d` attributes for marginals of order ≤ `k`.
    #[must_use]
    pub fn new(d: u32, k: u32) -> Self {
        assert!(k >= 1 && k <= d, "need 1 ≤ k ≤ d");
        PersonalizedInpHt {
            indexer: WeightRank::new(d, k),
        }
    }

    /// Domain dimensionality.
    #[must_use]
    pub fn d(&self) -> u32 {
        self.indexer.d()
    }

    /// Maximum marginal order.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.indexer.k()
    }

    /// Client: sample a coefficient and perturb with the user's own
    /// `ε_u`-RR.
    pub fn encode<R: Rng + ?Sized>(
        &self,
        row: u64,
        eps_user: f64,
        rng: &mut R,
    ) -> PersonalizedReport {
        let rr = BinaryRandomizedResponse::for_epsilon(eps_user);
        let idx = rng.gen_range(0..self.indexer.len());
        let alpha = self.indexer.mask(idx);
        let theta = pm_one(row, alpha.bits());
        PersonalizedReport {
            coefficient: idx as u32,
            sign_positive: rr.perturb_sign(theta, rng) > 0.0,
            keep_probability: rr.keep_probability(),
        }
    }

    /// Fresh aggregator.
    #[must_use]
    pub fn aggregator(&self) -> PersonalizedAggregator {
        PersonalizedAggregator {
            indexer: self.indexer.clone(),
            weighted_sums: vec![0.0; self.indexer.len()],
            weights: vec![0.0; self.indexer.len()],
        }
    }
}

/// Aggregator for [`PersonalizedInpHt`]: inverse-variance-weighted sums.
#[derive(Clone, Debug)]
pub struct PersonalizedAggregator {
    indexer: WeightRank,
    /// `Σ_u w_u · x̂_u` per coefficient, where `x̂_u = ±1/(2p_u−1)` and
    /// `w_u = (2p_u − 1)²` — so each term is `±(2p_u − 1)`.
    weighted_sums: Vec<f64>,
    /// `Σ_u w_u` per coefficient.
    weights: Vec<f64>,
}

impl PersonalizedAggregator {
    /// Absorb one report.
    pub fn absorb(&mut self, report: PersonalizedReport) {
        let s = 2.0 * report.keep_probability - 1.0;
        assert!(s > 0.0, "keep probability must exceed 1/2");
        let sign = if report.sign_positive { 1.0 } else { -1.0 };
        let i = report.coefficient as usize;
        // w · x̂ = (2p−1)² · sign/(2p−1) = sign · (2p−1).
        self.weighted_sums[i] += sign * s;
        self.weights[i] += s * s;
    }

    /// Fold another shard's aggregator into this one.
    pub fn merge(&mut self, other: PersonalizedAggregator) {
        for (a, b) in self.weighted_sums.iter_mut().zip(other.weighted_sums) {
            *a += b;
        }
        for (a, b) in self.weights.iter_mut().zip(other.weights) {
            *a += b;
        }
    }

    /// Weighted-average every coefficient.
    #[must_use]
    pub fn finish(self) -> HadamardEstimate {
        let coeffs = self
            .weighted_sums
            .iter()
            .zip(&self.weights)
            .map(|(&s, &w)| if w == 0.0 { 0.0 } else { s / w })
            .collect();
        HadamardEstimate::new(self.indexer, coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mean_kway_tvd, InpHt};
    use ldp_data::taxi::TaxiGenerator;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_budgets_match_inpht_statistically() {
        // With every user at the same ε, the weighted estimator reduces
        // to the plain InpHT mean: accuracy must match closely.
        let mut rng = StdRng::seed_from_u64(0);
        let data = TaxiGenerator::default().generate(80_000, &mut rng);
        let eps = 1.1;

        let p = PersonalizedInpHt::new(8, 2);
        let mut agg = p.aggregator();
        for &row in data.rows() {
            agg.absorb(p.encode(row, eps, &mut rng));
        }
        let tvd_personalized = mean_kway_tvd(&agg.finish(), &data, 2);

        let plain = InpHt::new(8, 2, eps);
        let mut agg = plain.aggregator();
        for &row in data.rows() {
            agg.absorb(plain.encode(row, &mut rng));
        }
        let tvd_plain = mean_kway_tvd(&agg.finish(), &data, 2);
        let ratio = (tvd_personalized / tvd_plain).max(tvd_plain / tvd_personalized);
        assert!(ratio < 1.6, "{tvd_personalized} vs {tvd_plain}");
    }

    #[test]
    fn estimator_is_unbiased_under_mixed_budgets() {
        // Point mass input: every coefficient is ±1 exactly; the weighted
        // mean must converge to it across a mixed-ε population.
        let mut rng = StdRng::seed_from_u64(1);
        let p = PersonalizedInpHt::new(3, 3);
        let mut agg = p.aggregator();
        for i in 0..120_000u64 {
            let eps = match i % 3 {
                0 => 0.3,
                1 => 1.0,
                _ => 3.0,
            };
            agg.absorb(p.encode(0b101, eps, &mut rng));
        }
        let est = agg.finish();
        for bits in 1u64..8 {
            let alpha = ldp_bits::Mask::new(bits);
            let truth = pm_one(0b101, bits);
            assert!(
                (est.coefficient(alpha) - truth).abs() < 0.1,
                "alpha={alpha}"
            );
        }
    }

    #[test]
    fn mixed_population_beats_min_epsilon_baseline() {
        // A population where 30% allow ε = 2.0 and 70% only ε = 0.3. The
        // conservative protocol runs everyone at ε = 0.3; the
        // personalized one exploits the loose users. Compare over reps.
        let mut rng = StdRng::seed_from_u64(2);
        let data = TaxiGenerator::default().generate(60_000, &mut rng);
        let reps = 4;
        let (mut tvd_pers, mut tvd_min) = (0.0, 0.0);
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(100 + r);
            let p = PersonalizedInpHt::new(8, 2);
            let mut agg = p.aggregator();
            for (i, &row) in data.rows().iter().enumerate() {
                let eps = if i % 10 < 3 { 2.0 } else { 0.3 };
                agg.absorb(p.encode(row, eps, &mut rng));
            }
            tvd_pers += mean_kway_tvd(&agg.finish(), &data, 2);

            let min = InpHt::new(8, 2, 0.3);
            let mut agg = min.aggregator();
            for &row in data.rows() {
                agg.absorb(min.encode(row, &mut rng));
            }
            tvd_min += mean_kway_tvd(&agg.finish(), &data, 2);
        }
        assert!(
            tvd_pers < tvd_min,
            "personalized {tvd_pers} vs min-eps {tvd_min}"
        );
    }

    #[test]
    fn per_user_reports_satisfy_their_own_epsilon() {
        // The report's keep probability is exactly the user's ε mapping.
        let mut rng = StdRng::seed_from_u64(3);
        let p = PersonalizedInpHt::new(4, 2);
        for eps in [0.2, 0.9, 2.5] {
            let r = p.encode(5, eps, &mut rng);
            let expect = eps.exp() / (1.0 + eps.exp());
            assert!((r.keep_probability - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = PersonalizedInpHt::new(5, 2);
        let reports: Vec<PersonalizedReport> = (0..2000u64)
            .map(|i| p.encode(i % 32, 0.5 + (i % 4) as f64 * 0.5, &mut rng))
            .collect();
        let mut whole = p.aggregator();
        let mut a = p.aggregator();
        let mut b = p.aggregator();
        for (i, &r) in reports.iter().enumerate() {
            whole.absorb(r);
            if i % 2 == 0 {
                a.absorb(r);
            } else {
                b.absorb(r);
            }
        }
        a.merge(b);
        let (ca, cw) = (a.finish(), whole.finish());
        for bits in 1u64..32 {
            let m = ldp_bits::Mask::new(bits);
            if m.weight() <= 2 {
                assert!((ca.coefficient(m) - cw.coefficient(m)).abs() < 1e-12);
            }
        }
    }
}
