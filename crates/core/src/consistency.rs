//! Consistency post-processing for per-marginal estimates.
//!
//! The `Marg*` mechanisms estimate each k-way marginal independently, so
//! two marginals that share attributes generally *disagree* on their
//! common sub-marginal — e.g. `C_{A,B}` and `C_{A,C}` imply different
//! 1-way tables for `A`. Barak et al. (PODS 2007), whose Fourier view the
//! paper builds on, resolve this in the coefficient domain: a shared
//! sub-marginal is determined by the shared Hadamard coefficients, so
//! averaging each coefficient's estimates across all marginals containing
//! it yields a *mutually consistent* set of tables (and, since each
//! per-marginal coefficient estimate is unbiased with independent noise,
//! averaging also reduces variance for the low-weight coefficients shared
//! by many marginals).
//!
//! This is postprocessing of already-private outputs, so it costs no
//! privacy budget. The `ablations` binary measures the accuracy gain.

use crate::{HadamardEstimate, MarginalEstimator, MarginalSetEstimate};
use ldp_bits::{compress, expand, Mask, WeightRank};
use ldp_transform::{fwht, marginal_from_coefficients};

/// Pool the per-marginal tables of a [`MarginalSetEstimate`] into one
/// global low-weight coefficient estimate: each scaled coefficient
/// `c_α` (`|α| ≤ k`) is the average of its estimates from every stored
/// marginal `β ⊇ α`.
#[must_use]
pub fn pool_coefficients(est: &MarginalSetEstimate) -> HadamardEstimate {
    let (d, k) = (est.d(), est.max_k());
    let indexer = WeightRank::new(d, k);
    let mut sums = vec![0.0f64; indexer.len()];
    let mut counts = vec![0u32; indexer.len()];
    let cells = 1usize << k;
    let mut local = vec![0.0f64; cells];
    for (i, &beta) in est.marginals().iter().enumerate() {
        // Local scaled coefficients of this marginal's table: for a table
        // summing to ~1, c_local[a] = Σ_γ (−1)^{⟨a,γ⟩} table[γ] — exactly
        // the unnormalized WHT.
        local.copy_from_slice(est.table(i));
        fwht(&mut local);
        for (a_local, &c) in local.iter().enumerate().skip(1) {
            let alpha = Mask::new(expand(a_local as u64, beta.bits()));
            let idx = indexer.index(alpha);
            sums[idx] += c;
            counts[idx] += 1;
        }
    }
    let coeffs = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / f64::from(c) })
        .collect();
    HadamardEstimate::new(indexer, coeffs)
}

/// Make a set of per-marginal tables mutually consistent (and typically
/// more accurate) by rebuilding every table from the pooled coefficients.
#[must_use]
pub fn make_consistent(est: &MarginalSetEstimate) -> MarginalSetEstimate {
    let pooled = pool_coefficients(est);
    let tables = est
        .marginals()
        .iter()
        .map(|&beta| marginal_from_coefficients(beta, |alpha| pooled.coefficient(alpha)))
        .collect();
    MarginalSetEstimate::new(est.d(), est.max_k(), tables)
}

/// Check mutual consistency: the maximum disagreement (L∞) between the
/// shared sub-marginal implied by any two stored marginals.
#[must_use]
pub fn max_inconsistency(est: &MarginalSetEstimate) -> f64 {
    let marginals = est.marginals();
    let mut worst = 0.0f64;
    for (i, &a) in marginals.iter().enumerate() {
        for (j, &b) in marginals.iter().enumerate().skip(i + 1) {
            let shared = a.intersect(b);
            if shared.is_empty() {
                continue;
            }
            let via_a = aggregate_to(est.table(i), a, shared);
            let via_b = aggregate_to(est.table(j), b, shared);
            for (x, y) in via_a.iter().zip(&via_b) {
                worst = worst.max((x - y).abs());
            }
        }
    }
    worst
}

/// Aggregate a locally-indexed table over `beta` down to `sub ⪯ beta`.
fn aggregate_to(table: &[f64], beta: Mask, sub: Mask) -> Vec<f64> {
    let local_sub = compress(sub.bits(), beta.bits());
    let mut out = vec![0.0; sub.table_len()];
    for (g, &v) in table.iter().enumerate() {
        out[compress(g as u64, local_sub) as usize] += v;
    }
    out
}

/// The residual coefficient mass a consistent rebuild discards: tables
/// disagreeing strongly indicate noisy estimates. Exposed for diagnostics.
#[must_use]
pub fn coefficient_spread(est: &MarginalSetEstimate) -> f64 {
    let (d, k) = (est.d(), est.max_k());
    let indexer = WeightRank::new(d, k);
    let mut mins = vec![f64::INFINITY; indexer.len()];
    let mut maxs = vec![f64::NEG_INFINITY; indexer.len()];
    let cells = 1usize << k;
    let mut local = vec![0.0f64; cells];
    for (i, &beta) in est.marginals().iter().enumerate() {
        local.copy_from_slice(est.table(i));
        fwht(&mut local);
        for (a_local, &c) in local.iter().enumerate().skip(1) {
            let alpha = Mask::new(expand(a_local as u64, beta.bits()));
            let idx = indexer.index(alpha);
            mins[idx] = mins[idx].min(c);
            maxs[idx] = maxs[idx].max(c);
        }
    }
    mins.iter()
        .zip(&maxs)
        .filter(|(mn, mx)| mn.is_finite() && mx.is_finite())
        .map(|(mn, mx)| mx - mn)
        .fold(0.0, f64::max)
}

/// `true` iff every pair of stored marginals agrees on shared
/// sub-marginals within `tol` (used by tests; consistent sets also answer
/// sub-marginal queries identically through every superset).
#[must_use]
pub fn is_consistent(est: &MarginalSetEstimate, tol: f64) -> bool {
    max_inconsistency(est) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mean_kway_tvd, MargPs};
    use ldp_bits::{masks_of_weight, submasks};
    use ldp_data::{taxi::TaxiGenerator, BinaryDataset};
    use rand::{rngs::StdRng, SeedableRng};

    fn noisy_margps_estimate(data: &BinaryDataset, eps: f64, seed: u64) -> MarginalSetEstimate {
        let mech = MargPs::new(data.d(), 2, eps);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agg = mech.aggregator();
        for &row in data.rows() {
            agg.absorb(mech.encode(row, &mut rng));
        }
        agg.finish()
    }

    #[test]
    fn exact_tables_are_already_consistent_and_unchanged() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = TaxiGenerator::default().generate(20_000, &mut rng);
        let tables: Vec<Vec<f64>> = masks_of_weight(8, 2)
            .map(|b| data.true_marginal(b))
            .collect();
        let est = MarginalSetEstimate::new(8, 2, tables);
        assert!(is_consistent(&est, 1e-9));
        let fixed = make_consistent(&est);
        for (i, beta) in masks_of_weight(8, 2).enumerate() {
            for (a, b) in est.table(i).iter().zip(fixed.table(i)) {
                assert!((a - b).abs() < 1e-9, "beta={beta}");
            }
        }
    }

    #[test]
    fn noisy_tables_become_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = TaxiGenerator::default().generate(50_000, &mut rng);
        let est = noisy_margps_estimate(&data, 1.1, 2);
        assert!(max_inconsistency(&est) > 1e-3, "noise should disagree");
        let fixed = make_consistent(&est);
        assert!(is_consistent(&fixed, 1e-9), "{}", max_inconsistency(&fixed));
    }

    #[test]
    fn consistency_improves_accuracy() {
        // Averaging shared coefficients across the C(d-1, k-1) marginals
        // containing them reduces variance — TVD should improve.
        let mut rng = StdRng::seed_from_u64(3);
        let data = TaxiGenerator::default().generate(60_000, &mut rng);
        let mut raw_sum = 0.0;
        let mut fixed_sum = 0.0;
        for r in 0..5 {
            let est = noisy_margps_estimate(&data, 1.1, 10 + r);
            raw_sum += mean_kway_tvd(&est, &data, 2);
            fixed_sum += mean_kway_tvd(&make_consistent(&est), &data, 2);
        }
        assert!(
            fixed_sum < raw_sum,
            "consistent {fixed_sum} vs raw {raw_sum}"
        );
    }

    #[test]
    fn pooled_coefficients_match_inpht_form() {
        // On exact tables, pooling recovers the exact low-weight scaled
        // coefficients of the full distribution.
        let mut rng = StdRng::seed_from_u64(4);
        let data = TaxiGenerator::default().generate(30_000, &mut rng);
        let tables: Vec<Vec<f64>> = masks_of_weight(8, 2)
            .map(|b| data.true_marginal(b))
            .collect();
        let est = MarginalSetEstimate::new(8, 2, tables);
        let pooled = pool_coefficients(&est);
        let full = ldp_transform::scaled_coefficients(&data.full_distribution());
        for alpha in submasks(Mask::full(8)) {
            if (1..=2).contains(&alpha.weight()) {
                assert!(
                    (pooled.coefficient(alpha) - full[alpha.bits() as usize]).abs() < 1e-9,
                    "alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn consistent_estimate_answers_submarginals_uniquely() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = TaxiGenerator::default().generate(40_000, &mut rng);
        let fixed = make_consistent(&noisy_margps_estimate(&data, 1.1, 6));
        // Aggregating any superset to a 1-way marginal gives the same
        // answer (definition of consistency).
        let target = Mask::single(3);
        let mut answers: Vec<Vec<f64>> = Vec::new();
        for (i, &beta) in fixed.marginals().iter().enumerate() {
            if target.is_subset_of(beta) {
                answers.push(aggregate_to(fixed.table(i), beta, target));
            }
        }
        for w in answers.windows(2) {
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
