//! Estimate types: the reconstructed views of the population from which
//! marginals are answered.

use ldp_bits::{masks_of_weight, Mask, WeightRank};
use ldp_data::BinaryDataset;
use ldp_transform::{
    marginal_from_coefficients, marginalize, marginalize_table, total_variation_distance,
};

/// Anything that can answer marginal queries over a `d`-attribute domain.
pub trait MarginalEstimator {
    /// Domain dimensionality.
    fn d(&self) -> u32;

    /// The largest marginal order answerable (`d` when unrestricted).
    fn max_k(&self) -> u32;

    /// Estimate the marginal `C_β(t)` as a locally-indexed table of length
    /// `2^|β|`. Estimates are *raw* unbiased reconstructions: entries may
    /// fall outside `[0,1]` (use [`clamp_normalize`] for a proper
    /// distribution). Panics if `|β| > max_k` or `β` is outside the domain.
    fn marginal(&self, beta: Mask) -> Vec<f64>;
}

/// Estimate of the entire `2^d` input distribution (from `InpRr` /
/// `InpPs`); marginals are obtained by aggregation, as in §4.2.
#[derive(Clone, Debug, PartialEq)]
pub struct FullDistributionEstimate {
    d: u32,
    dist: Vec<f64>,
}

impl FullDistributionEstimate {
    /// Wrap a reconstructed full distribution (length `2^d`).
    #[must_use]
    pub fn new(d: u32, dist: Vec<f64>) -> Self {
        assert_eq!(dist.len(), 1usize << d);
        FullDistributionEstimate { d, dist }
    }

    /// The reconstructed full distribution.
    #[must_use]
    pub fn distribution(&self) -> &[f64] {
        &self.dist
    }
}

impl MarginalEstimator for FullDistributionEstimate {
    fn d(&self) -> u32 {
        self.d
    }

    fn max_k(&self) -> u32 {
        self.d
    }

    fn marginal(&self, beta: Mask) -> Vec<f64> {
        marginalize(&self.dist, self.d, beta)
    }
}

/// Estimate of the weight-≤k scaled Hadamard coefficients (from `InpHt`);
/// marginals are reconstructed via Lemma 3.7.
#[derive(Clone, Debug, PartialEq)]
pub struct HadamardEstimate {
    indexer: WeightRank,
    /// Estimated scaled coefficients `ĉ_α`, indexed by `indexer`.
    coeffs: Vec<f64>,
}

impl HadamardEstimate {
    /// Wrap estimated coefficients (the weight-0 coefficient is implicit
    /// and exactly 1).
    #[must_use]
    pub fn new(indexer: WeightRank, coeffs: Vec<f64>) -> Self {
        assert_eq!(coeffs.len(), indexer.len());
        HadamardEstimate { indexer, coeffs }
    }

    /// The estimated scaled coefficient `ĉ_α` (`α = 0` returns 1 exactly).
    #[must_use]
    pub fn coefficient(&self, alpha: Mask) -> f64 {
        if alpha.is_empty() {
            1.0
        } else {
            self.coeffs[self.indexer.index(alpha)]
        }
    }
}

impl MarginalEstimator for HadamardEstimate {
    fn d(&self) -> u32 {
        self.indexer.d()
    }

    fn max_k(&self) -> u32 {
        self.indexer.k()
    }

    fn marginal(&self, beta: Mask) -> Vec<f64> {
        assert!(
            beta.weight() <= self.indexer.k(),
            "marginal order {} exceeds collected k = {}",
            beta.weight(),
            self.indexer.k()
        );
        marginal_from_coefficients(beta, |alpha| self.coefficient(alpha))
    }
}

/// Estimates of every k-way marginal table directly (from the `Marg*`
/// mechanisms). Lower-order marginals are answered by aggregating (and
/// averaging over) the stored k-way supersets.
#[derive(Clone, Debug, PartialEq)]
pub struct MarginalSetEstimate {
    d: u32,
    k: u32,
    /// `masks_of_weight(d, k)` order.
    marginals: Vec<Mask>,
    /// One locally-indexed `2^k` table per marginal.
    tables: Vec<Vec<f64>>,
}

impl MarginalSetEstimate {
    /// Wrap per-marginal tables, in `masks_of_weight(d, k)` enumeration
    /// order.
    #[must_use]
    pub fn new(d: u32, k: u32, tables: Vec<Vec<f64>>) -> Self {
        let marginals: Vec<Mask> = masks_of_weight(d, k).collect();
        assert_eq!(tables.len(), marginals.len());
        assert!(tables.iter().all(|t| t.len() == 1usize << k));
        MarginalSetEstimate {
            d,
            k,
            marginals,
            tables,
        }
    }

    /// The stored k-way marginal masks, in enumeration order.
    #[must_use]
    pub fn marginals(&self) -> &[Mask] {
        &self.marginals
    }

    /// Table for the `i`-th stored marginal.
    #[must_use]
    pub fn table(&self, i: usize) -> &[f64] {
        &self.tables[i]
    }

    fn position(&self, beta: Mask) -> Option<usize> {
        self.marginals
            .binary_search_by_key(&beta.bits(), |m| m.bits())
            .ok()
    }
}

impl MarginalEstimator for MarginalSetEstimate {
    fn d(&self) -> u32 {
        self.d
    }

    fn max_k(&self) -> u32 {
        self.k
    }

    fn marginal(&self, beta: Mask) -> Vec<f64> {
        let w = beta.weight();
        assert!(
            w <= self.k,
            "marginal order {w} exceeds collected k = {}",
            self.k
        );
        if w == self.k {
            let i = self.position(beta).expect("marginal not in domain");
            return self.tables[i].clone();
        }
        // Average the aggregation of every stored superset — each is an
        // unbiased estimate of the sub-marginal.
        let mut acc = vec![0.0; beta.table_len()];
        let mut count = 0.0;
        for (i, &m) in self.marginals.iter().enumerate() {
            if beta.is_subset_of(m) {
                let sub = marginalize_table(&self.tables[i], m, beta);
                for (a, s) in acc.iter_mut().zip(&sub) {
                    *a += s;
                }
                count += 1.0;
            }
        }
        assert!(count > 0.0, "no stored superset for {beta}");
        for a in acc.iter_mut() {
            *a /= count;
        }
        acc
    }
}

/// Unified estimate type produced by [`crate::Mechanism::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum Estimate {
    /// Full-distribution reconstruction (`InpRr`, `InpPs`).
    Full(FullDistributionEstimate),
    /// Hadamard-coefficient reconstruction (`InpHt`).
    Hadamard(HadamardEstimate),
    /// Direct per-marginal tables (`MargRr`, `MargPs`, `MargHt`).
    MarginalSet(MarginalSetEstimate),
    /// Budget-split reports with EM decoding (`InpEm`).
    Em(crate::EmEstimate),
}

impl MarginalEstimator for Estimate {
    fn d(&self) -> u32 {
        match self {
            Estimate::Full(e) => e.d(),
            Estimate::Hadamard(e) => e.d(),
            Estimate::MarginalSet(e) => e.d(),
            Estimate::Em(e) => e.d(),
        }
    }

    fn max_k(&self) -> u32 {
        match self {
            Estimate::Full(e) => e.max_k(),
            Estimate::Hadamard(e) => e.max_k(),
            Estimate::MarginalSet(e) => e.max_k(),
            Estimate::Em(e) => e.max_k(),
        }
    }

    fn marginal(&self, beta: Mask) -> Vec<f64> {
        match self {
            Estimate::Full(e) => e.marginal(beta),
            Estimate::Hadamard(e) => e.marginal(beta),
            Estimate::MarginalSet(e) => e.marginal(beta),
            Estimate::Em(e) => e.marginal(beta),
        }
    }
}

/// Clamp a raw estimated table to `[0, 1]` and renormalize to sum 1
/// (postprocessing; does not affect privacy). Returns a uniform table if
/// everything clamps to zero.
#[must_use]
pub fn clamp_normalize(table: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = table.iter().map(|v| v.max(0.0)).collect();
    let total: f64 = out.iter().sum();
    if total <= 0.0 {
        let u = 1.0 / out.len() as f64;
        out.iter_mut().for_each(|v| *v = u);
    } else {
        out.iter_mut().for_each(|v| *v /= total);
    }
    out
}

/// Mean total variation distance between estimated and exact marginals
/// over **all** `C(d,k)` k-way marginals — the quantity plotted in
/// Figures 4, 5, 6 and 9.
#[must_use]
pub fn mean_kway_tvd<E: MarginalEstimator + ?Sized>(est: &E, data: &BinaryDataset, k: u32) -> f64 {
    assert!(k <= est.max_k() && k <= data.d());
    let mut total = 0.0;
    let mut count = 0usize;
    for beta in masks_of_weight(data.d(), k) {
        let truth = data.true_marginal(beta);
        let guess = est.marginal(beta);
        total += total_variation_distance(&truth, &guess);
        count += 1;
    }
    total / count as f64
}

/// Exact-coefficients estimator over a known distribution — a test helper
/// exposed for integration tests and the harness (reconstruction with no
/// privacy noise must be exact).
#[must_use]
pub fn exact_hadamard_estimate(data: &BinaryDataset, k: u32) -> HadamardEstimate {
    let indexer = WeightRank::new(data.d(), k);
    let full = data.full_distribution();
    let coeffs_full = ldp_transform::scaled_coefficients(&full);
    let coeffs = (0..indexer.len())
        .map(|i| coeffs_full[indexer.mask(i).bits() as usize])
        .collect();
    HadamardEstimate::new(indexer, coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_bits::submasks;

    fn dataset() -> BinaryDataset {
        BinaryDataset::new(
            4,
            vec![
                0b0000, 0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1111, 0b0001,
            ],
        )
    }

    #[test]
    fn full_estimate_answers_any_marginal() {
        let ds = dataset();
        let est = FullDistributionEstimate::new(4, ds.full_distribution());
        for bits in 0u64..16 {
            let beta = Mask::new(bits);
            let m = est.marginal(beta);
            let truth = ds.true_marginal(beta);
            for (a, b) in m.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exact_hadamard_estimate_is_exact() {
        let ds = dataset();
        let est = exact_hadamard_estimate(&ds, 3);
        for bits in 0u64..16 {
            let beta = Mask::new(bits);
            if beta.weight() > 3 {
                continue;
            }
            let m = est.marginal(beta);
            let truth = ds.true_marginal(beta);
            for (a, b) in m.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-10, "beta={beta}");
            }
        }
        assert!((mean_kway_tvd(&est, &ds, 2)).abs() < 1e-10);
    }

    #[test]
    fn marginal_set_answers_exact_and_sub_marginals() {
        let ds = dataset();
        let (d, k) = (4, 2);
        let tables: Vec<Vec<f64>> = masks_of_weight(d, k)
            .map(|beta| ds.true_marginal(beta))
            .collect();
        let est = MarginalSetEstimate::new(d, k, tables);
        // k-way exact.
        for beta in masks_of_weight(d, k) {
            let m = est.marginal(beta);
            let truth = ds.true_marginal(beta);
            for (a, b) in m.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-12);
            }
        }
        // 1-way via superset averaging.
        for beta in masks_of_weight(d, 1) {
            let m = est.marginal(beta);
            let truth = ds.true_marginal(beta);
            for (a, b) in m.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-12, "beta={beta}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds collected k")]
    fn marginal_set_rejects_overweight_queries() {
        let ds = dataset();
        let tables: Vec<Vec<f64>> = masks_of_weight(4, 2)
            .map(|beta| ds.true_marginal(beta))
            .collect();
        let est = MarginalSetEstimate::new(4, 2, tables);
        let _ = est.marginal(Mask::new(0b0111));
    }

    #[test]
    fn clamp_normalize_behaviour() {
        let raw = vec![0.6, -0.1, 0.3, 0.4];
        let p = clamp_normalize(&raw);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[1], 0.0);
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        // All-negative input falls back to uniform.
        let u = clamp_normalize(&[-1.0, -2.0]);
        assert_eq!(u, vec![0.5, 0.5]);
    }

    #[test]
    fn submask_enumeration_used_by_hadamard_estimate() {
        // coefficient() must agree with the full WHT on every low-weight α.
        let ds = dataset();
        let est = exact_hadamard_estimate(&ds, 2);
        let coeffs = ldp_transform::scaled_coefficients(&ds.full_distribution());
        for alpha in submasks(Mask::full(4)) {
            if alpha.weight() <= 2 {
                assert!((est.coefficient(alpha) - coeffs[alpha.bits() as usize]).abs() < 1e-12);
            }
        }
    }
}
