#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The six marginal-release mechanisms of *Marginal Release Under Local
//! Differential Privacy* (Cormode, Kulkarni, Srivastava; SIGMOD 2018),
//! plus the InpEM baseline of §4.4.
//!
//! Every mechanism follows the same protocol shape:
//!
//! 1. **Client**: each user holds a private record `j ∈ {0,1}^d` and calls
//!    `encode(row, rng)` exactly once, producing a small LDP report;
//! 2. **Server**: an [`Accumulator`] absorbs reports one at a time
//!    ([`Accumulator::absorb`] / [`Accumulator::absorb_batch`]), merges
//!    partial aggregates from parallel shards or separate processes
//!    ([`Accumulator::merge`], [`Accumulator::to_bytes`]), never needing
//!    the population in memory;
//! 3. **Estimation**: [`Accumulator::finalize`] produces an [`Estimate`]
//!    from which *any* k-way marginal can be reconstructed on demand —
//!    the paper's requirement that queries need not be known during
//!    collection.
//!
//! The two design dimensions of §4 (view of the data × release primitive):
//!
//! | | Parallel RR | Preferential sampling | Hadamard sample |
//! |---|---|---|---|
//! | **full input** | [`InpRr`] | [`InpPs`] | [`InpHt`] |
//! | **random marginal** | [`MargRr`] | [`MargPs`] | [`MargHt`] |
//!
//! plus [`InpEm`] (budget-split RR per attribute + EM decoding, Fanti et
//! al.) as the prior-work comparison.
//!
//! Use [`MechanismKind::build`] for uniform construction and
//! [`Mechanism::run`] for the full simulate-a-population pipeline (used by
//! the bench harness). For incremental ingest — reports arriving over the
//! network, partial aggregates crossing process boundaries — use the
//! streaming pair [`Mechanism::encode`] / [`Mechanism::accumulator`]
//! (see [`MechanismAccumulator`]), or the per-mechanism types directly
//! for the statically-typed client/server split.

mod accumulator;
mod categorical;
pub mod consistency;
mod encode;
mod estimate;
pub mod frame;
mod inp_em;
mod inp_ht;
mod inp_ps;
mod inp_rr;
mod marg_ht;
mod marg_ps;
mod marg_rr;
mod personalized;
mod runner;
mod streaming;
pub mod wire;

pub use accumulator::Accumulator;
pub use categorical::{CatMargPs, CatMargPsAggregator, CatMargPsReport, CatMarginalSetEstimate};
pub use estimate::{
    clamp_normalize, exact_hadamard_estimate, mean_kway_tvd, Estimate, FullDistributionEstimate,
    HadamardEstimate, MarginalEstimator, MarginalSetEstimate,
};
pub use inp_em::{EmDiagnostics, EmEstimate, InpEm, InpEmAggregator};
pub use inp_ht::{InpHt, InpHtAggregator, InpHtReport};
pub use inp_ps::{InpPs, InpPsAggregator};
pub use inp_rr::{InpRr, InpRrAggregator};
pub use marg_ht::{MargHt, MargHtAggregator, MargHtReport};
pub use marg_ps::{MargPs, MargPsAggregator, MargPsReport};
pub use marg_rr::{MargRr, MargRrAggregator, MargRrReport};
pub use personalized::{PersonalizedAggregator, PersonalizedInpHt, PersonalizedReport};
pub use runner::{ingest, ingest_sharded, run_population, run_population_sharded, user_rng};
pub use streaming::{MechanismAccumulator, MechanismReport};

use ldp_mechanisms::theory::MethodBound;

/// Identifier for one of the seven implemented mechanisms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// Parallel randomized response on the full `2^d` input vector (§4.2).
    InpRr,
    /// Preferential sampling of the input index over `2^d` (§4.2).
    InpPs,
    /// Randomized response on one sampled low-weight Hadamard coefficient
    /// of the input (§4.2, Algorithms 1–2) — the paper's headline method.
    InpHt,
    /// Parallel randomized response on one random k-way marginal (§4.3).
    MargRr,
    /// Preferential sampling within one random k-way marginal (§4.3).
    MargPs,
    /// Randomized response on one Hadamard coefficient of one random
    /// k-way marginal (§4.3).
    MargHt,
    /// Budget-split per-attribute RR with EM decoding (§4.4, Fanti et al.).
    InpEm,
}

impl MechanismKind {
    /// The six unbiased mechanisms of §4 (excluding the EM heuristic), in
    /// the paper's presentation order.
    pub const SIX: [MechanismKind; 6] = [
        MechanismKind::InpRr,
        MechanismKind::InpPs,
        MechanismKind::InpHt,
        MechanismKind::MargRr,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
    ];

    /// All seven implemented mechanisms (the six of §4 plus the EM
    /// heuristic), in the paper's presentation order.
    pub const ALL: [MechanismKind; 7] = [
        MechanismKind::InpRr,
        MechanismKind::InpPs,
        MechanismKind::InpHt,
        MechanismKind::MargRr,
        MechanismKind::MargPs,
        MechanismKind::MargHt,
        MechanismKind::InpEm,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::InpRr => "InpRR",
            MechanismKind::InpPs => "InpPS",
            MechanismKind::InpHt => "InpHT",
            MechanismKind::MargRr => "MargRR",
            MechanismKind::MargPs => "MargPS",
            MechanismKind::MargHt => "MargHT",
            MechanismKind::InpEm => "InpEM",
        }
    }

    /// Build the mechanism for a `d`-attribute domain targeting the full
    /// set of `k`-way marginals under `ε`-LDP.
    #[must_use]
    pub fn build(self, d: u32, k: u32, eps: f64) -> Mechanism {
        match self {
            MechanismKind::InpRr => Mechanism::InpRr(InpRr::new(d, eps)),
            MechanismKind::InpPs => Mechanism::InpPs(InpPs::new(d, eps)),
            MechanismKind::InpHt => Mechanism::InpHt(InpHt::new(d, k, eps)),
            MechanismKind::MargRr => Mechanism::MargRr(MargRr::new(d, k, eps)),
            MechanismKind::MargPs => Mechanism::MargPs(MargPs::new(d, k, eps)),
            MechanismKind::MargHt => Mechanism::MargHt(MargHt::new(d, k, eps)),
            MechanismKind::InpEm => Mechanism::InpEm(InpEm::new(d, eps)),
        }
    }

    /// The accumulator type tag (see [`wire::tag`]) naming this
    /// mechanism in stream headers and serialized state.
    #[must_use]
    pub fn wire_tag(self) -> u8 {
        match self {
            MechanismKind::InpRr => wire::tag::INP_RR,
            MechanismKind::InpPs => wire::tag::INP_PS,
            MechanismKind::InpHt => wire::tag::INP_HT,
            MechanismKind::MargRr => wire::tag::MARG_RR,
            MechanismKind::MargPs => wire::tag::MARG_PS,
            MechanismKind::MargHt => wire::tag::MARG_HT,
            MechanismKind::InpEm => wire::tag::INP_EM,
        }
    }

    /// Inverse of [`MechanismKind::wire_tag`].
    #[must_use]
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            wire::tag::INP_RR => Some(MechanismKind::InpRr),
            wire::tag::INP_PS => Some(MechanismKind::InpPs),
            wire::tag::INP_HT => Some(MechanismKind::InpHt),
            wire::tag::MARG_RR => Some(MechanismKind::MargRr),
            wire::tag::MARG_PS => Some(MechanismKind::MargPs),
            wire::tag::MARG_HT => Some(MechanismKind::MargHt),
            wire::tag::INP_EM => Some(MechanismKind::InpEm),
            _ => None,
        }
    }

    /// The Table 2 bound descriptor for the six unbiased mechanisms
    /// (`None` for the EM heuristic, which has no worst-case guarantee).
    #[must_use]
    pub fn bound(self) -> Option<MethodBound> {
        match self {
            MechanismKind::InpRr => Some(MethodBound::InpRr),
            MechanismKind::InpPs => Some(MethodBound::InpPs),
            MechanismKind::InpHt => Some(MethodBound::InpHt),
            MechanismKind::MargRr => Some(MethodBound::MargRr),
            MechanismKind::MargPs => Some(MethodBound::MargPs),
            MechanismKind::MargHt => Some(MethodBound::MargHt),
            MechanismKind::InpEm => None,
        }
    }
}

/// A built mechanism, ready to simulate a population.
#[derive(Clone, Debug)]
pub enum Mechanism {
    /// See [`InpRr`].
    InpRr(InpRr),
    /// See [`InpPs`].
    InpPs(InpPs),
    /// See [`InpHt`].
    InpHt(InpHt),
    /// See [`MargRr`].
    MargRr(MargRr),
    /// See [`MargPs`].
    MargPs(MargPs),
    /// See [`MargHt`].
    MargHt(MargHt),
    /// See [`InpEm`].
    InpEm(InpEm),
}

impl Mechanism {
    /// Which kind this is.
    #[must_use]
    pub fn kind(&self) -> MechanismKind {
        match self {
            Mechanism::InpRr(_) => MechanismKind::InpRr,
            Mechanism::InpPs(_) => MechanismKind::InpPs,
            Mechanism::InpHt(_) => MechanismKind::InpHt,
            Mechanism::MargRr(_) => MechanismKind::MargRr,
            Mechanism::MargPs(_) => MechanismKind::MargPs,
            Mechanism::MargHt(_) => MechanismKind::MargHt,
            Mechanism::InpEm(_) => MechanismKind::InpEm,
        }
    }

    /// Communication cost in bits per user report (Table 2; for `InpEm`,
    /// the `d` budget-split bits).
    #[must_use]
    pub fn communication_bits(&self) -> u64 {
        match self {
            Mechanism::InpRr(m) => 1u64 << m.d(),
            Mechanism::InpPs(m) => u64::from(m.d()),
            Mechanism::InpHt(m) => u64::from(m.d()) + 1,
            Mechanism::MargRr(m) => u64::from(m.d()) + (1u64 << m.k()),
            Mechanism::MargPs(m) => u64::from(m.d()) + u64::from(m.k()),
            Mechanism::MargHt(m) => u64::from(m.d()) + u64::from(m.k()) + 1,
            Mechanism::InpEm(m) => u64::from(m.d()),
        }
    }

    /// Run the full collect-and-aggregate pipeline over a population of
    /// records (one per user), using `seed` for all client randomness.
    ///
    /// This is a thin driver over the streaming path: per-user
    /// [`Mechanism::encode`] reports are absorbed into the mechanism's
    /// [`MechanismAccumulator`], sharded across the available cores and
    /// [`Accumulator::merge`]d. Because the seed schedule is per-user
    /// (see [`user_rng`]) and accumulators obey the partition-invariance
    /// law of [`Accumulator`], the result is bit-identical to
    /// `run_sharded(rows, seed, 1)` — the serial reference — and to
    /// every other shard count.
    ///
    /// `InpRr` is the one exception: its faithful client path costs
    /// `O(2^d)` per user, so `run` substitutes the
    /// exact-in-distribution aggregate simulation
    /// ([`InpRr::run_fast`]); use [`Mechanism::accumulator`] directly
    /// for faithful `InpRr` streaming.
    ///
    /// ```
    /// use ldp_core::{MarginalEstimator, MechanismKind};
    ///
    /// // 10k users, each holding one of 16 records over d = 4 bits.
    /// let rows: Vec<u64> = (0..10_000u64).map(|u| u % 16).collect();
    /// let mechanism = MechanismKind::InpHt.build(4, 2, 1.1);
    /// let estimate = mechanism.run(&rows, 42);
    /// let table = estimate.marginal(ldp_bits::Mask::from_attrs(&[0, 3]));
    /// assert_eq!(table.len(), 4);
    /// assert!((table.iter().sum::<f64>() - 1.0).abs() < 0.1);
    /// ```
    #[must_use]
    pub fn run(&self, rows: &[u64], seed: u64) -> Estimate {
        // Sharding costs one accumulator per shard; skip it for
        // populations too small to amortize that.
        let shards = if rows.len() < 4096 {
            1
        } else {
            rayon::current_num_threads()
        };
        self.run_sharded(rows, seed, shards)
    }

    /// Run the same pipeline with the population partitioned into
    /// `shards` contiguous chunks executed in parallel; per-shard
    /// accumulators are [`Accumulator::merge`]d in shard order.
    ///
    /// Bit-identical to [`Mechanism::run`] for every `shards` value.
    #[must_use]
    pub fn run_sharded(&self, rows: &[u64], seed: u64, shards: usize) -> Estimate {
        // The InpRR aggregate simulation draws one multinomial per input
        // cell rather than one report per user, so it is already O(2^d)
        // not O(n); sharding does not apply.
        if let Mechanism::InpRr(m) = self {
            return Estimate::Full(m.run_fast(rows, seed));
        }
        ingest_sharded(
            rows,
            seed,
            shards,
            || self.accumulator(),
            |row, rng| self.encode(row, rng),
        )
        .finalize()
    }
}
