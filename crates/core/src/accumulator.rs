//! The mergeable streaming-accumulator abstraction (see
//! [`Accumulator`]).

use crate::wire::WireError;

/// The server side of an LDP protocol as a mergeable streaming summary.
///
/// The paper's aggregation step is a *sum of unbiased per-report
/// transforms* — exactly the mergeable-summary shape of composite
/// streaming sketches. `Accumulator` makes that structure explicit so a
/// collector can ingest reports one at a time ([`Accumulator::absorb`] /
/// [`Accumulator::absorb_batch`]), combine partial aggregates built by
/// independent processes ([`Accumulator::merge`]), ship state across
/// process boundaries ([`Accumulator::to_bytes`] /
/// [`Accumulator::from_bytes`]), and only at the very end pay for
/// estimation ([`Accumulator::finalize`]). Nothing requires the
/// population to ever be materialized in memory. See
/// [`crate::MechanismAccumulator`] for the type-erased form covering
/// every [`crate::MechanismKind`].
///
/// # The partition-invariance law
///
/// Implementations must satisfy, for any way of splitting a report
/// sequence into parts and any order of absorbing within / merging
/// across parts:
///
/// ```text
/// absorb-all-serially  ≡  absorb-in-parts-then-merge
/// ```
///
/// where `≡` is **state equality** — not just equal estimates, but
/// byte-identical [`Accumulator::to_bytes`] output. Every accumulator in
/// this workspace keeps exact integer state (counts or sums), so the law
/// holds exactly; it is property-tested over every
/// [`crate::MechanismKind`] in `tests/streaming.rs`, and is what makes
/// [`crate::Mechanism::run_sharded`] bit-identical for every shard
/// count.
///
/// # Example: two collector processes, one estimate
///
/// ```
/// use ldp_core::{Accumulator, InpHt};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mech = InpHt::new(8, 2, 1.1);
/// let mut rng = StdRng::seed_from_u64(7);
///
/// // Two collectors each ingest a disjoint half of the population,
/// // never holding more than one report at a time.
/// let mut east = mech.aggregator();
/// let mut west = mech.aggregator();
/// for user in 0..10_000u64 {
///     let report = mech.encode(user % 256, &mut rng);
///     if user % 2 == 0 {
///         east.absorb(report);
///     } else {
///         west.absorb(report);
///     }
/// }
///
/// // `west` ships its compact state to `east`, which merges and
/// // finalizes.
/// let wire = Accumulator::to_bytes(&west);
/// let west_rebuilt = <ldp_core::InpHtAggregator as Accumulator>::from_bytes(&wire).unwrap();
/// Accumulator::merge(&mut east, west_rebuilt);
/// assert_eq!(east.n(), 10_000);
/// let estimate = Accumulator::finalize(east);
/// let table = ldp_core::MarginalEstimator::marginal(
///     &estimate,
///     ldp_bits::Mask::from_attrs(&[0, 1]),
/// );
/// assert_eq!(table.len(), 4);
/// ```
pub trait Accumulator: Sized + Send {
    /// One client report, as produced by the matching `encode` method.
    type Report;

    /// What [`Accumulator::finalize`] produces (an estimate type).
    type Output;

    /// Ingest one report. Must be commutative up to state equality and
    /// allocation-free for fixed-size report types.
    fn absorb(&mut self, report: &Self::Report);

    /// Ingest a buffer of reports. The default simply loops over
    /// [`Accumulator::absorb`]; implementations override it when hoisting
    /// per-report dispatch out of the loop helps the hot path.
    fn absorb_batch(&mut self, reports: &[Self::Report]) {
        for report in reports {
            self.absorb(report);
        }
    }

    /// Fold another partial aggregate (same protocol configuration) into
    /// this one. Must be associative and commutative up to state
    /// equality.
    fn merge(&mut self, other: Self);

    /// How many reports this accumulator has absorbed (summed across
    /// merges).
    fn report_count(&self) -> u64;

    /// Consume the accumulator and produce the estimate. This is the
    /// only step that is allowed to leave exact integer state.
    fn finalize(self) -> Self::Output;

    /// Serialize the full state — protocol configuration included — into
    /// the compact wire form of [`crate::wire`].
    fn to_bytes(&self) -> Vec<u8>;

    /// Rehydrate an accumulator serialized by [`Accumulator::to_bytes`].
    /// The blob is self-describing: no mechanism object is needed on the
    /// receiving side.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the blob is truncated, carries the
    /// wrong type tag, an unsupported version, trailing bytes, or an
    /// out-of-range field.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError>;
}
